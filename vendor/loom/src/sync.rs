//! Loom-instrumented synchronization primitives.
//!
//! The atomic types wrap their `std::sync::atomic` counterparts and
//! call the scheduler's yield point before every operation, making each
//! atomic access a branch point in the interleaving search. Because the
//! scheduler serializes threads, the memory `Ordering` arguments do not
//! change observable behavior here (everything is sequentially
//! consistent); they are accepted and forwarded so code under test
//! compiles unchanged.

pub use std::sync::Arc;

pub mod atomic {
    use crate::rt;
    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_int {
        ($name:ident, $std:ident, $int:ty) => {
            /// Loom-instrumented atomic integer: every operation is an
            /// interleaving branch point.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub fn new(v: $int) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                pub fn load(&self, order: Ordering) -> $int {
                    rt::yield_point();
                    self.inner.load(order)
                }

                pub fn store(&self, v: $int, order: Ordering) {
                    rt::yield_point();
                    self.inner.store(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    rt::yield_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Never fails spuriously (matching crates-io loom).
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    self.compare_exchange(current, new, success, failure)
                }

                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    rt::yield_point();
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                    rt::yield_point();
                    self.inner.fetch_sub(v, order)
                }

                pub fn fetch_or(&self, v: $int, order: Ordering) -> $int {
                    rt::yield_point();
                    self.inner.fetch_or(v, order)
                }

                pub fn fetch_and(&self, v: $int, order: Ordering) -> $int {
                    rt::yield_point();
                    self.inner.fetch_and(v, order)
                }

                /// Consumes the atomic; no yield (requires exclusive
                /// ownership, so it cannot race).
                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }
            }
        };
    }

    atomic_int!(AtomicU8, AtomicU8, u8);
    atomic_int!(AtomicU32, AtomicU32, u32);
    atomic_int!(AtomicU64, AtomicU64, u64);
    atomic_int!(AtomicUsize, AtomicUsize, usize);

    /// Loom-instrumented atomic boolean.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            rt::yield_point();
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            rt::yield_point();
            self.inner.store(v, order)
        }

        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            rt::yield_point();
            self.inner.swap(v, order)
        }

        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }
}
