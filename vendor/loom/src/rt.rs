//! The cooperative scheduler and DFS driver behind [`model`].
//!
//! Every logical model thread is backed by an OS thread, but a
//! mutex/condvar baton guarantees exactly one runs at any moment. Each
//! atomic operation calls [`yield_point`] before executing, which hands
//! control to the scheduler; the scheduler either replays a recorded
//! decision (the DFS prefix) or defaults to the lowest-numbered
//! runnable thread and records the branch. After an execution finishes,
//! the driver bumps the deepest decision that still has an untried
//! alternative and reruns — depth-first search over the whole schedule
//! tree, terminating when every decision at every depth is exhausted.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Runaway protection: no model in this workspace needs more than a few
/// thousand executions; hitting this bound means the model is too big
/// to check exhaustively and should be shrunk.
const MAX_EXECUTIONS: usize = 100_000;

const PANIC_MSG: &str = "loom (vendored): another model thread panicked";

/// `active` value meaning "execution complete, nobody runs".
const DONE: usize = usize::MAX;

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for the thread with the given ID to finish.
    Blocked(usize),
    Finished,
}

/// One recorded scheduling decision: `picked` indexes into the
/// ascending-ID list of threads that were runnable at the decision
/// point. Only points with more than one runnable thread are recorded —
/// forced moves have no alternative to explore.
struct Branch {
    enabled: usize,
    picked: usize,
}

struct Inner {
    status: Vec<Status>,
    /// ID of the one thread allowed to run, or [`DONE`].
    active: usize,
    /// Threads not yet [`Status::Finished`].
    live: usize,
    /// Decision prefix to replay this execution (DFS path).
    replay: Vec<usize>,
    /// Decisions actually taken this execution.
    branches: Vec<Branch>,
    /// Set when any model thread panics; poisons every wait loop.
    panicked: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Rt {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Rt {
    fn new(replay: Vec<usize>) -> Arc<Rt> {
        Arc::new(Rt {
            inner: Mutex::new(Inner {
                // Thread 0 is the model closure itself, active from the start.
                status: vec![Status::Runnable],
                active: 0,
                live: 1,
                replay,
                branches: Vec::new(),
                panicked: false,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Poison-tolerant lock: a panicking model thread must not cascade
    /// into panics-while-panicking in the other threads' teardown.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Chooses the next active thread among the runnable ones,
    /// consuming the replay prefix while it lasts and recording the
    /// decision when there was a real choice. Call with the lock held,
    /// after updating the calling thread's own status.
    fn pick_next(&self, inner: &mut Inner) {
        let enabled: Vec<usize> = inner
            .status
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if inner.live == 0 {
                inner.active = DONE;
                return;
            }
            inner.panicked = true;
            self.cv.notify_all();
            panic!("loom (vendored): deadlock — every live thread is blocked on join");
        }
        if enabled.len() == 1 {
            // Forced move: not recorded, no replay slot consumed.
            inner.active = enabled[0];
            return;
        }
        let picked = if inner.branches.len() < inner.replay.len() {
            inner.replay[inner.branches.len()]
        } else {
            0
        };
        debug_assert!(picked < enabled.len(), "replay prefix diverged");
        inner.active = enabled[picked];
        inner.branches.push(Branch {
            enabled: enabled.len(),
            picked,
        });
    }

    /// A schedule point: thread `me` offers to hand over control, then
    /// blocks until it is scheduled again.
    fn switch(&self, me: usize) {
        let mut inner = self.lock();
        if inner.panicked {
            drop(inner);
            panic!("{PANIC_MSG}");
        }
        self.pick_next(&mut inner);
        if inner.active == me {
            return;
        }
        self.cv.notify_all();
        while inner.active != me {
            if inner.panicked {
                drop(inner);
                panic!("{PANIC_MSG}");
            }
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks `me` finished, wakes its joiners, and schedules a successor.
    fn finish(&self, me: usize) {
        let mut inner = self.lock();
        inner.status[me] = Status::Finished;
        inner.live -= 1;
        for s in inner.status.iter_mut() {
            if *s == Status::Blocked(me) {
                *s = Status::Runnable;
            }
        }
        self.pick_next(&mut inner);
        self.cv.notify_all();
    }

    /// Records a panic in a model thread and wakes everyone so the
    /// execution can tear down instead of deadlocking.
    fn abort(&self, me: usize) {
        let mut inner = self.lock();
        inner.panicked = true;
        inner.status[me] = Status::Finished;
        self.cv.notify_all();
    }

    fn wait_all_done(&self) {
        let mut inner = self.lock();
        while inner.active != DONE && !inner.panicked {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Flags the runtime if the guarded scope unwinds.
struct PanicGuard {
    rt: Arc<Rt>,
    id: usize,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        self.rt.abort(self.id);
    }
}

fn current() -> (Arc<Rt>, usize) {
    CONTEXT
        .with(|c| c.borrow().clone())
        .expect("loom primitive used outside loom::model")
}

/// Yield point invoked by every atomic operation (and
/// [`crate::thread::yield_now`]).
pub(crate) fn yield_point() {
    let (rt, me) = current();
    rt.switch(me);
}

/// Registers a new logical thread running `f` and yields so the child
/// is immediately schedulable. Returns the new thread's ID.
pub(crate) fn spawn(f: Box<dyn FnOnce() + Send>) -> usize {
    let (rt, me) = current();
    let id;
    {
        let mut inner = rt.lock();
        inner.status.push(Status::Runnable);
        inner.live += 1;
        id = inner.status.len() - 1;
        let rt2 = Arc::clone(&rt);
        let handle = std::thread::Builder::new()
            .name(format!("loom-{id}"))
            .spawn(move || {
                CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt2), id)));
                // Park until first scheduled; exit silently if the
                // execution was already torn down by a panic elsewhere.
                {
                    let mut inner = rt2.lock();
                    while inner.active != id {
                        if inner.panicked {
                            return;
                        }
                        inner = rt2.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
                    }
                }
                let guard = PanicGuard {
                    rt: Arc::clone(&rt2),
                    id,
                };
                f();
                std::mem::forget(guard);
                rt2.finish(id);
            })
            .expect("failed to spawn loom model thread");
        inner.os_handles.push(handle);
    }
    rt.switch(me);
    id
}

/// Blocks the calling logical thread until `target` finishes.
pub(crate) fn join(target: usize) {
    let (rt, me) = current();
    let mut inner = rt.lock();
    if inner.panicked {
        drop(inner);
        panic!("{PANIC_MSG}");
    }
    if inner.status[target] == Status::Finished {
        return;
    }
    inner.status[me] = Status::Blocked(target);
    rt.pick_next(&mut inner);
    rt.cv.notify_all();
    while inner.active != me {
        if inner.panicked {
            drop(inner);
            panic!("{PANIC_MSG}");
        }
        inner = rt.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
    }
}

/// The next DFS path: bump the deepest decision with an untried
/// alternative and drop everything after it; `None` when the tree is
/// exhausted.
fn next_replay(branches: &[Branch]) -> Option<Vec<usize>> {
    for i in (0..branches.len()).rev() {
        if branches[i].picked + 1 < branches[i].enabled {
            let mut path: Vec<usize> = branches[..i].iter().map(|b| b.picked).collect();
            path.push(branches[i].picked + 1);
            return Some(path);
        }
    }
    None
}

/// Checks a concurrent model by running `f` under every possible
/// schedule of the threads it spawns (sequentially consistent
/// semantics; see the crate docs for the deviation from crates-io
/// loom). Panics — i.e. fails the enclosing test — if `f` panics under
/// any schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let mut replay: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom (vendored): exceeded {MAX_EXECUTIONS} executions; shrink the model"
        );
        let rt = Rt::new(replay.clone());
        CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt), 0)));
        let guard = PanicGuard {
            rt: Arc::clone(&rt),
            id: 0,
        };
        f();
        std::mem::forget(guard);
        rt.finish(0);
        rt.wait_all_done();
        CONTEXT.with(|c| *c.borrow_mut() = None);
        let (branches, panicked, handles) = {
            let mut inner = rt.lock();
            (
                std::mem::take(&mut inner.branches),
                inner.panicked,
                std::mem::take(&mut inner.os_handles),
            )
        };
        for h in handles {
            let _ = h.join();
        }
        assert!(
            !panicked,
            "loom (vendored): a model thread panicked (execution {executions})"
        );
        match next_replay(&branches) {
            Some(next) => replay = next,
            None => return,
        }
    }
}
