//! Logical model threads.
//!
//! [`spawn`] registers a new logical thread with the scheduler (backed
//! by a real OS thread, but serialized with all others). Spawning and
//! joining are schedule points, so "the child runs to completion before
//! the parent continues" and every other ordering are all explored.

use crate::rt;
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    result: Arc<Mutex<Option<T>>>,
    id: usize,
}

impl<T> JoinHandle<T> {
    /// Blocks the calling logical thread until the child finishes and
    /// returns its result. Panics in the child abort the whole model
    /// execution (the enclosing [`crate::model`] call fails), so this
    /// only ever observes successful completion.
    pub fn join(self) -> std::thread::Result<T> {
        rt::join(self.id);
        Ok(self
            .result
            .lock()
            .unwrap()
            .take()
            .expect("loom thread finished without storing a result"))
    }
}

/// Spawns a new logical thread in the current model execution.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let id = rt::spawn(Box::new(move || {
        let out = f();
        *slot.lock().unwrap() = Some(out);
    }));
    JoinHandle { result, id }
}

/// An explicit schedule point with no memory effect.
pub fn yield_now() {
    rt::yield_point();
}
