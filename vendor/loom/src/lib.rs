//! Offline stand-in for the [`loom`](https://docs.rs/loom) concurrency
//! model checker (see `vendor/README.md`).
//!
//! [`model`] runs a closure repeatedly, exploring **every** schedule of
//! the logical threads it spawns: each atomic operation is a yield
//! point, and a depth-first search over the scheduling decisions at
//! those points enumerates all interleavings. Assertions inside the
//! closure therefore hold for every possible execution order, not just
//! the ones the OS scheduler happened to produce.
//!
//! # Scope and deviations from crates-io loom
//!
//! - **Sequentially consistent semantics.** Real loom additionally
//!   models the C11 weak-memory effects of `Relaxed`/`Acquire`/
//!   `Release` orderings; this stand-in serializes threads, so every
//!   execution it explores is sequentially consistent. It exhaustively
//!   catches *interleaving* bugs (lost updates, double claims, missed
//!   wakeups) but not *reordering* bugs; the nightly ThreadSanitizer CI
//!   job covers those on real hardware.
//! - `compare_exchange_weak` never fails spuriously (same as loom).
//! - The API subset is what this workspace uses: [`model`],
//!   [`thread::spawn`]/[`thread::JoinHandle`]/[`thread::yield_now`],
//!   the integer atomics in [`sync::atomic`], and [`sync::Arc`].
//!
//! # Example
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//!
//! loom::model(|| {
//!     let n: &'static AtomicUsize = Box::leak(Box::new(AtomicUsize::new(0)));
//!     let t1 = loom::thread::spawn(move || n.fetch_add(1, Ordering::Relaxed));
//!     let t2 = loom::thread::spawn(move || n.fetch_add(1, Ordering::Relaxed));
//!     t1.join().unwrap();
//!     t2.join().unwrap();
//!     assert_eq!(n.load(Ordering::Relaxed), 2); // holds in every schedule
//! });
//! ```

#![forbid(unsafe_code)]

mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;
