//! Offline stand-in for [rayon](https://docs.rs/rayon) providing the subset
//! of the API this workspace uses, with the same observable semantics:
//!
//! - ordered parallel iterators over ranges, vectors, and slices, with
//!   rayon-style `fold` (per-chunk accumulators) and `reduce`;
//! - slice extensions (`par_iter`, `par_chunks[_mut]`, `par_sort*`);
//! - `ThreadPoolBuilder` / `ThreadPool::install`, which pins
//!   [`current_num_threads`] for the installed closure.
//!
//! Work runs on a lazily spawned shared worker pool (claim-based batch
//! scheduling, submitter participates), so parallel speedups are real —
//! just without rayon's work-stealing depth splitting.

pub mod iter;
mod pool;
pub mod slice;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    pub use crate::iter::{IndexedParallelIterator, IntoParallelIterator, ParallelIterator};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fold_then_reduce_matches_sequential() {
        let total: u64 = (0..100_000u64)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .sum();
        assert_eq!(total, (0..100_000u64).sum::<u64>());
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        (0..5000u32).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
    }

    #[test]
    fn panics_propagate_from_workers() {
        let caught = std::panic::catch_unwind(|| {
            (0..1000u32).into_par_iter().for_each(|i| {
                assert!(i != 777, "boom at {i}");
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn zip_and_enumerate_line_up() {
        let a = vec![10, 20, 30];
        let b = vec![1, 2, 3];
        let pairs: Vec<(usize, (i32, i32))> = a.into_par_iter().zip(b).enumerate().collect();
        assert_eq!(pairs, vec![(0, (10, 1)), (1, (20, 2)), (2, (30, 3))]);
    }
}
