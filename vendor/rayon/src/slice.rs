//! Parallel extensions on slices: iteration, chunking, and sorting.

use crate::iter::ParIter;

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
    fn par_windows(&self, window_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter::from_vec(self.iter().collect())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter::from_vec(self.chunks(chunk_size.max(1)).collect())
    }

    fn par_windows(&self, window_size: usize) -> ParIter<&[T]> {
        ParIter::from_vec(self.windows(window_size.max(1)).collect())
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    fn par_sort_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter::from_vec(self.iter_mut().collect())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter::from_vec(self.chunks_mut(chunk_size.max(1)).collect())
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        self.sort_by(compare);
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        self.sort_unstable_by(compare);
    }

    fn par_sort_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.sort_by_key(f);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.sort_unstable_by_key(f);
    }
}
