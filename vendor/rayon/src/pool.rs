//! A minimal shared worker pool with claim-based batch scheduling.
//!
//! Parallel work is expressed as `f(0..count)` over chunk indices. The
//! submitting thread publishes a [`Batch`] to the global queue, then claims
//! and runs indices itself alongside the pool workers, and finally waits
//! until every claimed index has finished before returning — which is what
//! makes the lifetime transmute below sound: no job can run after
//! `run_indexed` returns, so borrows captured by `f` stay valid for every
//! invocation.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = unset.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel operations should target, honouring any
/// enclosing [`ThreadPool::install`] override.
pub fn current_num_threads() -> usize {
    let tls = POOL_THREADS.with(|c| c.get());
    if tls > 0 {
        tls
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// One parallel batch: `run(i)` for every `i < total`, each index claimed by
/// exactly one thread via `next.fetch_add(1)`.
struct Batch {
    /// Transmuted to `'static`; only ever invoked for a freshly claimed
    /// index, which can only happen before the submitter observes
    /// `done == total` and returns.
    run: &'static (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    done: AtomicUsize,
    total: usize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Batch {
    /// Claims and runs indices until none remain. Returns once this thread
    /// can claim no further work (other threads may still be running).
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.run)(i)));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
                // Acquire/release the wait mutex so the submitter is either
                // before its check (and sees the final count) or parked in
                // `wait` (and receives the notification).
                drop(self.lock.lock().unwrap());
                self.cond.notify_all();
            }
        }
    }
}

struct Queue {
    pending: Mutex<VecDeque<Arc<Batch>>>,
    available: Condvar,
}

static QUEUE: OnceLock<Arc<Queue>> = OnceLock::new();

fn queue() -> &'static Arc<Queue> {
    QUEUE.get_or_init(|| {
        let q = Arc::new(Queue {
            pending: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1);
        for i in 0..workers {
            let q = Arc::clone(&q);
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(&q))
                .expect("failed to spawn pool worker");
        }
        q
    })
}

fn worker_loop(q: &Queue) {
    loop {
        let batch = {
            let mut pending = q.pending.lock().unwrap();
            loop {
                if let Some(b) = pending.pop_front() {
                    break b;
                }
                pending = q.available.wait(pending).unwrap();
            }
        };
        batch.drain();
    }
}

/// Runs `f(i)` for every `i < count`, using the pool when profitable. On
/// return every invocation has completed; if any panicked, the first payload
/// is re-raised on the calling thread.
pub(crate) fn run_indexed<F: Fn(usize) + Sync>(count: usize, f: F) {
    if count == 0 {
        return;
    }
    if count == 1 || current_num_threads() <= 1 {
        for i in 0..count {
            f(i);
        }
        return;
    }

    let batch = Arc::new(Batch {
        // Sound: `drain` only invokes `run` for indices claimed before
        // `done == total`, and we wait for that below before returning.
        run: unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&f)
        },
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        total: count,
        panic: Mutex::new(None),
        lock: Mutex::new(()),
        cond: Condvar::new(),
    });

    let q = queue();
    q.pending.lock().unwrap().push_back(Arc::clone(&batch));
    q.available.notify_all();

    // Help with our own batch, then wait for in-flight claims to settle.
    batch.drain();
    let mut guard = batch.lock.lock().unwrap();
    while batch.done.load(Ordering::Acquire) < batch.total {
        guard = batch.cond.wait(guard).unwrap();
    }
    drop(guard);

    let payload = batch.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// A handle that pins [`current_num_threads`] to a fixed value for the
/// duration of [`ThreadPool::install`]. Work still runs on the shared pool;
/// the value bounds how many chunks parallel operations split into.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|c| c.get()));
        POOL_THREADS.with(|c| c.set(self.num_threads));
        f()
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the API subset we use.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}
