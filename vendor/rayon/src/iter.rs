//! The parallel-iterator surface: an eagerly materialized item vector whose
//! combinators fan work out over the shared pool in ordered chunks.

use crate::pool::{current_num_threads, run_indexed};
use std::cell::UnsafeCell;

/// A slot written by exactly one claimed chunk index; the claim protocol in
/// `run_indexed` is what makes sharing these across threads sound.
struct Slot<T>(UnsafeCell<Option<T>>);

unsafe impl<T: Send> Sync for Slot<T> {}

/// How many chunks to split `len` items into: enough for load balance
/// (4 per thread, like rayon's depth-based splitting), never more than the
/// item count.
fn chunk_count(len: usize) -> usize {
    let threads = current_num_threads();
    if threads <= 1 || len < 2 {
        1
    } else {
        len.min(threads * 4)
    }
}

/// Splits `items` into `chunks` contiguous runs, applies `f` to each run on
/// the pool, and returns the per-run outputs in order.
fn map_chunks<T, R, F>(items: Vec<T>, chunks: usize, f: F) -> Vec<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> Vec<R> + Sync,
{
    if chunks <= 1 {
        return vec![f(items)];
    }
    let len = items.len();
    let chunk_len = len.div_ceil(chunks);
    let mut inputs = Vec::with_capacity(chunks);
    let mut rest = items;
    while !rest.is_empty() {
        let tail = rest.split_off(chunk_len.min(rest.len()));
        inputs.push(Slot(UnsafeCell::new(Some(std::mem::replace(
            &mut rest, tail,
        )))));
    }
    let outputs: Vec<Slot<Vec<R>>> = (0..inputs.len())
        .map(|_| Slot(UnsafeCell::new(None)))
        .collect();
    run_indexed(inputs.len(), |i| {
        // Sole accessor of slot `i`: indices are claimed exactly once.
        let chunk = unsafe { (*inputs[i].0.get()).take().unwrap() };
        let out = f(chunk);
        unsafe { *outputs[i].0.get() = Some(out) };
    });
    outputs
        .into_iter()
        .map(|s| s.0.into_inner().expect("chunk completed"))
        .collect()
}

/// The one concrete parallel iterator: items are materialized up front and
/// each combinator is a parallel barrier over them, preserving order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub(crate) fn from_vec(items: Vec<T>) -> Self {
        ParIter { items }
    }
}

/// Types convertible into a [`ParIter`]. The `Iter` indirection of real
/// rayon is collapsed: everything converts to the same concrete type.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter::from_vec(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter::from_vec(self.iter().collect())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter::from_vec(self.iter().collect())
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIter<&'a mut T> {
        ParIter::from_vec(self.iter_mut().collect())
    }
}

impl<I: Send> IntoParallelIterator for std::ops::Range<I>
where
    std::ops::Range<I>: Iterator<Item = I>,
{
    type Item = I;
    fn into_par_iter(self) -> ParIter<I> {
        ParIter::from_vec(self.collect())
    }
}

/// rayon's `ParallelIterator`, reduced to the combinators this workspace
/// uses. Provided methods are defined in terms of [`into_vec`], so `impl
/// ParallelIterator` return types keep working.
///
/// [`into_vec`]: ParallelIterator::into_vec
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Materializes the items in order.
    fn into_vec(self) -> Vec<Self::Item>;

    fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        let items = self.into_vec();
        let chunks = chunk_count(items.len());
        let out = map_chunks(items, chunks, |c| c.into_iter().map(&f).collect());
        ParIter::from_vec(out.into_iter().flatten().collect())
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let items = self.into_vec();
        let chunks = chunk_count(items.len());
        map_chunks(items, chunks, |c| {
            c.into_iter().for_each(&f);
            Vec::<()>::new()
        });
    }

    fn filter<P>(self, predicate: P) -> ParIter<Self::Item>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        let items = self.into_vec();
        let chunks = chunk_count(items.len());
        let out = map_chunks(items, chunks, |c| {
            c.into_iter().filter(&predicate).collect()
        });
        ParIter::from_vec(out.into_iter().flatten().collect())
    }

    fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync + Send,
    {
        let items = self.into_vec();
        let chunks = chunk_count(items.len());
        let out = map_chunks(items, chunks, |c| c.into_iter().filter_map(&f).collect());
        ParIter::from_vec(out.into_iter().flatten().collect())
    }

    /// `flat_map` whose closure yields a *serial* iterator per item.
    fn flat_map_iter<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync + Send,
    {
        let items = self.into_vec();
        let chunks = chunk_count(items.len());
        let out = map_chunks(items, chunks, |c| c.into_iter().flat_map(&f).collect());
        ParIter::from_vec(out.into_iter().flatten().collect())
    }

    fn flat_map<B, F>(self, f: F) -> ParIter<B::Item>
    where
        B: IntoParallelIterator,
        F: Fn(Self::Item) -> B + Sync + Send,
    {
        let items = self.into_vec();
        let chunks = chunk_count(items.len());
        let out = map_chunks(items, chunks, |c| {
            c.into_iter()
                .flat_map(|t| f(t).into_par_iter().into_vec())
                .collect()
        });
        ParIter::from_vec(out.into_iter().flatten().collect())
    }

    /// rayon fold semantics: each chunk folds into its own accumulator and
    /// the accumulators come back as a new parallel iterator.
    fn fold<T2, ID, F>(self, identity: ID, fold_op: F) -> ParIter<T2>
    where
        T2: Send,
        ID: Fn() -> T2 + Sync + Send,
        F: Fn(T2, Self::Item) -> T2 + Sync + Send,
    {
        let items = self.into_vec();
        let chunks = chunk_count(items.len());
        let out = map_chunks(items, chunks, |c| {
            vec![c.into_iter().fold(identity(), &fold_op)]
        });
        ParIter::from_vec(out.into_iter().flatten().collect())
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.into_vec().into_iter().fold(identity(), op)
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item>,
    {
        self.into_vec().into_iter().sum()
    }

    fn count(self) -> usize {
        self.into_vec().len()
    }

    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.into_vec().into_iter().min()
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.into_vec().into_iter().max()
    }

    fn all<P>(self, predicate: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Sync + Send,
    {
        self.into_vec().into_iter().all(predicate)
    }

    fn any<P>(self, predicate: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Sync + Send,
    {
        self.into_vec().into_iter().any(predicate)
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_vec().into_iter().collect()
    }

    fn copied<'a, T>(self) -> ParIter<T>
    where
        T: 'a + Copy + Send,
        Self: ParallelIterator<Item = &'a T>,
    {
        ParIter::from_vec(self.into_vec().into_iter().copied().collect())
    }

    fn cloned<'a, T>(self) -> ParIter<T>
    where
        T: 'a + Clone + Send,
        Self: ParallelIterator<Item = &'a T>,
    {
        ParIter::from_vec(self.into_vec().into_iter().cloned().collect())
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn into_vec(self) -> Vec<T> {
        self.items
    }
}

/// Combinators that need a known length / stable indexing.
pub trait IndexedParallelIterator: ParallelIterator {
    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter::from_vec(self.into_vec().into_iter().enumerate().collect())
    }

    fn zip<Z>(self, other: Z) -> ParIter<(Self::Item, Z::Item)>
    where
        Z: IntoParallelIterator,
    {
        let a = self.into_vec();
        let b = other.into_par_iter().into_vec();
        ParIter::from_vec(a.into_iter().zip(b).collect())
    }

    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> IndexedParallelIterator for ParIter<T> {
    fn len(&self) -> usize {
        self.items.len()
    }
}
