//! Offline stand-in for [criterion](https://docs.rs/criterion): the group /
//! bencher / macro API this workspace's benches use, with a simple
//! measurement loop (3 timed runs after one warmup, min + median reported)
//! instead of criterion's statistical machinery.

use std::fmt::Display;
use std::time::Instant;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one closure: `iter` runs it once for warmup, then `samples` times.
pub struct Bencher {
    samples: usize,
    timings: Vec<f64>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.timings.push(start.elapsed().as_secs_f64());
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample count maps onto our much cheaper loop: we keep the
    /// call for API compatibility but cap actual runs at 3.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 3);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.id, &b.timings);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.id, &b.timings);
        self
    }

    pub fn finish(self) {}
}

fn report(group: &str, id: &str, timings: &[f64]) {
    if timings.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted = timings.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    println!(
        "{group}/{id}: min {min:.6}s, median {median:.6}s ({} samples)",
        sorted.len()
    );
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 3,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.id.clone()).bench_function(id, f);
        self
    }
}

/// Re-export so `criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
