//! Test configuration and the deterministic RNG behind input generation.

/// Subset of proptest's config: just the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; we default lower to keep the whole
        // workspace's property suites fast under `cargo test`.
        ProptestConfig { cases: 32 }
    }
}

/// A test-case failure produced with `?` inside a `proptest!` body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail<T: std::fmt::Display>(reason: T) -> Self {
        TestCaseError(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The result type a `proptest!` body desugars to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// xorshift64* generator, seeded from the test name so runs are reproducible.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed so no seed is ever zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`; `hi > lo` required.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }
}
