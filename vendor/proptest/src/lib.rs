//! Offline stand-in for [proptest](https://docs.rs/proptest): deterministic
//! random-input testing with the strategy combinators this workspace uses.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case prints its inputs verbatim;
//! - the RNG is seeded from the test name, so every run generates the same
//!   case sequence (reproducible without a failure-persistence file);
//! - `prop_assert*` are plain `assert*` wrappers (they panic rather than
//!   return `Err`, which the harness treats identically).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Expands each `fn name(arg in strategy, ...) { body }` into a `#[test]`
/// that runs `body` over `config.cases` generated inputs, reporting the
/// failing inputs (via `Debug`) before re-raising the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let case_desc = {
                    let mut s = String::new();
                    $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)*
                    s
                };
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                ));
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            case_desc
                        );
                        panic!("test case failed: {e}");
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            case_desc
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}
