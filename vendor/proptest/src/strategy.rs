//! The `Strategy` trait and primitive strategies: integer ranges, tuples,
//! `Just`, and the `prop_map` / `prop_flat_map` combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there is
/// no value tree: generation is direct and there is no shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.below(self.start as u64, self.end as u64) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.below(*self.start() as u64, *self.end() as u64 + 1) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A, B> Strategy for (A, B)
where
    A: Strategy,
    B: Strategy,
{
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A, B, C> Strategy for (A, B, C)
where
    A: Strategy,
    B: Strategy,
    C: Strategy,
{
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}
