//! Collection strategies: `vec` and `btree_set` with a size range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// Size bounds for a generated collection, half-open like `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            rng.below(self.lo as u64, self.hi as u64) as usize
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Like real proptest, duplicates may leave the set below target size;
        // bound the attempts so narrow element domains terminate.
        for _ in 0..target.saturating_mul(4) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}
