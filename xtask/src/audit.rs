//! The call-graph audit families behind `cargo xtask audit`.
//!
//! Three whole-program rules sit on top of [`crate::callgraph`], each
//! with a checked-in manifest under `xtask/`:
//!
//! - **`panic-reach`** — for every entry point declared in
//!   `xtask/entrypoints.txt`, counts the unaudited `panic-path` sites
//!   (the per-file rule's raw findings) inside functions transitively
//!   reachable from it. `xtask/reach_baseline.txt` pins the allowed
//!   count per entry and only ratchets **down** (same contract as
//!   `panic_baseline.txt`); any growth fails with a shortest
//!   call-path witness (`entry → f → g — unwrap at file:line`) so the
//!   burn-down is actionable, not archaeological.
//! - **`alloc-in-hot-loop`** — flags allocation-shaped expressions
//!   (`Vec::new`, `with_capacity(0)`, `push` on a locally-grown vec,
//!   `collect`, `to_vec`, `to_owned`, `format!`, `vec!`, `Box::new`,
//!   `clone`) inside loop bodies of functions reachable from the
//!   seven s-line kernels and the hygra traversal drivers
//!   ([`HOT_ROOTS`]). Escape: `// lint: alloc: <why>` on the site or
//!   the comment block above.
//! - **`ordering-policy`** — every `Ordering::*` token in production
//!   code outside `crates/util/src/sync.rs` must match a declared
//!   `(path-prefix, op, ordering)` triple in
//!   `xtask/ordering_policy.txt`. `SeqCst` is denied unconditionally —
//!   even a policy line declaring it is itself a finding.
//!
//! Soundness stance: resolution is name+arity best-effort (see
//! [`crate::callgraph`]), so reach counts can under-approximate
//! through `dyn` dispatch, macros, and function pointers. The audit
//! therefore reports its unresolved-call count alongside the verdict
//! and never claims "panic-free" — only "no *resolvable* path grew".

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::lint::{
    self, json_escape, lint_file, Finding, ALLOC_HOT_LOOP, ORDERING_POLICY, PANIC_PATH, PANIC_REACH,
};
use crate::model::FileModel;
use crate::parse::{parse_file, ParsedFile};

/// The entry-point manifest, relative to the workspace root. One spec
/// per line (`#` comments): a full call-graph key or an unambiguous
/// `::`-suffix, e.g. `cmd_stats` or `SLineBuilder::edges`.
pub const ENTRYPOINTS: &str = "xtask/entrypoints.txt";
/// The per-entry panic-reach burn-down baseline, relative to the
/// workspace root. Format: `<allowed-count> <entry-spec>` per line.
pub const REACH_BASELINE: &str = "xtask/reach_baseline.txt";
/// The memory-ordering policy, relative to the workspace root. Format:
/// `<path-prefix> <op|*> <ordering>` per line.
pub const ORDERING_POLICY_FILE: &str = "xtask/ordering_policy.txt";
/// The namespaced audit marker for `alloc-in-hot-loop` escapes.
pub const ALLOC_MARKER: &str = "// lint: alloc";

/// The hot-loop roots: the seven s-line kernels (plus their queue/
/// dynamic variants) and the hygra traversal drivers. Reachability from
/// these defines the "hot set" the allocation rule patrols.
pub const HOT_ROOTS: [&str; 16] = [
    "slinegraph::naive::naive",
    "slinegraph::hashmap::hashmap",
    "slinegraph::intersection::intersection",
    "slinegraph::intersection::intersection_with",
    "slinegraph::pair_sort::pair_sort",
    "slinegraph::queue_single::queue_hashmap",
    "slinegraph::queue_single::queue_hashmap_dynamic",
    "slinegraph::queue_two_phase::queue_intersection",
    "slinegraph::ensemble::ensemble",
    "hygra::bfs::hygra_bfs",
    "hygra::bfs::hygra_bfs_ctx",
    "hygra::bfs::hygra_bfs_with_mode",
    "hygra::cc::hygra_cc",
    "hygra::cc::hygra_cc_ctx",
    "hygra::engine::edge_map",
    "hygra::engine::vertex_map",
];

/// The atomic-op method names the ordering checker attributes an
/// `Ordering::*` argument to (nearest preceding, within the statement).
const ATOMIC_OPS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "into_inner",
];

/// The atomic memory orderings (`std::cmp::Ordering`'s variants are
/// deliberately absent, which keeps comparator code out of scope).
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Everything the audit consumes, injectable so tests can run the
/// whole engine on synthetic workspaces without touching disk.
pub struct AuditInputs {
    /// `(repo-relative path, content)` for every `.rs` file in scope.
    pub files: Vec<(String, String)>,
    /// Content of `xtask/entrypoints.txt`.
    pub entrypoints: String,
    /// Content of `xtask/reach_baseline.txt` (empty = baseline 0
    /// everywhere, which fails closed).
    pub reach_baseline: String,
    /// Content of `xtask/ordering_policy.txt`.
    pub ordering_policy: String,
    /// Hot-loop root specs (the workspace run uses [`HOT_ROOTS`]).
    pub hot_roots: Vec<String>,
}

/// Per-entry-point verdict.
#[derive(Debug)]
pub struct EntryReport {
    /// The spec as written in the manifest.
    pub spec: String,
    /// Call-graph keys the spec resolved to (empty = unresolvable,
    /// which is itself a finding).
    pub resolved: Vec<String>,
    /// Unaudited panic-path sites inside functions reachable from this
    /// entry.
    pub sites: usize,
    /// The baselined allowance, when the baseline has an entry.
    pub baseline: Option<usize>,
    /// Shortest call path to the nearest reachable site, pre-rendered
    /// (`entry → f → g — `unwrap` at file:line`). Present whenever
    /// `sites > 0`.
    pub witness: Option<String>,
}

/// The audit's full result.
#[derive(Debug)]
pub struct AuditReport {
    /// Violations across all three families (empty = audit passes).
    pub findings: Vec<Finding>,
    /// Per-entry panic-reach accounting, manifest order.
    pub entries: Vec<EntryReport>,
    /// Entries whose current count is below their baseline — the
    /// ratchet should be tightened with `audit --update-baseline`.
    pub shrinkable: Vec<String>,
    /// Keys of every function in the hot set (reachable from
    /// [`AuditInputs::hot_roots`]).
    pub hot_fns: Vec<String>,
    /// Total function definitions in the call graph.
    pub total_defs: usize,
    /// Calls the resolver could not attach to any workspace definition
    /// (macros, `dyn` dispatch, std/vendored callees).
    pub unresolved_calls: usize,
}

impl AuditReport {
    /// `true` when the audit found nothing.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// One unaudited panic site, attributed to the innermost enclosing fn.
struct Site {
    file: String,
    line: usize,
    what: String,
}

/// Extracts a short site label from a `panic-path` message: the first
/// backtick-quoted fragment, or a generic fallback.
fn site_label(message: &str, kind: &str) -> String {
    let mut parts = message.split('`');
    if let (Some(_), Some(inner)) = (parts.next(), parts.next()) {
        format!("`{inner}`")
    } else if kind == lint::KIND_INDEX {
        "unchecked indexing".to_string()
    } else {
        "panic site".to_string()
    }
}

/// Runs all three audit families over the given inputs.
pub fn run_audit(inputs: &AuditInputs) -> AuditReport {
    // Per-file models (for marker lookup), parses, and raw panic sites.
    let mut models: BTreeMap<&str, FileModel> = BTreeMap::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    for (path, content) in &inputs.files {
        let m = FileModel::new(content);
        parsed.push(parse_file(path, &m));
        models.insert(path.as_str(), m);
    }
    let graph = CallGraph::build(&parsed);

    // Attribute each unaudited panic-path site to the innermost fn
    // whose line span contains it. Sites outside any fn (consts,
    // statics) have no caller and cannot be *reached*; the per-file
    // rule still covers them.
    let mut def_sites: Vec<Vec<usize>> = vec![Vec::new(); graph.defs.len()];
    let mut sites: Vec<Site> = Vec::new();
    for (path, content) in &inputs.files {
        for f in lint_file(Path::new(path), content) {
            if f.rule != PANIC_PATH {
                continue;
            }
            let mut best: Option<usize> = None;
            for (i, d) in graph.defs.iter().enumerate() {
                if d.file == *path && d.span.0 <= f.line && f.line <= d.span.1 {
                    let tighter = best.is_none_or(|b: usize| {
                        let (s0, s1) = graph.defs[b].span;
                        (d.span.1 - d.span.0) < (s1 - s0)
                    });
                    if tighter {
                        best = Some(i);
                    }
                }
            }
            if let Some(def) = best {
                def_sites[def].push(sites.len());
                sites.push(Site {
                    file: f.file.clone(),
                    line: f.line,
                    what: site_label(&f.message, f.kind),
                });
            }
        }
    }

    let mut findings = Vec::new();

    // ---- family 1: panic-reach -------------------------------------
    let baseline = parse_reach_baseline(&inputs.reach_baseline);
    let mut entries = Vec::new();
    let mut shrinkable = Vec::new();
    for (lineno, raw) in inputs.entrypoints.lines().enumerate() {
        let spec = raw.trim();
        if spec.is_empty() || spec.starts_with('#') {
            continue;
        }
        let roots = graph.find(spec);
        if roots.is_empty() {
            findings.push(Finding {
                rule: PANIC_REACH,
                kind: "",
                file: ENTRYPOINTS.to_string(),
                line: lineno + 1,
                message: format!(
                    "entry point `{spec}` does not resolve to any workspace \
                     function — fix the manifest or the moved/renamed definition"
                ),
            });
            entries.push(EntryReport {
                spec: spec.to_string(),
                resolved: Vec::new(),
                sites: 0,
                baseline: baseline.get(spec).copied(),
                witness: None,
            });
            continue;
        }
        let reach = graph.reachable(&roots);
        let count: usize = def_sites
            .iter()
            .enumerate()
            .filter(|(i, _)| reach[*i])
            .map(|(_, s)| s.len())
            .sum();
        let witness = if count > 0 {
            graph
                .shortest_path(&roots, |i| !def_sites[i].is_empty())
                .map(|path| {
                    let site = &sites[def_sites[*path.last().unwrap_or(&roots[0])][0]];
                    let hops: Vec<&str> =
                        path.iter().map(|&i| graph.defs[i].key.as_str()).collect();
                    format!(
                        "{} — {} at {}:{}",
                        hops.join(" → "),
                        site.what,
                        site.file,
                        site.line
                    )
                })
        } else {
            None
        };
        let allowed = baseline.get(spec).copied();
        if count > allowed.unwrap_or(0) {
            findings.push(Finding {
                rule: PANIC_REACH,
                kind: "",
                file: ENTRYPOINTS.to_string(),
                line: lineno + 1,
                message: format!(
                    "`{spec}` reaches {count} unaudited panic site(s), baseline \
                     allows {} — burn the new path down (witness: {})",
                    allowed.unwrap_or(0),
                    witness.as_deref().unwrap_or("none resolvable"),
                ),
            });
        } else if count < allowed.unwrap_or(0) {
            shrinkable.push(format!("{spec}: {count} < {}", allowed.unwrap_or(0)));
        }
        entries.push(EntryReport {
            spec: spec.to_string(),
            resolved: roots.iter().map(|&i| graph.defs[i].key.clone()).collect(),
            sites: count,
            baseline: allowed,
            witness,
        });
    }

    // ---- family 2: alloc-in-hot-loop -------------------------------
    let hot_roots: Vec<usize> = inputs
        .hot_roots
        .iter()
        .flat_map(|spec| graph.find(spec))
        .collect();
    let hot = graph.reachable(&hot_roots);
    let mut hot_fns: Vec<String> = Vec::new();
    for (i, d) in graph.defs.iter().enumerate() {
        if !hot[i] || d.is_test {
            continue;
        }
        hot_fns.push(d.key.clone());
        let Some(m) = models.get(d.file.as_str()) else {
            continue;
        };
        for a in &d.allocs {
            if !a.in_loop || m.marked(a.line, ALLOC_MARKER) {
                continue;
            }
            findings.push(Finding {
                rule: ALLOC_HOT_LOOP,
                kind: "",
                file: d.file.clone(),
                line: a.line,
                message: format!(
                    "{} inside a loop body of `{}`, which is reachable from the \
                     hot kernels — hoist the allocation out of the loop, reuse a \
                     buffer, or justify with `{ALLOC_MARKER}: <why>`",
                    a.what, d.key
                ),
            });
        }
    }

    // ---- family 3: ordering-policy ---------------------------------
    let (policy, mut policy_findings) = parse_ordering_policy(&inputs.ordering_policy);
    findings.append(&mut policy_findings);
    for (path, _) in &inputs.files {
        if path == "crates/util/src/sync.rs"
            || path.contains("/tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
        {
            continue;
        }
        let Some(m) = models.get(path.as_str()) else {
            continue;
        };
        for i in 0..m.code.len() {
            if !m.ident_is(i, "Ordering") || !m.path_sep(i + 1) || m.in_test(i) {
                continue;
            }
            let Some(ord) = ORDERINGS.iter().find(|o| m.ident_is(i + 3, o)).copied() else {
                continue; // std::cmp::Ordering::{Less,Greater,Equal}
            };
            let line = m.code[i].line;
            let op = nearest_atomic_op(m, i);
            if ord == "SeqCst" {
                findings.push(Finding {
                    rule: ORDERING_POLICY,
                    kind: "",
                    file: path.clone(),
                    line,
                    message: format!(
                        "`Ordering::SeqCst` on `{}` — SeqCst is denied workspace-wide \
                         (DESIGN §5b: Relaxed seed loads, AcqRel claims, \
                         Release/Acquire stamps); pick the weakest ordering the \
                         algorithm's proof needs",
                        op.unwrap_or("<unknown op>")
                    ),
                });
                continue;
            }
            let declared = policy.iter().any(|r| {
                path.starts_with(&r.prefix)
                    && (r.op == "*" || Some(r.op.as_str()) == op)
                    && r.ordering == ord
            });
            if !declared {
                findings.push(Finding {
                    rule: ORDERING_POLICY,
                    kind: "",
                    file: path.clone(),
                    line,
                    message: format!(
                        "`Ordering::{ord}` on `{}` is not declared in \
                         {ORDERING_POLICY_FILE} for this path — either the code \
                         drifted from the DESIGN §5b policy or the policy needs a \
                         reviewed new triple",
                        op.unwrap_or("<unknown op>")
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    AuditReport {
        findings,
        entries,
        shrinkable,
        hot_fns,
        total_defs: graph.defs.len(),
        unresolved_calls: graph.unresolved.len(),
    }
}

/// Walks back from the `Ordering` token to the nearest atomic-op method
/// name within the same statement (bounded by `;`/`{`/`}`).
fn nearest_atomic_op(m: &FileModel, ordering_idx: usize) -> Option<&'static str> {
    let mut j = ordering_idx;
    while j > 0 {
        j -= 1;
        let t = &m.code[j];
        match t.kind {
            crate::lexer::Kind::Punct if matches!(t.text.as_str(), ";" | "{" | "}") => return None,
            crate::lexer::Kind::Ident => {
                if let Some(op) = ATOMIC_OPS.iter().find(|o| **o == t.text) {
                    return Some(op);
                }
            }
            _ => {}
        }
    }
    None
}

/// One declared `(path-prefix, op, ordering)` triple.
struct PolicyRule {
    prefix: String,
    op: String,
    ordering: String,
}

/// Parses the policy grammar: `<path-prefix> <op|*> <ordering>` per
/// line, `#` comments and blanks ignored. Malformed lines and declared
/// `SeqCst` are findings against the policy file itself — a policy that
/// cannot be parsed must not silently allow anything.
fn parse_ordering_policy(text: &str) -> (Vec<PolicyRule>, Vec<Finding>) {
    let mut rules = Vec::new();
    let mut findings = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let bad = |message: String| Finding {
            rule: ORDERING_POLICY,
            kind: "",
            file: ORDERING_POLICY_FILE.to_string(),
            line: lineno + 1,
            message,
        };
        let [prefix, op, ordering] = parts.as_slice() else {
            findings.push(bad(format!(
                "malformed policy line `{line}` — expected `<path-prefix> <op|*> <ordering>`"
            )));
            continue;
        };
        if *ordering == "SeqCst" {
            findings.push(bad(
                "the policy must not declare `SeqCst` — it is denied workspace-wide".to_string(),
            ));
            continue;
        }
        if !ORDERINGS.contains(ordering) {
            findings.push(bad(format!("unknown ordering `{ordering}`")));
            continue;
        }
        if *op != "*" && !ATOMIC_OPS.contains(op) {
            findings.push(bad(format!("unknown atomic op `{op}`")));
            continue;
        }
        rules.push(PolicyRule {
            prefix: (*prefix).to_string(),
            op: (*op).to_string(),
            ordering: (*ordering).to_string(),
        });
    }
    (rules, findings)
}

/// Parsed `reach_baseline.txt`: allowed site count per entry spec.
pub fn parse_reach_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(count), Some(spec)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            continue;
        };
        out.insert(spec.to_string(), count);
    }
    out
}

/// Serializes the reach baseline in the canonical format, from a
/// finished report's per-entry counts.
pub fn format_reach_baseline(entries: &[EntryReport]) -> String {
    let mut out = String::from(
        "# panic-reach burn-down baseline — per-entry-point counts of unaudited\n\
         # abort sites transitively reachable through the workspace call graph.\n\
         # `cargo xtask audit` fails when any entry GROWS past its count; shrink\n\
         # by burning paths down, then refresh with `cargo xtask audit\n\
         # --update-baseline`. Never edit upward.\n\
         # format: <allowed-count> <entry-spec>\n",
    );
    let mut sorted: Vec<&EntryReport> = entries.iter().collect();
    sorted.sort_by(|a, b| a.spec.cmp(&b.spec));
    for e in sorted {
        out.push_str(&format!("{} {}\n", e.sites, e.spec));
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Assembles [`AuditInputs`] from a workspace root on disk: every `.rs`
/// under `crates/`, the three manifests (missing file = empty, which
/// fails closed for the baseline and the policy), and [`HOT_ROOTS`].
pub fn inputs_from_tree(root: &Path) -> AuditInputs {
    let mut files = Vec::new();
    let mut paths = Vec::new();
    collect_rs(&root.join("crates"), &mut paths);
    paths.sort();
    for p in &paths {
        let Ok(content) = fs::read_to_string(p) else {
            continue;
        };
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, content));
    }
    let read = |rel: &str| fs::read_to_string(root.join(rel)).unwrap_or_default();
    AuditInputs {
        files,
        entrypoints: read(ENTRYPOINTS),
        reach_baseline: read(REACH_BASELINE),
        ordering_policy: read(ORDERING_POLICY_FILE),
        hot_roots: HOT_ROOTS.iter().map(|s| s.to_string()).collect(),
    }
}

/// Runs the workspace audit from disk.
pub fn audit_tree(root: &Path) -> AuditReport {
    run_audit(&inputs_from_tree(root))
}

/// The machine-readable report `cargo xtask audit --json` emits.
pub fn to_json(report: &AuditReport) -> String {
    let entries: Vec<String> = report
        .entries
        .iter()
        .map(|e| {
            let resolved: Vec<String> = e
                .resolved
                .iter()
                .map(|k| format!("\"{}\"", json_escape(k)))
                .collect();
            let baseline = e.baseline.map_or("null".to_string(), |b| b.to_string());
            let witness = e
                .witness
                .as_ref()
                .map_or("null".to_string(), |w| format!("\"{}\"", json_escape(w)));
            let ok = e.baseline.unwrap_or(0) >= e.sites && !e.resolved.is_empty();
            format!(
                "    {{\"entry\": \"{}\", \"resolved\": [{}], \"reach_count\": {}, \
                 \"baseline\": {}, \"witness\": {}, \"ok\": {}}}",
                json_escape(&e.spec),
                resolved.join(", "),
                e.sites,
                baseline,
                witness,
                ok
            )
        })
        .collect();
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            )
        })
        .collect();
    format!(
        "{{\n  \"passed\": {},\n  \"total_defs\": {},\n  \"unresolved_calls\": {},\n  \
         \"hot_set_size\": {},\n  \"entry_points\": [\n{}\n  ],\n  \"findings\": [\n{}\n  ]\n}}",
        report.passed(),
        report.total_defs,
        report.unresolved_calls,
        report.hot_fns.len(),
        entries.join(",\n"),
        findings.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(files: &[(&str, &str)]) -> AuditInputs {
        AuditInputs {
            files: files
                .iter()
                .map(|(p, c)| (p.to_string(), c.to_string()))
                .collect(),
            entrypoints: String::new(),
            reach_baseline: String::new(),
            ordering_policy: String::new(),
            hot_roots: Vec::new(),
        }
    }

    #[test]
    fn three_deep_unwrap_is_caught_with_a_witness_path() {
        let mut inp = inputs(&[(
            "crates/core/src/a.rs",
            "\
pub fn entry(x: Option<u32>) { middle(x); }
fn middle(x: Option<u32>) { deep(x); }
fn deep(x: Option<u32>) { let _ = x.unwrap(); }
",
        )]);
        inp.entrypoints = "a::entry\n".to_string();
        let r = run_audit(&inp);
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].sites, 1);
        let witness = r.entries[0].witness.as_deref().unwrap();
        assert!(witness.contains("entry → "), "{witness}");
        assert!(witness.contains("a::deep"), "{witness}");
        assert!(witness.contains("`.unwrap()`"), "{witness}");
        assert!(witness.contains("crates/core/src/a.rs:3"), "{witness}");
        // baseline 0 → the growth is a finding carrying the witness
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == PANIC_REACH)
            .expect("reach finding");
        assert!(f.message.contains("a::deep"), "{}", f.message);
    }

    #[test]
    fn baselined_reach_passes_and_shrunk_reach_is_reported() {
        let src = "pub fn entry(x: Option<u32>) { let _ = x.unwrap(); }\npub fn clean() {}\n";
        let mut inp = inputs(&[("crates/core/src/a.rs", src)]);
        inp.entrypoints = "a::entry\na::clean\n".to_string();
        inp.reach_baseline = "1 a::entry\n3 a::clean\n".to_string();
        let r = run_audit(&inp);
        assert!(
            r.findings.iter().all(|f| f.rule != PANIC_REACH),
            "{:?}",
            r.findings
        );
        // clean is under its stale baseline of 3 → shrinkable
        assert_eq!(r.shrinkable, vec!["a::clean: 0 < 3"]);
    }

    #[test]
    fn unresolvable_entry_is_a_finding_not_a_silent_pass() {
        let mut inp = inputs(&[("crates/core/src/a.rs", "pub fn real() {}\n")]);
        inp.entrypoints = "no_such_fn\n".to_string();
        let r = run_audit(&inp);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == PANIC_REACH && f.message.contains("no_such_fn")));
    }

    #[test]
    fn audited_sites_do_not_count_toward_reach() {
        let mut inp = inputs(&[(
            "crates/core/src/a.rs",
            "\
pub fn entry(x: Option<u32>) {
    // lint: panic: audited — input validated by caller
    let _ = x.unwrap();
}
",
        )]);
        inp.entrypoints = "a::entry\n".to_string();
        let r = run_audit(&inp);
        assert_eq!(r.entries[0].sites, 0);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn alloc_in_hot_loop_flags_and_escape_clears() {
        let src = "\
pub fn kernel(n: usize) {
    for _i in 0..n {
        let v: Vec<u32> = Vec::new();
        drop(v);
    }
}
pub fn cold(n: usize) {
    for _i in 0..n {
        let v: Vec<u32> = Vec::new();
        drop(v);
    }
}
";
        let mut inp = inputs(&[("crates/core/src/k.rs", src)]);
        inp.hot_roots = vec!["k::kernel".to_string()];
        let r = run_audit(&inp);
        let allocs: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == ALLOC_HOT_LOOP)
            .collect();
        // only the hot kernel is flagged, the cold twin is not
        assert_eq!(allocs.len(), 1, "{allocs:?}");
        assert_eq!(allocs[0].line, 3);
        assert!(allocs[0].message.contains("k::kernel"));

        let escaped = src.replace(
            "        let v: Vec<u32> = Vec::new();",
            "        // lint: alloc: per-iteration scratch, measured negligible\n        \
             let v: Vec<u32> = Vec::new();",
        );
        let mut inp = inputs(&[("crates/core/src/k.rs", &escaped)]);
        inp.hot_roots = vec!["k::kernel".to_string()];
        let r = run_audit(&inp);
        assert!(
            r.findings.iter().all(|f| f.rule != ALLOC_HOT_LOOP),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn alloc_rule_follows_the_call_graph_into_helpers() {
        let mut inp = inputs(&[(
            "crates/core/src/k.rs",
            "\
pub fn kernel(n: usize) { helper(n); }
fn helper(n: usize) {
    for _i in 0..n {
        let s = format!(\"x\");
        drop(s);
    }
}
",
        )]);
        inp.hot_roots = vec!["k::kernel".to_string()];
        let r = run_audit(&inp);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == ALLOC_HOT_LOOP && f.message.contains("k::helper")));
    }

    #[test]
    fn seqcst_is_denied_even_when_declared() {
        let src = "\
use nwhy_util::sync::Ordering;
pub fn f(a: &nwhy_util::sync::AtomicU32) {
    a.store(1, Ordering::SeqCst);
}
";
        let mut inp = inputs(&[("crates/core/src/s.rs", src)]);
        inp.ordering_policy = "crates/ store SeqCst\n".to_string();
        let r = run_audit(&inp);
        // the site fires AND the policy line itself fires
        assert_eq!(
            r.findings
                .iter()
                .filter(|f| f.rule == ORDERING_POLICY)
                .count(),
            2,
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn declared_triple_passes_and_undeclared_fires() {
        let src = "\
use nwhy_util::sync::Ordering;
pub fn f(a: &nwhy_util::sync::AtomicU32) {
    let _ = a.load(Ordering::Acquire);
    a.store(1, Ordering::Release);
}
";
        let mut inp = inputs(&[("crates/obs/src/ring.rs", src)]);
        inp.ordering_policy = "crates/obs/src/ring.rs load Acquire\n".to_string();
        let r = run_audit(&inp);
        let hits: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == ORDERING_POLICY)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 4); // the undeclared Release store
        assert!(hits[0].message.contains("store"));
    }

    #[test]
    fn cmp_ordering_and_test_regions_are_out_of_scope() {
        let src = "\
pub fn f(a: u32, b: u32) -> bool {
    matches!(a.cmp(&b), std::cmp::Ordering::Less)
}
#[cfg(test)]
mod tests {
    pub fn t(a: &nwhy_util::sync::AtomicU32) {
        a.store(1, Ordering::SeqCst);
    }
}
";
        let inp = inputs(&[("crates/core/src/c.rs", src)]);
        let r = run_audit(&inp);
        assert!(
            r.findings.iter().all(|f| f.rule != ORDERING_POLICY),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn wildcard_op_and_prefix_matching() {
        let src = "\
use nwhy_util::sync::Ordering;
pub fn f(a: &nwhy_util::sync::AtomicU32) {
    a.fetch_add(1, Ordering::Relaxed);
    let _ = a.swap(0, Ordering::Relaxed);
}
";
        let mut inp = inputs(&[("crates/core/src/w.rs", src)]);
        inp.ordering_policy = "crates/ * Relaxed\n".to_string();
        let r = run_audit(&inp);
        assert!(
            r.findings.iter().all(|f| f.rule != ORDERING_POLICY),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn malformed_policy_line_is_a_finding() {
        let mut inp = inputs(&[("crates/core/src/a.rs", "pub fn f() {}\n")]);
        inp.ordering_policy = "crates/ load\nnot enough fields\n".to_string();
        let r = run_audit(&inp);
        assert_eq!(
            r.findings
                .iter()
                .filter(|f| f.rule == ORDERING_POLICY && f.file == ORDERING_POLICY_FILE)
                .count(),
            2
        );
    }

    #[test]
    fn reach_baseline_roundtrip() {
        let entries = vec![
            EntryReport {
                spec: "b::later".into(),
                resolved: vec!["x::b::later".into()],
                sites: 7,
                baseline: None,
                witness: None,
            },
            EntryReport {
                spec: "a::first".into(),
                resolved: vec!["x::a::first".into()],
                sites: 0,
                baseline: None,
                witness: None,
            },
        ];
        let text = format_reach_baseline(&entries);
        let parsed = parse_reach_baseline(&text);
        assert_eq!(parsed.get("a::first"), Some(&0));
        assert_eq!(parsed.get("b::later"), Some(&7));
        // sorted output: a::first before b::later
        let a = text.find("a::first").unwrap();
        let b = text.find("b::later").unwrap();
        assert!(a < b);
    }

    #[test]
    fn json_report_carries_the_contract_fields() {
        let mut inp = inputs(&[(
            "crates/core/src/a.rs",
            "pub fn entry(x: Option<u32>) { let _ = x.unwrap(); }\n",
        )]);
        inp.entrypoints = "a::entry\n".to_string();
        inp.reach_baseline = "1 a::entry\n".to_string();
        let r = run_audit(&inp);
        let j = to_json(&r);
        assert!(j.contains("\"passed\": true"), "{j}");
        assert!(j.contains("\"entry\": \"a::entry\""), "{j}");
        assert!(j.contains("\"reach_count\": 1"), "{j}");
        assert!(j.contains("\"baseline\": 1"), "{j}");
        assert!(j.contains("\"ok\": true"), "{j}");
        assert!(j.contains("\"witness\": \""), "{j}");
    }
}
