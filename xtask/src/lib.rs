//! Repo automation tasks (`cargo xtask <task>`), following the
//! dependency-free xtask pattern: a plain workspace member invoked
//! through the `.cargo/config.toml` alias, so CI and contributors need
//! nothing beyond the Rust toolchain.

pub mod audit;
pub mod bench_diff;
pub mod callgraph;
pub mod check_prom;
pub mod lexer;
pub mod lint;
pub mod model;
pub mod parse;
pub mod sarif;
