//! SARIF 2.1.0 output for `cargo xtask lint --sarif`.
//!
//! Emits the minimal valid shape GitHub code scanning ingests: one run
//! with a `tool.driver` carrying the nine-rule table, and one `result`
//! per finding with a `physicalLocation` (`artifactLocation.uri` +
//! `region.startLine`). Hand-rolled JSON, same as the rest of xtask —
//! the workspace adds no external dependencies for tooling.
//!
//! Schema pointer: <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>

use crate::lint::{json_escape, rule_description, Finding, ALL_RULES};

/// Serializes findings as a SARIF 2.1.0 log. Every finding becomes a
/// `result` at level `error` (the lint is binary: a finding fails CI).
pub fn to_sarif(findings: &[Finding]) -> String {
    let rules: Vec<String> = ALL_RULES
        .iter()
        .map(|r| {
            format!(
                "          {{\n\
                 \x20           \"id\": \"{}\",\n\
                 \x20           \"shortDescription\": {{\"text\": \"{}\"}},\n\
                 \x20           \"defaultConfiguration\": {{\"level\": \"error\"}}\n\
                 \x20         }}",
                json_escape(r),
                json_escape(rule_description(r))
            )
        })
        .collect();
    let results: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "        {{\n\
                 \x20         \"ruleId\": \"{}\",\n\
                 \x20         \"level\": \"error\",\n\
                 \x20         \"message\": {{\"text\": \"{}\"}},\n\
                 \x20         \"locations\": [\n\
                 \x20           {{\n\
                 \x20             \"physicalLocation\": {{\n\
                 \x20               \"artifactLocation\": {{\"uri\": \"{}\"}},\n\
                 \x20               \"region\": {{\"startLine\": {}}}\n\
                 \x20             }}\n\
                 \x20           }}\n\
                 \x20         ]\n\
                 \x20       }}",
                json_escape(f.rule),
                json_escape(&f.message),
                json_escape(&f.file),
                f.line
            )
        })
        .collect();
    format!(
        "{{\n\
         \x20 \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
         \x20 \"version\": \"2.1.0\",\n\
         \x20 \"runs\": [\n\
         \x20   {{\n\
         \x20     \"tool\": {{\n\
         \x20       \"driver\": {{\n\
         \x20         \"name\": \"xtask-lint\",\n\
         \x20         \"informationUri\": \"https://github.com/nwhy/nwhy\",\n\
         \x20         \"rules\": [\n{}\n\
         \x20         ]\n\
         \x20       }}\n\
         \x20     }},\n\
         \x20     \"results\": [{}]\n\
         \x20   }}\n\
         \x20 ]\n\
         }}",
        rules.join(",\n"),
        if results.is_empty() {
            String::new()
        } else {
            format!("\n{}\n      ", results.join(",\n"))
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{Finding, PANIC_PATH};

    #[test]
    fn sarif_shape_has_tool_rules_and_locations() {
        let f = Finding {
            rule: PANIC_PATH,
            kind: "panic",
            file: "crates/io/src/binary.rs".into(),
            line: 42,
            message: "`.unwrap()` aborts".into(),
        };
        let s = to_sarif(&[f]);
        // SARIF 2.1.0 required shape
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"tool\""));
        assert!(s.contains("\"driver\""));
        assert!(s.contains("\"name\": \"xtask-lint\""));
        assert!(s.contains("\"ruleId\": \"panic-path\""));
        assert!(s.contains("\"physicalLocation\""));
        assert!(s.contains("\"artifactLocation\": {\"uri\": \"crates/io/src/binary.rs\"}"));
        assert!(s.contains("\"startLine\": 42"));
        // all nine rules are declared in the driver table
        for r in ALL_RULES {
            assert!(s.contains(&format!("\"id\": \"{r}\"")), "missing rule {r}");
        }
    }

    #[test]
    fn sarif_empty_findings_is_valid_run() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\": []"));
        assert!(s.contains("\"version\": \"2.1.0\""));
    }

    #[test]
    fn sarif_escapes_messages() {
        let f = Finding {
            rule: PANIC_PATH,
            kind: "panic",
            file: "a.rs".into(),
            line: 1,
            message: "say \"no\"\nplease".into(),
        };
        let s = to_sarif(&[f]);
        assert!(s.contains("say \\\"no\\\"\\nplease"));
    }
}
