//! `cargo xtask check-prom` — a dependency-free validator for the
//! Prometheus text exposition (format 0.0.4) that `nwhy-cli
//! --metrics=prom` emits.
//!
//! CI pipes the CLI's output through this checker so a formatting
//! regression (bad metric name, torn label escaping, non-cumulative
//! histogram, NaN sample) fails the build rather than silently breaking
//! the scrape. The checks are stricter than a Prometheus server, which
//! is deliberate: this validates *our* exposition contract, not the
//! whole grammar.
//!
//! Checks, per family:
//!
//! - every sample line parses as `name{labels} value`;
//! - names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, labels
//!   `[a-zA-Z_][a-zA-Z0-9_]*`, label values use only the three legal
//!   escapes (`\\`, `\"`, `\n`);
//! - every sample's family carries exactly one `# TYPE`, declared
//!   before its first sample;
//! - sample values are finite (the nwhy exposition never emits `NaN` —
//!   empty windows drop the sample instead);
//! - `counter` sample names end in `_total`;
//! - `histogram` `_bucket` series carry an `le` label, appear in
//!   ascending `le` order, are cumulative, and end with an `le="+Inf"`
//!   bucket equal to the family's `_count`;
//! - no duplicate (name, labelset) samples.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One validation failure, with the 1-indexed line it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for PromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Outcome of a validation pass: family/sample counts for the summary
/// line plus every error found (empty = valid).
#[derive(Debug, Default)]
pub struct PromReport {
    pub families: usize,
    pub samples: usize,
    pub errors: Vec<PromError>,
}

impl PromReport {
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Label pairs in their on-wire (still-escaped) form.
type Labels = Vec<(String, String)>;

/// Splits `name{labels}` into the name and its parsed label pairs.
/// Labels keep their *escaped* form (escaping is validated, not
/// decoded — duplicate detection wants the on-wire representation).
fn parse_series(s: &str) -> Result<(&str, Labels), String> {
    let Some(open) = s.find('{') else {
        return Ok((s, Vec::new()));
    };
    let name = &s[..open];
    let rest = &s[open + 1..];
    let Some(body) = rest.strip_suffix('}') else {
        return Err("unterminated label set (missing `}`)".into());
    };
    let mut labels = Vec::new();
    let mut it = body.char_indices().peekable();
    while it.peek().is_some() {
        // label name up to '='
        let start = it.peek().map_or(0, |&(i, _)| i);
        let mut eq = None;
        for (i, c) in it.by_ref() {
            if c == '=' {
                eq = Some(i);
                break;
            }
        }
        let Some(eq) = eq else {
            return Err("label without `=`".into());
        };
        let lname = &body[start..eq];
        if !valid_label_name(lname) {
            return Err(format!("bad label name `{lname}`"));
        }
        // opening quote
        match it.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label `{lname}` value must be quoted")),
        }
        // escaped value up to the closing quote
        let vstart = it.peek().map_or(body.len(), |&(i, _)| i);
        let mut vend = None;
        while let Some((i, c)) = it.next() {
            match c {
                '\\' => match it.next() {
                    Some((_, '\\' | '"' | 'n')) => {}
                    _ => return Err(format!("label `{lname}` has an invalid escape")),
                },
                '"' => {
                    vend = Some(i);
                    break;
                }
                '\n' => return Err(format!("label `{lname}` has a raw newline")),
                _ => {}
            }
        }
        let Some(vend) = vend else {
            return Err(format!("label `{lname}` value is unterminated"));
        };
        labels.push((lname.to_string(), body[vstart..vend].to_string()));
        // separator or end
        match it.next() {
            None => break,
            Some((_, ',')) => {}
            Some((_, c)) => return Err(format!("expected `,` between labels, got `{c}`")),
        }
    }
    Ok((name, labels))
}

/// The family a sample belongs to: histogram series suffixes collapse
/// onto their base name, as `# TYPE base histogram` covers them.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    if types.contains_key(name) {
        return name;
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Parses an exposition value: plain float syntax plus the `+Inf` /
/// `-Inf` spellings used in `le` labels and sample values.
fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        _ => s.parse().ok(),
    }
}

/// Validates a full exposition document.
#[allow(clippy::too_many_lines)] // lint: one linear pass over the grammar
pub fn check(input: &str) -> PromReport {
    let mut report = PromReport::default();
    let mut types: BTreeMap<String, String> = BTreeMap::new(); // family -> type
    let mut type_line: BTreeMap<String, usize> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    // histogram family -> [(le, cumulative count, line)]
    let mut buckets: BTreeMap<String, Vec<(f64, f64, usize)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let err = |line: usize, message: String| PromError { line, message };

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    report
                        .errors
                        .push(err(line_no, format!("bad TYPE metric name `{name}`")));
                    continue;
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    report
                        .errors
                        .push(err(line_no, format!("unknown TYPE `{kind}` for `{name}`")));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    report
                        .errors
                        .push(err(line_no, format!("duplicate TYPE for `{name}`")));
                }
                type_line.insert(name.to_string(), line_no);
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    report
                        .errors
                        .push(err(line_no, format!("bad HELP metric name `{name}`")));
                }
                if !helps.insert(name.to_string()) {
                    report
                        .errors
                        .push(err(line_no, format!("duplicate HELP for `{name}`")));
                }
            }
            // other comments are free-form
            continue;
        }

        // sample line: `series value` (a timestamp would be a second
        // trailing field; the nwhy exposition never emits one)
        let Some((series, rest)) = line.rsplit_once(' ') else {
            report
                .errors
                .push(err(line_no, "sample line has no value field".into()));
            continue;
        };
        let (name, labels) = match parse_series(series) {
            Ok(parsed) => parsed,
            Err(e) => {
                report.errors.push(err(line_no, e));
                continue;
            }
        };
        if !valid_metric_name(name) {
            report
                .errors
                .push(err(line_no, format!("bad metric name `{name}`")));
            continue;
        }
        let Some(value) = parse_value(rest) else {
            report
                .errors
                .push(err(line_no, format!("unparsable value `{rest}`")));
            continue;
        };
        if value.is_nan() {
            report.errors.push(err(
                line_no,
                format!("`{name}` emits NaN (the nwhy exposition must drop the sample instead)"),
            ));
        }
        report.samples += 1;
        if !seen_series.insert(series.to_string()) {
            report
                .errors
                .push(err(line_no, format!("duplicate series `{series}`")));
        }

        let family = family_of(name, &types);
        match types.get(family).map(String::as_str) {
            None => {
                report.errors.push(err(
                    line_no,
                    format!("sample `{name}` has no preceding # TYPE"),
                ));
            }
            Some("counter") => {
                if !name.ends_with("_total") {
                    report.errors.push(err(
                        line_no,
                        format!("counter sample `{name}` must end in `_total`"),
                    ));
                }
                if value < 0.0 {
                    report
                        .errors
                        .push(err(line_no, format!("counter `{name}` is negative")));
                }
            }
            Some("histogram") => {
                if name.ends_with("_bucket") {
                    let Some(le) = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .and_then(|(_, v)| parse_value(v))
                    else {
                        report.errors.push(err(
                            line_no,
                            format!("histogram bucket `{series}` lacks a numeric `le` label"),
                        ));
                        continue;
                    };
                    buckets
                        .entry(family.to_string())
                        .or_default()
                        .push((le, value, line_no));
                } else if name.ends_with("_count") {
                    counts.insert(family.to_string(), value);
                }
            }
            Some(_) => {}
        }
    }

    // cross-line histogram checks
    for (family, series) in &buckets {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = 0.0f64;
        let mut saw_inf = false;
        for &(le, count, line_no) in series {
            if le <= prev_le {
                report.errors.push(err(
                    line_no,
                    format!("`{family}_bucket` le values must be strictly ascending"),
                ));
            }
            if count < prev_count {
                report.errors.push(err(
                    line_no,
                    format!("`{family}_bucket` counts must be cumulative"),
                ));
            }
            if le.is_infinite() && le > 0.0 {
                saw_inf = true;
                if let Some(&total) = counts.get(family) {
                    #[allow(clippy::float_cmp)] // lint: both sides are exact u64 renders
                    if count != total {
                        report.errors.push(err(
                            line_no,
                            format!("`{family}` +Inf bucket {count} != _count {total}"),
                        ));
                    }
                }
            }
            prev_le = le;
            prev_count = count;
        }
        if !saw_inf {
            let line_no = series.last().map_or(0, |&(_, _, l)| l);
            report.errors.push(err(
                line_no,
                format!("`{family}_bucket` is missing the `le=\"+Inf\"` bucket"),
            ));
        }
    }

    report.families = types.len();
    report
}

/// Asserts that at least one sample line contains `needle` — a metric
/// name (`nwhy_op_latency_microseconds`) or a label fragment
/// (`quantile="0.99"`). CI uses this to require the per-op latency
/// gauges to be present. Comment and blank lines never satisfy a
/// requirement.
pub fn requires(input: &str, needle: &str) -> bool {
    input
        .lines()
        .any(|l| !l.starts_with('#') && !l.trim().is_empty() && l.contains(needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP nwhy_bfs_rounds_total Cumulative nwhy counter bfs.rounds.
# TYPE nwhy_bfs_rounds_total counter
nwhy_bfs_rounds_total 12
# HELP nwhy_hist_bfs_frontier_edges Pow2-bucket histogram.
# TYPE nwhy_hist_bfs_frontier_edges histogram
nwhy_hist_bfs_frontier_edges_bucket{le=\"0\"} 1
nwhy_hist_bfs_frontier_edges_bucket{le=\"1\"} 3
nwhy_hist_bfs_frontier_edges_bucket{le=\"+Inf\"} 4
nwhy_hist_bfs_frontier_edges_sum 9
nwhy_hist_bfs_frontier_edges_count 4
# HELP nwhy_op_latency_microseconds Trailing-window latency quantiles per operation.
# TYPE nwhy_op_latency_microseconds gauge
nwhy_op_latency_microseconds{op=\"sline.hashmap\",quantile=\"0.99\"} 127
";

    #[test]
    fn accepts_a_well_formed_exposition() {
        let r = check(GOOD);
        assert!(r.passed(), "{:?}", r.errors);
        assert_eq!(r.families, 3);
        assert_eq!(r.samples, 7);
    }

    #[test]
    fn accepts_the_empty_document() {
        assert!(check("").passed());
    }

    #[test]
    fn rejects_samples_without_type() {
        let r = check("loose_metric 1\n");
        assert!(!r.passed());
        assert!(r.errors[0].message.contains("no preceding # TYPE"));
    }

    #[test]
    fn rejects_nan_and_bad_values() {
        let doc = "# TYPE g gauge\ng NaN\n";
        let r = check(doc);
        assert!(r.errors.iter().any(|e| e.message.contains("NaN")));
        let r = check("# TYPE g gauge\ng twelve\n");
        assert!(r.errors.iter().any(|e| e.message.contains("unparsable")));
    }

    #[test]
    fn rejects_counter_without_total_suffix() {
        let r = check("# TYPE nwhy_x counter\nnwhy_x 1\n");
        assert!(r.errors.iter().any(|e| e.message.contains("_total")));
    }

    #[test]
    fn rejects_non_cumulative_and_unordered_buckets() {
        let doc = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"0\"} 2
h_bucket{le=\"+Inf\"} 5
h_count 5
";
        let r = check(doc);
        assert!(r.errors.iter().any(|e| e.message.contains("ascending")));
        assert!(r.errors.iter().any(|e| e.message.contains("cumulative")));
    }

    #[test]
    fn rejects_missing_inf_bucket_and_count_mismatch() {
        let r = check("# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\n");
        assert!(r.errors.iter().any(|e| e.message.contains("+Inf")));
        let doc = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 3
h_count 4
";
        let r = check(doc);
        assert!(r.errors.iter().any(|e| e.message.contains("!= _count")));
    }

    #[test]
    fn rejects_duplicates_and_bad_names() {
        let doc = "# TYPE g gauge\ng{op=\"a\"} 1\ng{op=\"a\"} 2\n";
        let r = check(doc);
        assert!(r
            .errors
            .iter()
            .any(|e| e.message.contains("duplicate series")));
        let r = check("# TYPE g gauge\n# TYPE g gauge\ng 1\n");
        assert!(r
            .errors
            .iter()
            .any(|e| e.message.contains("duplicate TYPE")));
        let r = check("# TYPE 0bad gauge\n");
        assert!(!r.passed());
    }

    #[test]
    fn validates_label_escaping() {
        let ok = "# TYPE g gauge\ng{op=\"a\\\\b\\\"c\\nd\"} 1\n";
        assert!(check(ok).passed(), "{:?}", check(ok).errors);
        let bad = "# TYPE g gauge\ng{op=\"a\\qb\"} 1\n";
        assert!(check(bad)
            .errors
            .iter()
            .any(|e| e.message.contains("invalid escape")));
        let unterminated = "# TYPE g gauge\ng{op=\"a} 1\n";
        assert!(!check(unterminated).passed());
    }

    #[test]
    fn requires_finds_family_names_and_label_fragments() {
        assert!(requires(GOOD, "nwhy_op_latency_microseconds"));
        assert!(requires(GOOD, "bfs_rounds"));
        assert!(requires(GOOD, "quantile=\"0.99\""));
        assert!(!requires(GOOD, "nwhy_cc_rounds"));
        assert!(!requires(GOOD, "quantile=\"0.95\""));
        // comments don't satisfy a requirement
        assert!(!requires("# HELP ghost metric\n", "ghost"));
    }
}
