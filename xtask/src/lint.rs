//! The token-aware repo lint engine behind `cargo xtask lint`.
//!
//! v1 (PR 5) was a line-lexical pass; it could not see through string
//! literals, doc comments, or multi-line expressions. v2 runs every
//! rule on real tokens from the hand-rolled [`crate::lexer`], routed
//! through the [`crate::model::FileModel`] item/block tracker (fn
//! boundaries, `#[cfg(test)]` regions scoped to their actual target
//! block, audit-marker lookup). This kills the known false-positive
//! classes — patterns inside string literals, `unsafe` quoted in doc
//! comments — and un-breaks the old pass's worst soundness hole: code
//! *after* a `#[cfg(test)]` module is linted again.
//!
//! # Rules
//!
//! | rule | scope | denies |
//! |---|---|---|
//! | `raw-pub-signature` | repr.rs, adjoin.rs, slinegraph/ (minus stats.rs) | `u32`/`u64` tokens and ID-named `usize` params in `pub fn` signatures |
//! | `unaudited-id-cast` | repr.rs, adjoin.rs, slinegraph/ | `as Id`/`as u32`/`as usize` outside `ids.rs` |
//! | `untyped-id-arithmetic` | all of crates/ except ids.rs | inlined `± n_e` offset arithmetic and `±` on `.raw()`/`.idx()` |
//! | `stray-atomic-import` | all of crates/ except util/src/sync.rs | direct `std::sync::atomic` use (incl. tests) |
//! | `unjustified-allow` | all of crates/ | `#[allow(...)]` without a `// lint:` justification |
//! | `unsafe-confinement` | all of crates/ | `unsafe` outside `crates/store/src/mmap.rs`; inside it, `unsafe` without a `// SAFETY:` argument |
//! | `panic-path` | crates/ src code (not tests/, benches/, examples/) | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` everywhere; unchecked slice indexing in core/hygra/store/io/obs |
//! | `crate-boundary` | all of crates/ | `use`/`extern`/path references that violate the crate DAG |
//! | `obs-coverage` | core/slinegraph/, core/algorithms/, hygra/src/ | `pub fn` with a traversal loop but no span/counter touch |
//!
//! Most rules accept a `// lint: <why>` justification on the same line
//! or the comment block immediately above. `panic-path` requires the
//! namespaced `// lint: panic: <why>` marker (that comment *is* the
//! panic-freedom audit trail) and additionally carries a **burn-down
//! baseline** (`xtask/panic_baseline.txt`): per-file unaudited-site
//! counts that the tree lint enforces as a monotone ratchet — a file
//! may shrink below its baselined count but never grow past it.
//! `obs-coverage` uses `// lint: obs: <why>`. Two rules have **no
//! escape at all**: `unsafe-confinement` outside the mmap island, and
//! `crate-boundary` (a back-edge in the dependency DAG is never an
//! audit, it is an architecture regression).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{is_keyword, Kind};
use crate::model::FileModel;

/// Rule identifier for raw storage types in public signatures.
pub const RAW_PUB_SIGNATURE: &str = "raw-pub-signature";
/// Rule identifier for unaudited `as` casts between ID types.
pub const UNAUDITED_ID_CAST: &str = "unaudited-id-cast";
/// Rule identifier for inlined ID-space offset arithmetic.
pub const UNTYPED_ID_ARITHMETIC: &str = "untyped-id-arithmetic";
/// Rule identifier for atomics imported outside `nwhy_util::sync`.
pub const STRAY_ATOMIC_IMPORT: &str = "stray-atomic-import";
/// Rule identifier for `#[allow]` attributes without a justification.
pub const UNJUSTIFIED_ALLOW: &str = "unjustified-allow";
/// Rule identifier for `unsafe` outside the audited mmap island (or
/// inside it without a `// SAFETY:` argument).
pub const UNSAFE_CONFINEMENT: &str = "unsafe-confinement";
/// Rule identifier for abort paths (panicking calls/macros, unchecked
/// slice indexing) in resident-process code.
pub const PANIC_PATH: &str = "panic-path";
/// Rule identifier for dependency-DAG violations read off `use`/path
/// tokens.
pub const CRATE_BOUNDARY: &str = "crate-boundary";
/// Rule identifier for uninstrumented public traversal kernels.
pub const OBS_COVERAGE: &str = "obs-coverage";
/// Rule identifier for transitive panic-reachability from declared
/// entry points (call-graph audit, `cargo xtask audit`).
pub const PANIC_REACH: &str = "panic-reach";
/// Rule identifier for allocation calls inside loop bodies of functions
/// reachable from the hot kernels (call-graph audit).
pub const ALLOC_HOT_LOOP: &str = "alloc-in-hot-loop";
/// Rule identifier for `Ordering::*` uses outside the declared
/// memory-ordering policy (call-graph audit).
pub const ORDERING_POLICY: &str = "ordering-policy";

/// All twelve rule identifiers, in reporting order (SARIF rule table).
/// The last three belong to the call-graph audit (`cargo xtask audit`);
/// the per-file pass never emits them.
pub const ALL_RULES: [&str; 12] = [
    RAW_PUB_SIGNATURE,
    UNAUDITED_ID_CAST,
    UNTYPED_ID_ARITHMETIC,
    STRAY_ATOMIC_IMPORT,
    UNJUSTIFIED_ALLOW,
    UNSAFE_CONFINEMENT,
    PANIC_PATH,
    CRATE_BOUNDARY,
    OBS_COVERAGE,
    PANIC_REACH,
    ALLOC_HOT_LOOP,
    ORDERING_POLICY,
];

/// One-line description per rule (SARIF `rules` metadata).
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        RAW_PUB_SIGNATURE => "raw u32/u64/usize ID parameters in public signatures",
        UNAUDITED_ID_CAST => "`as` casts between ID types outside the audited ids.rs funnel",
        UNTYPED_ID_ARITHMETIC => "inlined ID-space offset arithmetic",
        STRAY_ATOMIC_IMPORT => "std::sync::atomic imported outside the loom-switched re-export",
        UNJUSTIFIED_ALLOW => "#[allow(...)] without a `// lint:` justification",
        UNSAFE_CONFINEMENT => "unsafe outside the audited mmap island",
        PANIC_PATH => "abort paths (unwrap/expect/panic!/indexing) in resident-process code",
        CRATE_BOUNDARY => "dependency-DAG back-edges read off use/extern/path tokens",
        OBS_COVERAGE => "public traversal kernels without a span or counter touch",
        PANIC_REACH => "transitive panic-reachability from declared entry points grew",
        ALLOC_HOT_LOOP => "allocation inside a loop body reachable from a hot kernel",
        ORDERING_POLICY => "memory ordering outside the declared (module, op, ordering) policy",
        _ => "unknown rule",
    }
}

/// The single file where `unsafe` is permitted: the mmap syscall
/// wrapper behind the zero-copy storage backend (DESIGN.md §8).
const UNSAFE_ISLAND: &str = "crates/store/src/mmap.rs";

/// The baseline file for the `panic-path` burn-down ratchet, relative
/// to the workspace root.
pub const PANIC_BASELINE: &str = "xtask/panic_baseline.txt";

/// The namespaced audit marker for `panic-path` escapes.
pub const PANIC_MARKER: &str = "// lint: panic";
/// The namespaced audit marker for `obs-coverage` escapes.
pub const OBS_MARKER: &str = "// lint: obs";

/// `panic-path` sub-family: a panicking call or macro.
pub const KIND_PANIC: &str = "panic";
/// `panic-path` sub-family: unchecked slice indexing.
pub const KIND_INDEX: &str = "index";

/// One lint violation, pointing at a repo-relative `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of the `pub const` rule names).
    pub rule: &'static str,
    /// Finding sub-family within the rule (`""` for most rules;
    /// `"panic"`/`"index"` for `panic-path`, which the burn-down
    /// baseline tracks separately).
    pub kind: &'static str,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The ID-sensitive modules: the cast and signature rules apply here.
fn in_id_module(file: &str) -> bool {
    file == "crates/core/src/repr.rs"
        || file == "crates/core/src/adjoin.rs"
        || file.starts_with("crates/core/src/slinegraph/")
}

/// Signature rule scope: the ID modules minus the kernel-stats counters
/// (whose payloads are legitimately `u64` event counts, not IDs).
fn in_signature_scope(file: &str) -> bool {
    in_id_module(file) && !file.ends_with("/stats.rs")
}

/// The crates whose non-test code must be panic-free *and* free of
/// unchecked slice indexing: everything a resident `nwhy-serve`
/// process would execute on the query path.
fn in_index_scope(file: &str) -> bool {
    ["core", "hygra", "store", "io", "obs"]
        .iter()
        .any(|c| file.starts_with(&format!("crates/{c}/src/")))
}

/// Files the `panic-path` rule skips entirely: test suites, benches and
/// examples are not resident-process code.
fn panic_exempt(file: &str) -> bool {
    file.contains("/tests/") || file.contains("/benches/") || file.contains("/examples/")
}

/// The instrumentation-contract scope: s-line kernels, core
/// algorithms, the hygra traversal engine (PR 4), and the store/io
/// loop-bearing surfaces (PR 9 — parse/pack/decode loops feed the same
/// serving dashboards as the kernels they precede).
fn in_obs_scope(file: &str) -> bool {
    file.starts_with("crates/core/src/slinegraph/")
        || file.starts_with("crates/core/src/algorithms/")
        || file.starts_with("crates/hygra/src/")
        || file.starts_with("crates/store/src/")
        || file.starts_with("crates/io/src/")
}

/// Parameter names that denote an ID when typed `usize`.
fn id_like_name(name: &str) -> bool {
    matches!(name, "e" | "v" | "id" | "node" | "edge" | "vertex" | "raw") || name.ends_with("_id")
}

// ---------------------------------------------------------------------
// crate-boundary: the dependency DAG, read off the workspace manifests
// (util → obs → core → {hygra, store, io} → nwhy; bench/gen leaves).
// ---------------------------------------------------------------------

/// Workspace crates: directory under `crates/` and the identifier the
/// crate is referenced by in source.
const CRATES: [(&str, &str); 10] = [
    ("util", "nwhy_util"),
    ("nwgraph", "nwgraph"),
    ("obs", "nwhy_obs"),
    ("core", "nwhy_core"),
    ("hygra", "hygra"),
    ("store", "nwhy_store"),
    ("io", "nwhy_io"),
    ("gen", "nwhy_gen"),
    ("nwhy", "nwhy"),
    ("bench", "nwhy_bench"),
];

/// Allowed `[dependencies]` edges per crate directory (self-references
/// are always allowed — integration tests and bin targets name their
/// own crate).
fn allowed_deps(crate_dir: &str) -> &'static [&'static str] {
    match crate_dir {
        "util" => &[],
        "nwgraph" | "obs" => &["nwhy_util"],
        "core" => &["nwhy_util", "nwgraph", "nwhy_obs"],
        "hygra" => &["nwhy_util", "nwgraph", "nwhy_core", "nwhy_obs"],
        "store" => &["nwhy_util", "nwgraph", "nwhy_core"],
        "io" => &["nwhy_core", "nwhy_obs", "nwhy_store"],
        "gen" => &["nwhy_core"],
        "nwhy" | "bench" => &[
            "nwhy_util",
            "nwgraph",
            "nwhy_obs",
            "nwhy_core",
            "hygra",
            "nwhy_store",
            "nwhy_io",
            "nwhy_gen",
        ],
        _ => &[],
    }
}

/// Extra edges granted to *test* code only (`[dev-dependencies]` in the
/// manifests).
fn allowed_dev_deps(crate_dir: &str) -> &'static [&'static str] {
    match crate_dir {
        "io" => &["nwhy_util"],
        "store" => &["nwhy_gen"],
        _ => &[],
    }
}

/// The `crates/<dir>/…` directory component of a repo-relative path.
fn crate_dir_of(file: &str) -> Option<&str> {
    file.strip_prefix("crates/")?.split('/').next()
}

// ---------------------------------------------------------------------
// The per-file engine
// ---------------------------------------------------------------------

/// Lints a single file's content under its repo-relative path. The path
/// decides which rules apply; it does not need to exist on disk (the
/// fixture tests feed fake in-scope paths). Returns **raw** findings:
/// the `panic-path` burn-down baseline is applied by [`lint_tree`].
pub fn lint_file(path: &Path, content: &str) -> Vec<Finding> {
    let file = path.to_string_lossy().replace('\\', "/");
    if !file.starts_with("crates/") {
        return Vec::new();
    }
    let m = FileModel::new(content);
    let test_file = file.contains("/tests/");
    let mut out = Vec::new();

    let finding = |rule: &'static str, kind: &'static str, line: usize, message: String| Finding {
        rule,
        kind,
        file: file.clone(),
        line,
        message,
    };

    // `true` when the statement containing token `i` starts with `use`
    // (walk back to the previous `;`, `{` or `}`): lets the cast rule
    // ignore `use x as y` renames.
    let in_use_stmt = |i: usize| -> bool {
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &m.code[j];
            if t.kind == Kind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
                return m.ident_is(j + 1, "use")
                    || m.ident_is(j + 1, "pub") && m.ident_is(j + 2, "use");
            }
        }
        m.ident_is(0, "use") || m.ident_is(0, "pub") && m.ident_is(1, "use")
    };

    // Rule A: raw storage types in public signatures.
    if in_signature_scope(&file) && !test_file {
        for f in &m.fns {
            if !f.is_pub || m.in_test(f.sig.0) || m.justified(f.line) {
                continue;
            }
            for bad in ["u32", "u64"] {
                if (f.sig.0..f.sig.1).any(|i| m.ident_is(i, bad)) {
                    out.push(finding(
                        RAW_PUB_SIGNATURE,
                        "",
                        f.line,
                        format!(
                            "raw `{bad}` in public signature — use a typed ID domain \
                             (HyperedgeId/HypernodeId/AdjoinId/LocalId), the `Id` \
                             storage alias, or `Overlap`"
                        ),
                    ));
                }
            }
            for i in f.sig.0..f.sig.1 {
                if m.code[i].kind == Kind::Ident
                    && !is_keyword(&m.code[i].text)
                    && m.tok_is(i + 1, ":")
                    && !m.tok_is(i + 2, ":")
                    && m.ident_is(i + 2, "usize")
                    && id_like_name(&m.code[i].text)
                {
                    out.push(finding(
                        RAW_PUB_SIGNATURE,
                        "",
                        f.line,
                        format!(
                            "`{}: usize` in public signature — ID-like parameters \
                             must use a typed ID domain",
                            m.code[i].text
                        ),
                    ));
                }
            }
        }
    }

    // Rule B: unaudited `as` casts in the ID modules.
    if in_id_module(&file) && !test_file {
        for i in 0..m.code.len() {
            if !m.ident_is(i, "as") || m.in_test(i) {
                continue;
            }
            let Some(next) = m.code.get(i + 1) else {
                continue;
            };
            if next.kind != Kind::Ident || !matches!(next.text.as_str(), "Id" | "u32" | "usize") {
                continue;
            }
            let line = m.code[i].line;
            if m.justified(line) || in_use_stmt(i) {
                continue;
            }
            out.push(finding(
                UNAUDITED_ID_CAST,
                "",
                line,
                format!(
                    "`as {}` outside the audited ids.rs funnel — use \
                     ids::from_usize/ids::to_usize, `.raw()`/`.idx()`, or \
                     justify with `// lint: <why>`",
                    next.text
                ),
            ));
        }
    }

    // Rule C: inlined ID-space offset arithmetic anywhere in crates/.
    if file != "crates/core/src/ids.rs" && !test_file {
        for i in 0..m.code.len() {
            if m.in_test(i) {
                continue;
            }
            let plus_minus = m.tok_is(i, "+") || m.tok_is(i, "-");
            let pat: Option<(&'static str, usize)> =
                if plus_minus && m.ident_is(i + 1, "ne") && m.ident_is(i + 2, "as") {
                    Some(("± ne as", i))
                } else if plus_minus
                    && m.ident_is(i + 1, "self")
                    && m.tok_is(i + 2, ".")
                    && m.ident_is(i + 3, "num_hyperedges")
                    && m.ident_is(i + 4, "as")
                {
                    Some(("± self.num_hyperedges as", i))
                } else if m.tok_is(i, ".")
                    && (m.ident_is(i + 1, "raw") || m.ident_is(i + 1, "idx"))
                    && m.tok_is(i + 2, "(")
                    && m.tok_is(i + 3, ")")
                    && (m.tok_is(i + 4, "+") || m.tok_is(i + 4, "-"))
                {
                    Some((
                        if m.ident_is(i + 1, "raw") {
                            ".raw() ±"
                        } else {
                            ".idx() ±"
                        },
                        i,
                    ))
                } else {
                    None
                };
            if let Some((pat, at)) = pat {
                let line = m.code[at].line;
                if !m.justified(line) {
                    out.push(finding(
                        UNTYPED_ID_ARITHMETIC,
                        "",
                        line,
                        format!(
                            "`{pat}` — ID-space offsets must go through the typed \
                             conversions in nwhy-core::ids (AdjoinId::from_node, \
                             adjoin_to_node, Relabeling)"
                        ),
                    ));
                }
            }
        }
    }

    // Rule D: atomics outside the loom-switched re-export (tests too).
    if file != "crates/util/src/sync.rs" {
        for i in 0..m.code.len() {
            if m.ident_is(i, "std")
                && m.path_sep(i + 1)
                && m.ident_is(i + 3, "sync")
                && m.path_sep(i + 4)
                && m.ident_is(i + 6, "atomic")
            {
                let line = m.code[i].line;
                if !m.justified(line) {
                    out.push(finding(
                        STRAY_ATOMIC_IMPORT,
                        "",
                        line,
                        "import atomics via nwhy_util::sync (the loom-switched \
                         re-export); std::sync::atomic is sanctioned only in \
                         crates/util/src/sync.rs"
                            .to_string(),
                    ));
                }
            }
        }
    }

    // Rule E: every `#[allow]` carries its why (tests too).
    for i in 0..m.code.len() {
        if !m.tok_is(i, "#") {
            continue;
        }
        let mut j = i + 1;
        if m.tok_is(j, "!") {
            j += 1;
        }
        if m.tok_is(j, "[") && m.ident_is(j + 1, "allow") {
            let line = m.code[i].line;
            if !m.justified(line) {
                out.push(finding(
                    UNJUSTIFIED_ALLOW,
                    "",
                    line,
                    "`#[allow(...)]` without a `// lint: <why>` justification on the \
                     same or preceding comment line"
                        .to_string(),
                ));
            }
        }
    }

    // Rule F: unsafe confinement (tests too). Outside the mmap island
    // there is deliberately no `// lint:` escape — `unsafe` anywhere
    // else in crates/ is a finding, full stop. Inside the island every
    // `unsafe` token must carry a `// SAFETY:` argument on the same
    // line or the comment block immediately above. Token matching keeps
    // `forbid(unsafe_code)` attribute idents and doc-comment mentions
    // out of scope by construction.
    for i in 0..m.code.len() {
        if !m.ident_is(i, "unsafe") {
            continue;
        }
        let line = m.code[i].line;
        if file == UNSAFE_ISLAND {
            if !m.marked(line, "// SAFETY:") {
                out.push(finding(
                    UNSAFE_CONFINEMENT,
                    "",
                    line,
                    "`unsafe` in the mmap island without a `// SAFETY:` argument \
                     on the same line or the comment block immediately above"
                        .to_string(),
                ));
            }
        } else {
            out.push(finding(
                UNSAFE_CONFINEMENT,
                "",
                line,
                format!(
                    "`unsafe` outside {UNSAFE_ISLAND} — the mmap syscall wrapper \
                     is the only audited unsafe island in the workspace \
                     (DESIGN.md §8); this rule has no `// lint:` escape"
                ),
            ));
        }
    }

    // Rule G: panic-path. Abort paths in resident-process code: the
    // panicking call/macro family everywhere under crates/ (minus test
    // suites, benches, examples), plus unchecked slice indexing in the
    // five query-path crates. Escape: `// lint: panic: <why>`. The
    // tree-level baseline (xtask/panic_baseline.txt) turns the raw
    // findings into a monotone burn-down ratchet.
    if !panic_exempt(&file) {
        for i in 0..m.code.len() {
            if m.in_test(i) {
                continue;
            }
            let line = m.code[i].line;
            // .unwrap( / .expect(
            if m.tok_is(i, ".")
                && (m.ident_is(i + 1, "unwrap") || m.ident_is(i + 1, "expect"))
                && m.tok_is(i + 2, "(")
            {
                if !m.marked(line, PANIC_MARKER) {
                    out.push(finding(
                        PANIC_PATH,
                        KIND_PANIC,
                        line,
                        format!(
                            "`.{}()` aborts the process on Err/None — resident \
                             services (nwhy-serve) must get a typed error instead; \
                             burn down or audit with `{PANIC_MARKER}: <why>`",
                            m.text(i + 1)
                        ),
                    ));
                }
                continue;
            }
            // panic! / unreachable! / todo! / unimplemented!
            if m.code[i].kind == Kind::Ident
                && matches!(
                    m.code[i].text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && m.tok_is(i + 1, "!")
                && !m.marked(line, PANIC_MARKER)
            {
                out.push(finding(
                    PANIC_PATH,
                    KIND_PANIC,
                    line,
                    format!(
                        "`{}!` aborts the process — resident services (nwhy-serve) \
                         must get a typed error instead; burn down or audit with \
                         `{PANIC_MARKER}: <why>`",
                        m.code[i].text
                    ),
                ));
                continue;
            }
            // unchecked slice indexing in the query-path crates: a `[`
            // whose previous token closes an expression (identifier,
            // `)` or `]`) opens an index/slice expression — `a[i]`,
            // `f(x)[i]`, `m[i][j]` — every one an abort path on
            // out-of-bounds. Array literals/types/attributes/macros
            // never have such a previous token.
            if in_index_scope(&file) && m.tok_is(i, "[") && i > 0 {
                let prev = &m.code[i - 1];
                let indexes = match prev.kind {
                    Kind::Ident => !is_keyword(&prev.text),
                    Kind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if indexes && !m.marked(line, PANIC_MARKER) {
                    out.push(finding(
                        PANIC_PATH,
                        KIND_INDEX,
                        line,
                        format!(
                            "unchecked slice indexing aborts on out-of-bounds — \
                             prefer `.get()`, iterators, or split/chunk patterns; \
                             audit with `{PANIC_MARKER}: <why>`"
                        ),
                    ));
                }
            }
        }
    }

    // Rule H: crate-boundary. Every reference to a workspace crate —
    // `use nwhy_core::…`, `extern crate hygra`, or a bare qualified
    // path — must be an edge of the dependency DAG. Test code
    // additionally gets the dev-dependency edges. No escape: a
    // back-edge is an architecture regression, not an auditable site.
    if let Some(dir) = crate_dir_of(&file) {
        let self_ident = CRATES
            .iter()
            .find(|(d, _)| *d == dir)
            .map(|(_, id)| *id)
            .unwrap_or("");
        for i in 0..m.code.len() {
            let t = &m.code[i];
            if t.kind != Kind::Ident {
                continue;
            }
            let Some(&(_, dep)) = CRATES.iter().find(|(_, id)| *id == t.text) else {
                continue;
            };
            if dep == self_ident {
                continue;
            }
            // only path *roots* count: skip `x::dep` tails and `.dep`
            // field/method positions
            if i > 0 {
                let p = &m.code[i - 1];
                if p.kind == Kind::Punct && (p.text == ":" || p.text == ".") {
                    continue;
                }
            }
            let is_root_ref = m.path_sep(i + 1)
                || (i > 0 && m.ident_is(i - 1, "use"))
                || (i > 0 && m.ident_is(i - 1, "crate") && i > 1 && m.ident_is(i - 2, "extern"));
            if !is_root_ref {
                continue;
            }
            let test_scope = test_file || m.in_test(i);
            let ok = allowed_deps(dir).contains(&dep)
                || (test_scope && allowed_dev_deps(dir).contains(&dep));
            if !ok {
                out.push(finding(
                    CRATE_BOUNDARY,
                    "",
                    t.line,
                    format!(
                        "crate `{dir}` must not depend on `{dep}` — the dependency \
                         DAG is util → obs → core → {{hygra, store, io}} → nwhy \
                         (bench/gen leaves); this rule has no `// lint:` escape"
                    ),
                ));
            }
        }
    }

    // Rule I: obs-coverage. The PR 4 instrumentation contract: every
    // public traversal kernel (a `pub fn` containing a loop) in the
    // s-line engine, the core algorithms, and hygra must open a span
    // or touch a counter/histogram. Accessors and builders (loop-free)
    // are exempt by construction. Escape: `// lint: obs: <why>`.
    if in_obs_scope(&file) && !test_file {
        for f in &m.fns {
            let Some((b0, b1)) = f.body else { continue };
            if !f.is_pub || m.in_test(f.sig.0) || m.marked(f.line, OBS_MARKER) {
                continue;
            }
            let loopy = (b0..b1).any(|i| {
                m.code[i].kind == Kind::Ident
                    && matches!(m.code[i].text.as_str(), "for" | "while" | "loop")
            });
            if !loopy {
                continue;
            }
            let touched = (b0..b1).any(|i| {
                let t = &m.code[i];
                t.kind == Kind::Ident
                    && (matches!(
                        t.text.as_str(),
                        "nwhy_obs" | "Counter" | "Hist" | "KernelStats"
                    ) || (matches!(t.text.as_str(), "span" | "incr" | "observe")
                        && m.tok_is(i + 1, "(")))
            });
            if !touched {
                out.push(finding(
                    OBS_COVERAGE,
                    "",
                    f.line,
                    "`pub fn` with a traversal loop but no span/counter touch — \
                     the instrumentation contract (DESIGN.md §6) requires \
                     nwhy_obs::span/incr/add/observe on every public kernel; \
                     delegate to an instrumented kernel or audit with \
                     `// lint: obs: <why>`"
                        .to_string(),
                ));
            }
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

// ---------------------------------------------------------------------
// Tree lint + the panic-path burn-down baseline
// ---------------------------------------------------------------------

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Parsed `xtask/panic_baseline.txt`: allowed unaudited-site counts per
/// (kind, file).
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parses the baseline format: `<kind> <count> <file>` per line, `#`
/// comments and blank lines ignored. Unparsable lines are ignored (the
/// ratchet then treats those files as baseline-0, which fails closed).
pub fn parse_baseline(text: &str) -> Baseline {
    let mut out = Baseline::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(kind), Some(count), Some(file)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            continue;
        };
        if matches!(kind, "panic" | "index") {
            out.insert((kind.to_string(), file.to_string()), count);
        }
    }
    out
}

/// Serializes a baseline in the canonical sorted format.
pub fn format_baseline(b: &Baseline) -> String {
    let mut out = String::from(
        "# panic-path burn-down baseline — per-file counts of unaudited abort\n\
         # sites (`panic` = unwrap/expect/panic-family macros, `index` =\n\
         # unchecked slice indexing). `cargo xtask lint` fails when any file\n\
         # GROWS past its entry; shrink by burning sites down, then refresh\n\
         # with `cargo xtask lint --update-baseline`. Never edit upward.\n\
         # format: <kind> <allowed-count> <file>\n",
    );
    for ((kind, file), count) in b {
        out.push_str(&format!("{kind} {count} {file}\n"));
    }
    out
}

/// What the tree lint did with the `panic-path` baseline.
#[derive(Debug, Default)]
pub struct BaselineStats {
    /// Current unaudited panic-family sites across the tree.
    pub panic_total: usize,
    /// Current unaudited indexing sites across the tree.
    pub index_total: usize,
    /// Sites suppressed because their file is at or under its baseline.
    pub suppressed: usize,
    /// Files whose current count is *below* their baseline entry — the
    /// ratchet can (and should) be tightened with `--update-baseline`.
    pub shrinkable: Vec<String>,
}

/// The result of linting a tree: post-baseline findings plus the
/// burn-down accounting.
#[derive(Debug)]
pub struct TreeReport {
    /// Findings that fail the lint (baseline already applied).
    pub findings: Vec<Finding>,
    /// `panic-path` burn-down accounting.
    pub baseline: BaselineStats,
}

/// Applies the burn-down baseline to raw findings: per (kind, file), if
/// the current count is at or under the baselined count the findings
/// are suppressed (they are the *known* debt); one site over and the
/// whole file's sites for that kind surface, so the offender sees every
/// candidate to burn down.
pub fn apply_baseline(raw: Vec<Finding>, baseline: &Baseline) -> TreeReport {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in raw.iter().filter(|f| f.rule == PANIC_PATH) {
        *counts
            .entry((f.kind.to_string(), f.file.clone()))
            .or_default() += 1;
    }
    let mut stats = BaselineStats::default();
    for ((kind, file), &count) in &counts {
        match kind.as_str() {
            KIND_PANIC => stats.panic_total += count,
            _ => stats.index_total += count,
        }
        let allowed = baseline.get(&(kind.clone(), file.clone())).copied();
        if count < allowed.unwrap_or(0) {
            stats
                .shrinkable
                .push(format!("{kind} {file}: {count} < {}", allowed.unwrap_or(0)));
        }
    }
    // baselined files that now lint clean can drop their entries
    for ((kind, file), &allowed) in baseline {
        if allowed > 0 && !counts.contains_key(&(kind.clone(), file.clone())) {
            stats
                .shrinkable
                .push(format!("{kind} {file}: 0 < {allowed}"));
        }
    }
    let findings = raw
        .into_iter()
        .filter(|f| {
            if f.rule != PANIC_PATH {
                return true;
            }
            let key = (f.kind.to_string(), f.file.clone());
            let count = counts.get(&key).copied().unwrap_or(0);
            let allowed = baseline.get(&key).copied().unwrap_or(0);
            if count <= allowed {
                stats.suppressed += 1;
                false
            } else {
                true
            }
        })
        .collect();
    TreeReport {
        findings,
        baseline: stats,
    }
}

/// Lints every `.rs` file under `<root>/crates`, returning raw findings
/// (no baseline) sorted by file then line.
pub fn lint_tree_raw(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        let Ok(content) = fs::read_to_string(f) else {
            continue;
        };
        let rel = f.strip_prefix(root).unwrap_or(f);
        out.extend(lint_file(rel, &content));
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Lints the tree and applies the `panic-path` baseline from
/// `<root>/xtask/panic_baseline.txt` (missing file = empty baseline,
/// which fails closed on any panic-path site).
pub fn lint_tree_report(root: &Path) -> TreeReport {
    let raw = lint_tree_raw(root);
    let baseline = fs::read_to_string(root.join(PANIC_BASELINE))
        .map(|t| parse_baseline(&t))
        .unwrap_or_default();
    apply_baseline(raw, &baseline)
}

/// Compatibility wrapper: post-baseline findings only.
pub fn lint_tree(root: &Path) -> Vec<Finding> {
    lint_tree_report(root).findings
}

/// Recomputes the baseline from the tree's current raw `panic-path`
/// counts and returns the canonical file content (the caller writes it).
pub fn regenerate_baseline(root: &Path) -> String {
    let mut counts = Baseline::new();
    for f in lint_tree_raw(root) {
        if f.rule == PANIC_PATH {
            *counts
                .entry((f.kind.to_string(), f.file.clone()))
                .or_default() += 1;
        }
    }
    format_baseline(&counts)
}

// ---------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------

/// Escapes a string for embedding in JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings as a JSON array (hand-rolled: the workspace adds
/// no external dependencies for tooling).
pub fn to_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            let kind = if f.kind.is_empty() {
                String::new()
            } else {
                format!("\"kind\": \"{}\", ", json_escape(f.kind))
            };
            format!(
                "  {{\"rule\": \"{}\", {}\"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(f.rule),
                kind,
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            )
        })
        .collect();
    if items.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n]", items.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_escaped() {
        let f = Finding {
            rule: UNAUDITED_ID_CAST,
            kind: "",
            file: "a\"b.rs".into(),
            line: 3,
            message: "x\ny".into(),
        };
        let j = to_json(&[f]);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
        assert!(!j.contains("\"kind\""));
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn json_carries_panic_kind() {
        let f = Finding {
            rule: PANIC_PATH,
            kind: KIND_INDEX,
            file: "crates/core/src/x.rs".into(),
            line: 9,
            message: "m".into(),
        };
        assert!(to_json(&[f]).contains("\"kind\": \"index\""));
    }

    #[test]
    fn baseline_roundtrip() {
        let mut b = Baseline::new();
        b.insert(("panic".into(), "crates/io/src/binary.rs".into()), 3);
        b.insert(("index".into(), "crates/core/src/repr.rs".into()), 12);
        let text = format_baseline(&b);
        assert_eq!(parse_baseline(&text), b);
    }

    #[test]
    fn baseline_parse_skips_junk() {
        let b =
            parse_baseline("# comment\n\npanic 2 a.rs\nbogus\nindex notanum b.rs\nweird 1 c.rs\n");
        assert_eq!(b.len(), 1);
        assert_eq!(b[&("panic".to_string(), "a.rs".to_string())], 2);
    }

    #[test]
    fn baseline_suppresses_at_or_under_and_fires_over() {
        let mk = |n: usize| -> Vec<Finding> {
            (0..n)
                .map(|i| Finding {
                    rule: PANIC_PATH,
                    kind: KIND_PANIC,
                    file: "crates/io/src/x.rs".into(),
                    line: i + 1,
                    message: "m".into(),
                })
                .collect()
        };
        let mut b = Baseline::new();
        b.insert(("panic".into(), "crates/io/src/x.rs".into()), 2);
        // at the baseline: suppressed
        let r = apply_baseline(mk(2), &b);
        assert!(r.findings.is_empty());
        assert_eq!(r.baseline.suppressed, 2);
        assert_eq!(r.baseline.panic_total, 2);
        // one over: every site surfaces
        let r = apply_baseline(mk(3), &b);
        assert_eq!(r.findings.len(), 3);
        // under: suppressed, and flagged as shrinkable
        let r = apply_baseline(mk(1), &b);
        assert!(r.findings.is_empty());
        assert_eq!(r.baseline.shrinkable.len(), 1);
    }

    #[test]
    fn non_panic_rules_pass_through_baseline() {
        let f = Finding {
            rule: UNSAFE_CONFINEMENT,
            kind: "",
            file: "crates/core/src/x.rs".into(),
            line: 1,
            message: "m".into(),
        };
        let r = apply_baseline(vec![f], &Baseline::new());
        assert_eq!(r.findings.len(), 1);
    }
}
