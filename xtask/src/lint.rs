//! The repo lint engine behind `cargo xtask lint`.
//!
//! A dependency-free, lexical pass over every `.rs` file under `crates/`
//! that enforces the typed-ID-domain discipline introduced in
//! `nwhy-core::ids` (see DESIGN.md §7). It is deliberately *not* a full
//! parser: each rule is a line-level pattern with a small amount of
//! context (multi-line signatures, preceding-comment whitelists), which
//! keeps the pass instant, auditable, and free of external crates.
//!
//! # Rules
//!
//! | rule | scope | denies |
//! |---|---|---|
//! | `raw-pub-signature` | repr.rs, adjoin.rs, slinegraph/ (minus stats.rs) | `u32`/`u64` tokens and ID-named `usize` params in `pub fn` signatures |
//! | `unaudited-id-cast` | repr.rs, adjoin.rs, slinegraph/ | ` as Id`, ` as u32`, ` as usize` outside `ids.rs` |
//! | `untyped-id-arithmetic` | all of crates/ except ids.rs | inlined `± n_e` offset arithmetic and `±` on `.raw()`/`.idx()` |
//! | `stray-atomic-import` | all of crates/ except util/src/sync.rs | direct `std::sync::atomic` use (incl. tests) |
//! | `unjustified-allow` | all of crates/ | `#[allow(...)]` without a `// lint:` justification |
//! | `unsafe-confinement` | all of crates/ | `unsafe` outside `crates/store/src/mmap.rs`; inside it, `unsafe` without a `// SAFETY:` argument |
//!
//! Any line (or its immediately preceding comment block) containing
//! `// lint: <why>` is whitelisted — that comment *is* the audit trail.
//! Rules `raw-pub-signature`, `unaudited-id-cast`, and
//! `untyped-id-arithmetic` skip test code (everything from the first
//! `#[cfg(test)]` line to the end of the file); the atomic, allow, and
//! unsafe rules apply to tests too. `unsafe-confinement` is the one rule
//! with **no `// lint:` escape** outside the island: the confinement is
//! absolute, so new unsafe code can only ever appear in the audited mmap
//! module (inside it, the required marker is `// SAFETY:`, which doubles
//! as the per-block proof obligation).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Rule identifier for raw storage types in public signatures.
pub const RAW_PUB_SIGNATURE: &str = "raw-pub-signature";
/// Rule identifier for unaudited `as` casts between ID types.
pub const UNAUDITED_ID_CAST: &str = "unaudited-id-cast";
/// Rule identifier for inlined ID-space offset arithmetic.
pub const UNTYPED_ID_ARITHMETIC: &str = "untyped-id-arithmetic";
/// Rule identifier for atomics imported outside `nwhy_util::sync`.
pub const STRAY_ATOMIC_IMPORT: &str = "stray-atomic-import";
/// Rule identifier for `#[allow]` attributes without a justification.
pub const UNJUSTIFIED_ALLOW: &str = "unjustified-allow";
/// Rule identifier for `unsafe` outside the audited mmap island (or
/// inside it without a `// SAFETY:` argument).
pub const UNSAFE_CONFINEMENT: &str = "unsafe-confinement";

/// The single file where `unsafe` is permitted: the mmap syscall
/// wrapper behind the zero-copy storage backend (DESIGN.md §8).
const UNSAFE_ISLAND: &str = "crates/store/src/mmap.rs";

/// One lint violation, pointing at a repo-relative `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of the `pub const` rule names).
    pub rule: &'static str,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The ID-sensitive modules: the cast and signature rules apply here.
fn in_id_module(file: &str) -> bool {
    file == "crates/core/src/repr.rs"
        || file == "crates/core/src/adjoin.rs"
        || file.starts_with("crates/core/src/slinegraph/")
}

/// Signature rule scope: the ID modules minus the kernel-stats counters
/// (whose payloads are legitimately `u64` event counts, not IDs).
fn in_signature_scope(file: &str) -> bool {
    in_id_module(file) && !file.ends_with("/stats.rs")
}

/// `true` when the line itself, or the comment block immediately above
/// it, contains `marker`.
fn marked(lines: &[&str], i: usize, marker: &str) -> bool {
    if lines[i].contains(marker) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim_start();
        if !t.starts_with("//") {
            return false;
        }
        if t.contains(marker) {
            return true;
        }
    }
    false
}

/// `true` when the line itself, or the comment block immediately above
/// it, carries a `// lint: <why>` justification.
fn justified(lines: &[&str], i: usize) -> bool {
    marked(lines, i, "// lint:")
}

/// `true` when the line itself, or the comment block immediately above
/// it, carries a `// SAFETY:` argument (the mmap island's per-block
/// proof obligation).
fn safety_documented(lines: &[&str], i: usize) -> bool {
    marked(lines, i, "// SAFETY:")
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Word-boundary substring search (so `u32` does not match `AtomicU32`).
fn has_word(s: &str, word: &str) -> bool {
    let bytes = s.as_bytes();
    let mut start = 0;
    while let Some(pos) = s[start..].find(word) {
        let at = start + pos;
        let end = at + word.len();
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

/// Parameter names that denote an ID when typed `usize`.
fn id_like_name(name: &str) -> bool {
    matches!(name, "e" | "v" | "id" | "node" | "edge" | "vertex" | "raw") || name.ends_with("_id")
}

/// Extracts the names of `usize`-typed parameters from a signature
/// string that look like they carry IDs.
fn suspicious_usize_params(sig: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = sig.as_bytes();
    let mut start = 0;
    while let Some(pos) = sig[start..].find(": usize") {
        let at = start + pos;
        // back-scan the identifier before the colon
        let mut b = at;
        while b > 0 && is_ident_byte(bytes[b - 1]) {
            b -= 1;
        }
        let name = &sig[b..at];
        if id_like_name(name) {
            out.push(name.to_string());
        }
        start = at + ": usize".len();
    }
    out
}

/// Lints a single file's content under its repo-relative path. The path
/// decides which rules apply; it does not need to exist on disk (the
/// fixture tests feed fake in-scope paths).
pub fn lint_file(path: &Path, content: &str) -> Vec<Finding> {
    let file = path.to_string_lossy().replace('\\', "/");
    let lines: Vec<&str> = content.lines().collect();
    let test_start = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len());
    let mut out = Vec::new();

    let finding = |rule: &'static str, line: usize, message: String| Finding {
        rule,
        file: file.clone(),
        line: line + 1,
        message,
    };

    // Rule A: raw storage types in public signatures.
    if in_signature_scope(&file) {
        let mut i = 0;
        while i < test_start {
            let t = lines[i].trim_start();
            let is_pub_fn = t.starts_with("pub fn ")
                || t.starts_with("pub const fn ")
                || t.starts_with("pub(crate) fn ");
            if !is_pub_fn {
                i += 1;
                continue;
            }
            // accumulate the signature until the body opens (or `;`)
            let mut sig = String::new();
            let mut j = i;
            while j < test_start && j < i + 12 {
                sig.push_str(lines[j]);
                sig.push(' ');
                if lines[j].contains('{') || lines[j].trim_end().ends_with(';') {
                    break;
                }
                j += 1;
            }
            let sig = sig.split('{').next().unwrap_or("").to_string();
            if !justified(&lines, i) {
                for bad in ["u32", "u64"] {
                    if has_word(&sig, bad) {
                        out.push(finding(
                            RAW_PUB_SIGNATURE,
                            i,
                            format!(
                                "raw `{bad}` in public signature — use a typed ID domain \
                                 (HyperedgeId/HypernodeId/AdjoinId/LocalId), the `Id` \
                                 storage alias, or `Overlap`"
                            ),
                        ));
                    }
                }
                for name in suspicious_usize_params(&sig) {
                    out.push(finding(
                        RAW_PUB_SIGNATURE,
                        i,
                        format!(
                            "`{name}: usize` in public signature — ID-like parameters \
                             must use a typed ID domain"
                        ),
                    ));
                }
            }
            i = j + 1;
        }
    }

    // Rule B: unaudited `as` casts in the ID modules.
    if in_id_module(&file) {
        for (i, l) in lines.iter().enumerate().take(test_start) {
            if l.trim_start().starts_with("//") {
                continue;
            }
            for pat in [" as Id", " as u32", " as usize"] {
                if l.contains(pat) && !justified(&lines, i) {
                    out.push(finding(
                        UNAUDITED_ID_CAST,
                        i,
                        format!(
                            "`{}` outside the audited ids.rs funnel — use \
                             ids::from_usize/ids::to_usize, `.raw()`/`.idx()`, or \
                             justify with `// lint: <why>`",
                            pat.trim_start()
                        ),
                    ));
                }
            }
        }
    }

    // Rule C: inlined ID-space offset arithmetic anywhere in crates/.
    const ARITH_PATTERNS: [&str; 8] = [
        "+ ne as",
        "- ne as",
        "+ self.num_hyperedges as",
        "- self.num_hyperedges as",
        ".raw() +",
        ".raw() -",
        ".idx() +",
        ".idx() -",
    ];
    if file.starts_with("crates/") && file != "crates/core/src/ids.rs" {
        for (i, l) in lines.iter().enumerate().take(test_start) {
            if l.trim_start().starts_with("//") {
                continue;
            }
            for pat in ARITH_PATTERNS {
                if l.contains(pat) && !justified(&lines, i) {
                    out.push(finding(
                        UNTYPED_ID_ARITHMETIC,
                        i,
                        format!(
                            "`{pat}` — ID-space offsets must go through the typed \
                             conversions in nwhy-core::ids (AdjoinId::from_node, \
                             adjoin_to_node, Relabeling)"
                        ),
                    ));
                }
            }
        }
    }

    // Rule D: atomics outside the loom-switched re-export (tests too).
    if file.starts_with("crates/") && file != "crates/util/src/sync.rs" {
        for (i, l) in lines.iter().enumerate() {
            if l.trim_start().starts_with("//") {
                continue;
            }
            if l.contains("std::sync::atomic") && !justified(&lines, i) {
                out.push(finding(
                    STRAY_ATOMIC_IMPORT,
                    i,
                    "import atomics via nwhy_util::sync (the loom-switched \
                     re-export); std::sync::atomic is sanctioned only in \
                     crates/util/src/sync.rs"
                        .to_string(),
                ));
            }
        }
    }

    // Rule F: unsafe confinement (tests too). Outside the mmap island
    // there is deliberately no `// lint:` escape — `unsafe` anywhere
    // else in crates/ is a finding, full stop. Inside the island every
    // `unsafe` token must carry a `// SAFETY:` argument on the same
    // line or the comment block immediately above. Word-boundary
    // matching keeps `forbid(unsafe_code)` / `unsafe_op_in_unsafe_fn`
    // attribute lines out of scope.
    if file.starts_with("crates/") {
        for (i, l) in lines.iter().enumerate() {
            if l.trim_start().starts_with("//") || !has_word(l, "unsafe") {
                continue;
            }
            if file == UNSAFE_ISLAND {
                if !safety_documented(&lines, i) {
                    out.push(finding(
                        UNSAFE_CONFINEMENT,
                        i,
                        "`unsafe` in the mmap island without a `// SAFETY:` argument \
                         on the same line or the comment block immediately above"
                            .to_string(),
                    ));
                }
            } else {
                out.push(finding(
                    UNSAFE_CONFINEMENT,
                    i,
                    format!(
                        "`unsafe` outside {UNSAFE_ISLAND} — the mmap syscall wrapper \
                         is the only audited unsafe island in the workspace \
                         (DESIGN.md §8); this rule has no `// lint:` escape"
                    ),
                ));
            }
        }
    }

    // Rule E: every `#[allow]` carries its why (tests too).
    if file.starts_with("crates/") {
        for (i, l) in lines.iter().enumerate() {
            let t = l.trim_start();
            if t.starts_with("//") {
                continue;
            }
            if (l.contains("#[allow(") || l.contains("#![allow(")) && !justified(&lines, i) {
                out.push(finding(
                    UNJUSTIFIED_ALLOW,
                    i,
                    "`#[allow(...)]` without a `// lint: <why>` justification on the \
                     same or preceding comment line"
                        .to_string(),
                ));
            }
        }
    }

    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lints every `.rs` file under `<root>/crates`, returning findings
/// sorted by file then line.
pub fn lint_tree(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        let Ok(content) = fs::read_to_string(f) else {
            continue;
        };
        let rel = f.strip_prefix(root).unwrap_or(f);
        out.extend(lint_file(rel, &content));
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings as a JSON array (hand-rolled: the workspace adds
/// no external dependencies for tooling).
pub fn to_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            )
        })
        .collect();
    if items.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n]", items.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries_protect_atomic_names() {
        assert!(has_word("fn f(x: u32)", "u32"));
        assert!(!has_word("fn f(x: &AtomicU32)", "u32"));
        assert!(!has_word("fn f(x: u32x4)", "u32"));
    }

    #[test]
    fn suspicious_params_found_by_name() {
        assert_eq!(
            suspicious_usize_params("pub fn f(e: usize, s: usize, source_id: usize)"),
            vec!["e".to_string(), "source_id".to_string()]
        );
    }

    #[test]
    fn justification_reaches_over_comment_block() {
        let lines = vec!["// lint: audited", "// more words", "let x = i as u32;"];
        assert!(justified(&lines, 2));
        let lines = vec!["// plain comment", "let x = i as u32;"];
        assert!(!justified(&lines, 1));
    }

    #[test]
    fn json_is_escaped() {
        let f = Finding {
            rule: UNAUDITED_ID_CAST,
            file: "a\"b.rs".into(),
            line: 3,
            message: "x\ny".into(),
        };
        let j = to_json(&[f]);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
        assert_eq!(to_json(&[]), "[]");
    }
}
