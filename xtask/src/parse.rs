//! A lightweight item/expression parser over the [`crate::lexer`]
//! token stream, feeding the workspace call graph
//! ([`crate::callgraph`]) and the audit families in [`crate::audit`].
//!
//! This is *not* a Rust parser. It recognizes exactly the structure the
//! call-graph analysis needs, on a best-effort basis, and is explicit
//! about what it cannot see (the `unresolved` bucket in the call graph
//! — never a false guarantee):
//!
//! - **fn definitions** with their full module path: nested `mod`
//!   blocks and `impl` blocks (including `impl Trait for Type`) are
//!   tracked on a scope stack, so a function declared inside an `impl`
//!   nested in a `mod` resolves to `crate::module::Type::fn` — the
//!   call-graph key format. Arity counts every parameter including the
//!   `self` receiver.
//! - **call expressions**: free calls `ident(…)`, method calls
//!   `recv.method(…)`, qualified/UFCS calls `Type::assoc(…)` or
//!   `module::fn(…)` (with turbofish `::<…>` skipped), and macro
//!   invocations `name!(…)` (conservatively treated as opaque calls —
//!   they resolve to nothing and land in the unresolved bucket).
//! - **loop bodies**: the brace-matched body of every `for`/`while`/
//!   `loop` inside a function, so the hot-loop allocation audit can ask
//!   "is this call inside a loop?". Nested loops union their regions.
//! - **closure boundaries**: closure bodies are *not* separate
//!   functions here — calls inside a closure attach to the enclosing
//!   `fn`, which is the right attribution for `rayon`-style combinators
//!   (the closure runs on behalf of the kernel that spawned it).
//! - **allocation sites**: the token shapes the `alloc-in-hot-loop`
//!   audit flags (`Vec::new`, `Box::new`, `with_capacity(0)`,
//!   `collect`, `to_vec`, `to_owned`, `format!`/`vec!`, `clone`, and
//!   `push` on a vec the function itself grew from empty).
//!
//! Arity counting is token-based: commas at argument-list depth 1,
//! with closure parameter lists (`|a, b|`) skipped. Pathological
//! expressions (comparison chains inside call arguments) can miscount;
//! the resolution layer treats arity as a best-effort discriminator,
//! never a soundness boundary.

use crate::lexer::{is_keyword, Kind, Token};
use crate::model::FileModel;

/// How a call site was written — decides the resolution strategy in
/// [`crate::callgraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallStyle {
    /// `f(…)` — resolves against free functions.
    Free,
    /// `recv.m(…)` — resolves against associated functions taking
    /// `self` (any impl type; the receiver's type is unknown here).
    Method,
    /// `Qual::f(…)` — resolves against associated functions of the
    /// named type, or free functions in the named module.
    Qualified,
    /// `name!(…)` — opaque; always unresolved.
    Macro,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (the identifier before the argument list; for
    /// macros, without the `!`).
    pub name: String,
    /// The path segment immediately before `::name` for
    /// [`CallStyle::Qualified`] calls (`Type` in `Type::assoc`).
    pub qualifier: Option<String>,
    /// Syntactic shape of the call.
    pub style: CallStyle,
    /// Argument count: explicit arguments, plus one for the receiver of
    /// a method call. `None` for macros (token soup, not arguments).
    pub arity: Option<usize>,
    /// 1-based source line of the callee identifier.
    pub line: usize,
    /// `true` when the call sits inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
}

/// The allocation shapes the hot-loop audit recognizes.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// Human-readable shape, e.g. "`Vec::new()`" or "`format!`".
    pub what: String,
    /// 1-based source line.
    pub line: usize,
    /// `true` when the site sits inside a loop body.
    pub in_loop: bool,
}

/// A function definition with its call-graph identity.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Full call-graph key: `crate::module::…::[Type::]name`.
    pub key: String,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type name, when any.
    pub impl_type: Option<String>,
    /// Parameter count, counting a `self` receiver as one parameter.
    pub arity: usize,
    /// `true` when the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Repo-relative file, `/`-separated.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive line span of the item (signature through the
    /// body's closing brace), used to attribute findings to functions.
    pub span: (usize, usize),
    /// `true` when declared under `#[cfg(test)]` or in a test file.
    pub is_test: bool,
    /// `false` for bodyless declarations (trait-method signatures,
    /// `extern` blocks): they carry no code, so letting them resolve a
    /// call would manufacture a false "panic-free" guarantee.
    pub has_body: bool,
    /// Call expressions in the body (closures included).
    pub calls: Vec<Call>,
    /// Allocation-shaped expressions in the body.
    pub allocs: Vec<AllocSite>,
}

/// Parse result for one file: every function with its calls.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions in source order.
    pub fns: Vec<FnDef>,
}

/// Workspace crates: directory under `crates/` → the identifier the
/// crate is referenced by in source (and used as the call-graph key
/// root).
pub const CRATE_IDENTS: [(&str, &str); 10] = [
    ("util", "nwhy_util"),
    ("nwgraph", "nwgraph"),
    ("obs", "nwhy_obs"),
    ("core", "nwhy_core"),
    ("hygra", "hygra"),
    ("store", "nwhy_store"),
    ("io", "nwhy_io"),
    ("gen", "nwhy_gen"),
    ("nwhy", "nwhy"),
    ("bench", "nwhy_bench"),
];

/// Maps a repo-relative path to its call-graph module prefix:
/// `crates/core/src/slinegraph/naive.rs` → `nwhy_core::slinegraph::naive`,
/// `crates/nwhy/src/bin/nwhy-cli.rs` → `nwhy::bin::nwhy_cli`,
/// `crates/core/src/lib.rs` → `nwhy_core`. Unknown layouts fall back to
/// a sanitized path so keys stay unique.
pub fn module_prefix(file: &str) -> String {
    let sanitized = |s: &str| s.replace(['-', '.'], "_");
    let Some(rest) = file.strip_prefix("crates/") else {
        return sanitized(file.trim_end_matches(".rs")).replace('/', "::");
    };
    let mut parts = rest.split('/');
    let dir = parts.next().unwrap_or("");
    let root = CRATE_IDENTS
        .iter()
        .find(|(d, _)| *d == dir)
        .map_or(dir, |(_, id)| *id);
    let tail: Vec<&str> = parts.collect();
    let mut out = vec![root.to_string()];
    let mut tail = tail.as_slice();
    if tail.first() == Some(&"src") {
        tail = &tail[1..];
    }
    for (i, seg) in tail.iter().enumerate() {
        let last = i + 1 == tail.len();
        if last {
            let stem = seg.trim_end_matches(".rs");
            if stem == "lib" || stem == "main" || stem == "mod" {
                continue;
            }
            out.push(sanitized(stem));
        } else {
            out.push(sanitized(seg));
        }
    }
    out.join("::")
}

/// The atomic-store method names whose argument lists we never treat as
/// calls worth resolving (noise control is not needed — they resolve to
/// nothing — but the alloc matcher must not confuse them).
const LOOP_KEYWORDS: [&str; 3] = ["for", "while", "loop"];

enum Scope {
    Mod { name: String, close: usize },
    Impl { ty: String, close: usize },
}

/// Parses one file into its function definitions and call sites.
/// `file` is the repo-relative `/`-separated path (it seeds the
/// call-graph keys); `m` is the file's token model.
pub fn parse_file(file: &str, m: &FileModel) -> ParsedFile {
    let code = &m.code;
    let test_file = file.contains("/tests/");
    let prefix = module_prefix(file);
    let mut scopes: Vec<Scope> = Vec::new();
    let mut fns: Vec<FnDef> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        // retire scopes whose block has closed
        scopes.retain(|s| match s {
            Scope::Mod { close, .. } | Scope::Impl { close, .. } => i <= *close,
        });
        let t = &code[i];
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" => {
                // `mod name { … }` opens a module scope; `mod name;` is
                // an out-of-line module (its file parses separately).
                if let Some(name) = code.get(i + 1).filter(|n| n.kind == Kind::Ident) {
                    if tok_text(code, i + 2) == Some("{") {
                        let close = matching_brace_idx(code, i + 2);
                        scopes.push(Scope::Mod {
                            name: name.text.clone(),
                            close,
                        });
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            "impl" => {
                if let Some((ty, body_open)) = impl_type_name(code, i) {
                    let close = matching_brace_idx(code, body_open);
                    scopes.push(Scope::Impl { ty, close });
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            "trait" => {
                // `trait Name[<…>][: Bounds] { … }` scopes like an impl:
                // default methods get `…::Name::method` keys, and the
                // bodyless signatures inside never become resolution
                // candidates (`has_body` is false for them).
                if let Some(name) = code.get(i + 1).filter(|n| n.kind == Kind::Ident) {
                    let mut j = i + 2;
                    while j < code.len() && !is_punct(code, j, "{") && !is_punct(code, j, ";") {
                        if is_punct(code, j, "<") {
                            j = skip_generics(code, j);
                        } else {
                            j += 1;
                        }
                    }
                    if is_punct(code, j, "{") {
                        let close = matching_brace_idx(code, j);
                        scopes.push(Scope::Impl {
                            ty: name.text.clone(),
                            close,
                        });
                        i = j + 1;
                        continue;
                    }
                }
                i += 1;
            }
            "fn" => {
                let Some(name) = code.get(i + 1).filter(|n| n.kind == Kind::Ident) else {
                    i += 1; // `fn(…)` pointer type
                    continue;
                };
                let def = parse_fn(file, &prefix, &scopes, m, i, &name.text, test_file);
                let next = def.1;
                fns.push(def.0);
                i = next;
            }
            _ => i += 1,
        }
    }
    ParsedFile { fns }
}

fn tok_text(code: &[Token], i: usize) -> Option<&str> {
    code.get(i)
        .filter(|t| !matches!(t.kind, Kind::Str | Kind::Char))
        .map(|t| t.text.as_str())
}

fn is_punct(code: &[Token], i: usize, p: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == Kind::Punct && t.text == p)
}

fn is_ident(code: &[Token], i: usize, w: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == Kind::Ident && t.text == w)
}

/// `::` at `i`.
fn path_sep(code: &[Token], i: usize) -> bool {
    is_punct(code, i, ":") && is_punct(code, i + 1, ":")
}

/// Index of the `}` matching the `{` at `open` (which must be a `{`).
/// Returns the last token on unbalanced input.
fn matching_brace_idx(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.kind != Kind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

/// Skips a generics list starting at the `<` at `i`; returns the index
/// just past the matching `>`. `->` arrows inside (e.g. `Fn(u32) -> u32`
/// bounds) do not unbalance the scan.
fn skip_generics(code: &[Token], i: usize) -> usize {
    debug_assert!(is_punct(code, i, "<"));
    let mut depth = 0usize;
    let mut j = i;
    while j < code.len() {
        if is_punct(code, j, "-") && is_punct(code, j + 1, ">") {
            j += 2;
            continue;
        }
        if is_punct(code, j, "<") {
            depth += 1;
        } else if is_punct(code, j, ">") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

/// For an `impl` at `kw`, extracts the implemented type's name (the
/// last path segment before generic arguments — for `impl Trait for
/// Type` the *type*, not the trait) and the index of the body `{`.
/// Returns `None` for bodyless shapes the scan cannot follow.
fn impl_type_name(code: &[Token], kw: usize) -> Option<(String, usize)> {
    let mut j = kw + 1;
    if is_punct(code, j, "<") {
        j = skip_generics(code, j);
    }
    // scan to the body `{`, tracking the last `for` at angle depth 0
    let mut ty_start = j;
    let mut k = j;
    let mut body = None;
    while k < code.len() {
        if is_punct(code, k, "<") {
            k = skip_generics(code, k);
            continue;
        }
        match tok_text(code, k) {
            Some("{") => {
                body = Some(k);
                break;
            }
            Some(";") => return None, // e.g. `impl Foo;` (never valid, bail)
            Some("for") if code[k].kind == Kind::Ident => ty_start = k + 1,
            Some("where") if code[k].kind == Kind::Ident => {
                // type tokens end here; keep scanning for the `{`
            }
            _ => {}
        }
        k += 1;
    }
    let body = body?;
    // the type name: last plain identifier at angle depth 0 in
    // [ty_start, body), skipping `where` clauses
    let mut name = None;
    let mut j = ty_start;
    while j < body {
        if is_punct(code, j, "<") {
            j = skip_generics(code, j);
            continue;
        }
        if is_ident(code, j, "where") {
            break;
        }
        if code[j].kind == Kind::Ident && !is_keyword(&code[j].text) {
            name = Some(code[j].text.clone());
        }
        j += 1;
    }
    name.map(|n| (n, body))
}

/// Counts the arguments in the paren group opening at `open` (`(`).
/// Returns `(count, index past the closing paren)`. Commas nested in
/// `()`/`[]`/`{}` or inside closure parameter pipes do not count;
/// trailing commas are ignored.
fn count_args(code: &[Token], open: usize) -> (usize, usize) {
    debug_assert!(is_punct(code, open, "("));
    let mut paren = 0usize;
    let mut square = 0usize;
    let mut brace = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    let mut j = open;
    while j < code.len() {
        let t = &code[j];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" => {
                    paren += 1;
                    j += 1;
                    continue;
                }
                ")" => {
                    paren = paren.saturating_sub(1);
                    if paren == 0 {
                        return (if any { commas + 1 } else { 0 }, j + 1);
                    }
                    any = true;
                    j += 1;
                    continue;
                }
                "[" => square += 1,
                "]" => square = square.saturating_sub(1),
                "{" => brace += 1,
                "}" => brace = brace.saturating_sub(1),
                "," if paren == 1 && square == 0 && brace == 0 => {
                    // a trailing comma right before `)` is not a new arg
                    if !is_punct(code, j + 1, ")") {
                        commas += 1;
                    }
                    j += 1;
                    continue;
                }
                "|" if paren == 1 && square == 0 && brace == 0 && closure_open(code, j) => {
                    // skip closure parameter pipes: `|a, b|`
                    let mut k = j + 1;
                    while k < code.len() && !is_punct(code, k, "|") {
                        k += 1;
                    }
                    any = true;
                    j = k + 1;
                    continue;
                }
                _ => {}
            }
            if paren >= 1 && t.text != ")" {
                any = true;
            }
        } else {
            any = true;
        }
        j += 1;
    }
    (if any { commas + 1 } else { 0 }, code.len())
}

/// Is the `|` at `j` opening a closure parameter list? True when the
/// previous token cannot end an expression (so `a | b` stays bitwise).
fn closure_open(code: &[Token], j: usize) -> bool {
    let Some(prev) = j.checked_sub(1).and_then(|p| code.get(p)) else {
        return true;
    };
    match prev.kind {
        Kind::Ident => is_keyword(&prev.text) && prev.text != "self" && prev.text != "true",
        Kind::Num | Kind::Str | Kind::Char | Kind::Lifetime => false,
        Kind::Punct => !matches!(prev.text.as_str(), ")" | "]" | "}"),
        Kind::Comment => true,
    }
}

/// Counts parameters of the fn whose param `(` sits at `open`,
/// reporting whether the first parameter is a `self` receiver. Commas
/// inside nested groups or generics (`HashMap<K, V>`) do not count.
fn count_params(code: &[Token], open: usize) -> (usize, bool, usize) {
    debug_assert!(is_punct(code, open, "("));
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    let mut has_self = false;
    let mut j = open;
    while j < code.len() {
        if depth == 1 && is_punct(code, j, "<") {
            j = skip_generics(code, j);
            continue;
        }
        let t = &code[j];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return (if any { commas + 1 } else { 0 }, has_self, j + 1);
                    }
                }
                "," if depth == 1 && !is_punct(code, j + 1, ")") => commas += 1,
                _ => {}
            }
        } else if t.kind == Kind::Ident {
            any = true;
            if t.text == "self" && depth == 1 && commas == 0 {
                has_self = true;
            }
        } else {
            any = true;
        }
        j += 1;
    }
    (if any { commas + 1 } else { 0 }, has_self, code.len())
}

/// Parses the fn whose `fn` keyword sits at `kw`; returns the def and
/// the token index to resume scanning at (just past the signature, so
/// nested items inside the body are found by the caller's loop — no:
/// the body is scanned *here* for calls, and the caller resumes past
/// the whole item).
#[allow(clippy::too_many_arguments)] // lint: internal parser plumbing, not API surface
fn parse_fn(
    file: &str,
    prefix: &str,
    scopes: &[Scope],
    m: &FileModel,
    kw: usize,
    name: &str,
    test_file: bool,
) -> (FnDef, usize) {
    let code = &m.code;
    // signature: skip generics after the name, find the param `(`
    let mut j = kw + 2;
    if is_punct(code, j, "<") {
        j = skip_generics(code, j);
    }
    let (arity, has_self, mut k) = if is_punct(code, j, "(") {
        count_params(code, j)
    } else {
        (0, false, j)
    };
    // scan past the return type / where clause to the body `{` or `;`
    let mut body: Option<(usize, usize)> = None;
    while k < code.len() {
        if is_punct(code, k, "<") {
            k = skip_generics(code, k);
            continue;
        }
        if is_punct(code, k, "{") {
            body = Some((k + 1, matching_brace_idx(code, k)));
            break;
        }
        if is_punct(code, k, ";") {
            break;
        }
        k += 1;
    }
    let mut path = vec![prefix.to_string()];
    let mut impl_type = None;
    for s in scopes {
        match s {
            Scope::Mod { name, .. } => path.push(name.clone()),
            Scope::Impl { ty, .. } => impl_type = Some(ty.clone()),
        }
    }
    if let Some(ty) = &impl_type {
        path.push(ty.clone());
    }
    path.push(name.to_string());
    let end_line = body
        .map(|(_, close)| code.get(close).map_or(code[kw].line, |t| t.line))
        .unwrap_or(code[kw].line);
    let mut def = FnDef {
        key: path.join("::"),
        name: name.to_string(),
        impl_type,
        arity,
        has_self,
        file: file.to_string(),
        line: code[kw].line,
        span: (code[kw].line, end_line),
        is_test: test_file || m.in_test(kw),
        has_body: body.is_some(),
        calls: Vec::new(),
        allocs: Vec::new(),
    };
    let resume = match body {
        Some((b0, b1)) => {
            scan_body(code, b0, b1, &mut def);
            // resume INSIDE the body: nested `fn` items (and mods/impls
            // declared in fn scope) get their own defs from the outer
            // scan loop; scan_body skipped their tokens for this def
            b0
        }
        None => k + 1,
    };
    (def, resume)
}

/// The fresh-vec binding shapes tracked for the `push` alloc matcher:
/// `let [mut] NAME = Vec::new()`, `= vec![...]`, or a struct-literal
/// field `NAME: Vec::new()`.
fn fresh_vec_names(code: &[Token], b0: usize, b1: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = b0;
    while i < b1 {
        // `NAME = Vec::new` / `NAME: Vec::new` / `NAME = vec!`
        if code[i].kind == Kind::Ident && !is_keyword(&code[i].text) {
            let mut j = i + 1;
            // `=` binds a `let`, a single `:` binds a struct-literal
            // field; either way the initializer starts one token later
            let binder = (is_punct(code, j, "=") && !is_punct(code, j + 1, "="))
                || (is_punct(code, j, ":") && !is_punct(code, j + 1, ":"));
            if binder {
                j += 1;
            }
            if binder {
                let fresh = (is_ident(code, j, "Vec")
                    && path_sep(code, j + 1)
                    && (is_ident(code, j + 3, "new")
                        || (is_ident(code, j + 3, "with_capacity")
                            && is_punct(code, j + 4, "(")
                            && tok_text(code, j + 5) == Some("0"))))
                    || (is_ident(code, j, "vec") && is_punct(code, j + 1, "!"));
                if fresh {
                    out.push(code[i].text.clone());
                }
            }
        }
        i += 1;
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Token ranges of `fn` items nested inside `[b0, b1)` — their bodies
/// belong to their own [`FnDef`]s, not the enclosing one.
fn nested_fn_ranges(code: &[Token], b0: usize, b1: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = b0;
    while i < b1 {
        if is_ident(code, i, "fn") && code.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) {
            let mut j = i + 2;
            while j < b1 && !is_punct(code, j, "{") && !is_punct(code, j, ";") {
                j += 1;
            }
            if is_punct(code, j, "{") {
                let close = matching_brace_idx(code, j);
                out.push((i, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Scans a fn body `[b0, b1)` for loop regions, call expressions, and
/// allocation sites, appending into `def`. Tokens belonging to nested
/// `fn` items are skipped — they get their own defs.
fn scan_body(code: &[Token], b0: usize, b1: usize, def: &mut FnDef) {
    let nested = nested_fn_ranges(code, b0, b1);
    let in_nested = |idx: usize| nested.iter().any(|&(s, e)| s <= idx && idx <= e);
    // loop regions: `for`/`while`/`loop` … `{` … matching `}`
    let mut loops: Vec<(usize, usize)> = Vec::new();
    let mut i = b0;
    while i < b1 {
        let t = &code[i];
        if t.kind == Kind::Ident && LOOP_KEYWORDS.contains(&t.text.as_str()) && !in_nested(i) {
            let mut j = i + 1;
            while j < b1 && !is_punct(code, j, "{") {
                j += 1;
            }
            if j < b1 {
                loops.push((j, matching_brace_idx(code, j)));
            }
        }
        i += 1;
    }
    let in_loop = |idx: usize| loops.iter().any(|&(s, e)| s < idx && idx < e);
    let grown_vecs = fresh_vec_names(code, b0, b1);

    let mut i = b0;
    while i < b1 {
        if in_nested(i) {
            i += 1;
            continue;
        }
        let t = &code[i];
        if t.kind != Kind::Ident || is_keyword(&t.text) {
            i += 1;
            continue;
        }
        let line = t.line;
        let name = t.text.clone();
        // macro invocation: `name ! (` / `name ! [` / `name ! {`
        if is_punct(code, i + 1, "!") && matches!(tok_text(code, i + 2), Some("(" | "[" | "{")) {
            if name == "format" || name == "vec" {
                def.allocs.push(AllocSite {
                    what: format!("`{name}!`"),
                    line,
                    in_loop: in_loop(i),
                });
            }
            def.calls.push(Call {
                name,
                qualifier: None,
                style: CallStyle::Macro,
                arity: None,
                line,
                in_loop: in_loop(i),
            });
            i += 2;
            continue;
        }
        // possible turbofish after the name: `name::<T>(…)`
        let mut after = i + 1;
        let mut saw_turbofish = false;
        if path_sep(code, after) && is_punct(code, after + 2, "<") {
            after = skip_generics(code, after + 2);
            saw_turbofish = true;
        }
        if !is_punct(code, after, "(") {
            i += 1;
            continue;
        }
        // classify by what precedes the callee name
        let prev_dot =
            i > 0 && is_punct(code, i - 1, ".") && !is_punct(code, i.saturating_sub(2), ".");
        let prev_path = i >= 2 && path_sep(code, i - 2) && !saw_turbofish && {
            // a qualifier segment must itself be an identifier
            code.get(i.saturating_sub(3))
                .is_some_and(|q| q.kind == Kind::Ident)
        } || (saw_turbofish && i >= 2 && path_sep(code, i - 2));
        let (args, _) = count_args(code, after);
        if prev_dot {
            let what = match name.as_str() {
                "collect" => Some("`.collect()`"),
                "to_vec" => Some("`.to_vec()`"),
                "to_owned" => Some("`.to_owned()`"),
                "clone" => Some("`.clone()`"),
                "with_capacity" => {
                    if tok_text(code, after + 1) == Some("0") {
                        Some("`with_capacity(0)`")
                    } else {
                        None
                    }
                }
                "push" => {
                    let recv = i.checked_sub(2).and_then(|p| code.get(p));
                    if recv.is_some_and(|r| r.kind == Kind::Ident && grown_vecs.contains(&r.text)) {
                        Some("`.push()` on a locally-grown vec")
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(what) = what {
                def.allocs.push(AllocSite {
                    what: what.to_string(),
                    line,
                    in_loop: in_loop(i),
                });
            }
            def.calls.push(Call {
                name,
                qualifier: None,
                style: CallStyle::Method,
                arity: Some(args + 1),
                line,
                in_loop: in_loop(i),
            });
        } else if prev_path {
            let qualifier = code.get(i - 3).map(|q| q.text.clone());
            if let Some(q) = &qualifier {
                if (q == "Vec" || q == "Box" || q == "String") && name == "new" {
                    def.allocs.push(AllocSite {
                        what: format!("`{q}::new()`"),
                        line,
                        in_loop: in_loop(i),
                    });
                }
                if q == "Vec" && name == "with_capacity" && tok_text(code, after + 1) == Some("0") {
                    def.allocs.push(AllocSite {
                        what: "`Vec::with_capacity(0)`".to_string(),
                        line,
                        in_loop: in_loop(i),
                    });
                }
            }
            def.calls.push(Call {
                name,
                qualifier,
                style: CallStyle::Qualified,
                arity: Some(args),
                line,
                in_loop: in_loop(i),
            });
        } else {
            def.calls.push(Call {
                name,
                qualifier: None,
                style: CallStyle::Free,
                arity: Some(args),
                line,
                in_loop: in_loop(i),
            });
        }
        i = after + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(file: &str, src: &str) -> ParsedFile {
        parse_file(file, &FileModel::new(src))
    }

    #[test]
    fn module_prefix_maps_layouts() {
        assert_eq!(
            module_prefix("crates/core/src/slinegraph/naive.rs"),
            "nwhy_core::slinegraph::naive"
        );
        assert_eq!(module_prefix("crates/core/src/lib.rs"), "nwhy_core");
        assert_eq!(
            module_prefix("crates/nwhy/src/bin/nwhy-cli.rs"),
            "nwhy::bin::nwhy_cli"
        );
        assert_eq!(
            module_prefix("crates/core/src/slinegraph/mod.rs"),
            "nwhy_core::slinegraph"
        );
        assert_eq!(module_prefix("crates/hygra/src/bfs.rs"), "hygra::bfs");
    }

    #[test]
    fn fn_in_impl_in_mod_gets_full_path() {
        let src = "\
mod inner {
    pub struct Foo;
    impl Foo {
        pub fn bar(&self, x: usize) -> usize { x }
    }
}
";
        let p = parse("crates/core/src/x.rs", src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].key, "nwhy_core::x::inner::Foo::bar");
        assert_eq!(p.fns[0].arity, 2);
        assert!(p.fns[0].has_self);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = "impl<'a> Display for Claim<'a> { fn fmt(&self) {} }\n";
        let p = parse("crates/hygra/src/bfs.rs", src);
        assert_eq!(p.fns[0].key, "hygra::bfs::Claim::fmt");
    }

    #[test]
    fn call_styles_and_arity() {
        let src = "\
fn f() {
    free(1, 2);
    recv.method(3);
    Type::assoc(a, b, c);
    ids::from_usize(n);
    mac!(whatever, tokens);
    turbo::<u32>(x);
}
";
        let p = parse("crates/core/src/x.rs", src);
        let calls = &p.fns[0].calls;
        let find = |n: &str| calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(find("free").style, CallStyle::Free);
        assert_eq!(find("free").arity, Some(2));
        assert_eq!(find("method").style, CallStyle::Method);
        assert_eq!(find("method").arity, Some(2)); // receiver counts
        assert_eq!(find("assoc").style, CallStyle::Qualified);
        assert_eq!(find("assoc").qualifier.as_deref(), Some("Type"));
        assert_eq!(find("assoc").arity, Some(3));
        assert_eq!(find("from_usize").qualifier.as_deref(), Some("ids"));
        assert_eq!(find("mac").style, CallStyle::Macro);
        assert_eq!(find("mac").arity, None);
        assert_eq!(find("turbo").style, CallStyle::Free);
        assert_eq!(find("turbo").arity, Some(1));
    }

    #[test]
    fn closure_args_do_not_inflate_arity() {
        let src = "fn f() { run(|a, b| a + b, seed); }\n";
        let p = parse("crates/core/src/x.rs", src);
        let run = p.fns[0].calls.iter().find(|c| c.name == "run").unwrap();
        assert_eq!(run.arity, Some(2));
    }

    #[test]
    fn calls_in_closures_attach_to_the_enclosing_fn() {
        let src = "\
pub fn kernel(xs: &[u32]) {
    xs.iter().for_each(|x| helper(*x));
}
fn helper(_x: u32) {}
";
        let p = parse("crates/core/src/x.rs", src);
        let kernel = &p.fns[0];
        assert!(kernel.calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn loop_regions_mark_calls_and_allocs() {
        let src = "\
fn f(n: usize) {
    setup();
    for i in 0..n {
        let v = Vec::new();
        inner(i);
    }
    teardown();
}
";
        let p = parse("crates/core/src/x.rs", src);
        let f = &p.fns[0];
        let call = |n: &str| f.calls.iter().find(|c| c.name == n).unwrap();
        assert!(!call("setup").in_loop);
        assert!(call("inner").in_loop);
        assert!(!call("teardown").in_loop);
        assert_eq!(f.allocs.len(), 1);
        assert!(f.allocs[0].in_loop);
        assert_eq!(f.allocs[0].what, "`Vec::new()`");
    }

    #[test]
    fn while_and_loop_bodies_count() {
        let src = "fn f() { while go() { a(); } loop { b(); break; } }\n";
        let p = parse("crates/core/src/x.rs", src);
        let f = &p.fns[0];
        let call = |n: &str| f.calls.iter().find(|c| c.name == n).unwrap();
        assert!(call("a").in_loop);
        assert!(call("b").in_loop);
    }

    #[test]
    fn push_on_locally_grown_vec_is_an_alloc_site() {
        let src = "\
fn f(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..n {
        out.push(i);
    }
    out
}
";
        let p = parse("crates/core/src/x.rs", src);
        let allocs = &p.fns[0].allocs;
        assert!(
            allocs
                .iter()
                .any(|a| a.in_loop && a.what.contains("locally-grown")),
            "{allocs:?}"
        );
    }

    #[test]
    fn push_on_presized_vec_is_not_flagged() {
        let src = "\
fn f(n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(i);
    }
    out
}
";
        let p = parse("crates/core/src/x.rs", src);
        assert!(p.fns[0].allocs.is_empty(), "{:?}", p.fns[0].allocs);
    }

    #[test]
    fn format_and_collect_in_loops_are_alloc_sites() {
        let src = "\
fn f(xs: &[u32]) {
    for x in xs {
        let s = format!(\"{x}\");
        let v: Vec<u32> = xs.iter().copied().collect();
        use_it(&s, &v);
    }
}
";
        let p = parse("crates/core/src/x.rs", src);
        let whats: Vec<&str> = p.fns[0].allocs.iter().map(|a| a.what.as_str()).collect();
        assert!(whats.contains(&"`format!`"), "{whats:?}");
        assert!(whats.contains(&"`.collect()`"), "{whats:?}");
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn prod() {}\n";
        let p = parse("crates/core/src/x.rs", src);
        assert!(p.fns[0].is_test);
        assert!(!p.fns[1].is_test);
    }

    #[test]
    fn spans_cover_the_body() {
        let src = "fn a() {\n    x();\n    y();\n}\nfn b() {}\n";
        let p = parse("crates/core/src/x.rs", src);
        assert_eq!(p.fns[0].span, (1, 4));
        assert_eq!(p.fns[1].span, (5, 5));
    }

    #[test]
    fn nested_fn_owns_its_calls() {
        let src = "\
fn outer() {
    fn inner() { deep(); }
    shallow();
}
";
        let p = parse("crates/core/src/x.rs", src);
        assert_eq!(p.fns.len(), 2);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(inner.calls.iter().any(|c| c.name == "deep"));
        assert!(outer.calls.iter().any(|c| c.name == "shallow"));
        assert!(!outer.calls.iter().any(|c| c.name == "deep"));
    }
}
