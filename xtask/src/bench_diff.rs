//! `cargo xtask bench-diff <old> <new>` — the counter-based perf gate.
//!
//! Compares two `BENCH_*.json` perf-trajectory files (see
//! `crates/bench`) row by row and fails when any kernel counter grew by
//! more than a threshold. Counters — not wall-clock — are the gated
//! quantity: they are deterministic for a fixed input and thread-count
//! independent (the one stealing-dependent counter is denylisted), so
//! the gate never flakes on loaded CI runners the way timing gates do.
//!
//! Rows are matched by `(bench, dataset, algorithm, s)`. A row or
//! counter present in the baseline but missing from the new file is a
//! failure (a silently dropped measurement must not pass the gate);
//! new rows and new counters are informational only, so adding
//! datasets or counters never requires a simultaneous baseline bump.
//!
//! The scanner below is a deliberately tiny JSON reader for exactly the
//! bench schema (array of flat objects whose only nesting is the
//! `counters` object). `xtask` stays dependency-free — see the crate
//! docs — so it cannot reuse `nwhy-obs`'s generic parser.

use std::fmt;

/// Counters excluded from the gate because their value depends on the
/// worker count or scheduling, not on the input:
///
/// - `sline.queue_steals`: how often workers steal chunks from the flat
///   work queue varies with thread count and timing.
const DENYLIST: &[&str] = &["sline.queue_steals"];

/// Default regression threshold, in percent growth over the baseline.
pub const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

/// One parsed bench row: the match key plus its counters. Timing fields
/// are intentionally dropped — the gate never reads `median_seconds`.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub bench: String,
    pub dataset: String,
    pub algorithm: String,
    pub s: Option<u64>,
    pub counters: Vec<(String, u64)>,
}

impl Row {
    fn key(&self) -> String {
        let s = match self.s {
            Some(s) => s.to_string(),
            None => "-".to_string(),
        };
        format!("{}/{}/{}/s={s}", self.bench, self.dataset, self.algorithm)
    }

    fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }
}

/// One gate violation: a grown counter or a dropped row/counter.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `bench/dataset/algorithm/s=K` row key.
    pub key: String,
    /// Human-readable description of what regressed.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.key, self.detail)
    }
}

/// The outcome of one baseline/candidate comparison.
#[derive(Debug, Clone)]
pub struct Report {
    /// Gate violations; empty means the gate passes.
    pub violations: Vec<Violation>,
    /// Counters compared (after denylisting).
    pub compared: usize,
    /// Keys present only in the new file (informational).
    pub added_rows: Vec<String>,
}

impl Report {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Diffs two bench JSON documents under a growth threshold (percent).
pub fn diff(old_text: &str, new_text: &str, threshold_pct: f64) -> Result<Report, String> {
    let old_rows = parse_rows(old_text).map_err(|e| format!("baseline: {e}"))?;
    let new_rows = parse_rows(new_text).map_err(|e| format!("candidate: {e}"))?;
    let mut violations = Vec::new();
    let mut compared = 0usize;
    for old in &old_rows {
        let key = old.key();
        let Some(new) = new_rows.iter().find(|n| n.key() == key) else {
            violations.push(Violation {
                key,
                detail: "row missing from candidate".into(),
            });
            continue;
        };
        for (name, old_v) in &old.counters {
            if DENYLIST.contains(&name.as_str()) {
                continue;
            }
            let Some(new_v) = new.counter(name) else {
                violations.push(Violation {
                    key: key.clone(),
                    detail: format!("counter {name} missing from candidate"),
                });
                continue;
            };
            compared += 1;
            // counters are deterministic: any growth from a zero
            // baseline is a new cost, not noise
            let grew_from_zero = *old_v == 0 && new_v > 0;
            let pct = if *old_v == 0 {
                0.0
            } else {
                (new_v as f64 - *old_v as f64) / (*old_v as f64) * 100.0
            };
            if pct > threshold_pct || grew_from_zero {
                violations.push(Violation {
                    key: key.clone(),
                    detail: format!("counter {name} grew {old_v} -> {new_v} (+{pct:.1}%)"),
                });
            }
        }
    }
    let added_rows = new_rows
        .iter()
        .map(Row::key)
        .filter(|k| !old_rows.iter().any(|o| &o.key() == k))
        .collect();
    Ok(Report {
        violations,
        compared,
        added_rows,
    })
}

/// Resolves the threshold: `--threshold` flag beats the
/// `NWHY_BENCH_DIFF_THRESHOLD` environment knob beats the default.
pub fn resolve_threshold(flag: Option<f64>) -> f64 {
    flag.or_else(|| {
        std::env::var("NWHY_BENCH_DIFF_THRESHOLD")
            .ok()
            .and_then(|v| v.parse().ok())
    })
    .unwrap_or(DEFAULT_THRESHOLD_PCT)
}

// --- minimal bench-schema JSON scanner ---

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("byte {}: expected {:?}", self.pos, char::from(b)))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                }
                Some(&b) if b < 0x80 => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8: copy the whole code point
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("truncated UTF-8")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|_| format!("byte {start}: bad number"))
    }

    fn literal(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    /// Skips any value — used for fields the gate does not read.
    fn skip_value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => {
                self.string()?;
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if !self.eat(b']') {
                    loop {
                        self.skip_value()?;
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b']')?;
                }
            }
            Some(b'{') => {
                self.expect(b'{')?;
                if !self.eat(b'}') {
                    loop {
                        self.string()?;
                        self.expect(b':')?;
                        self.skip_value()?;
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b'}')?;
                }
            }
            _ => {
                if !(self.literal("null") || self.literal("true") || self.literal("false")) {
                    self.number()?;
                }
            }
        }
        Ok(())
    }

    fn counters(&mut self) -> Result<Vec<(String, u64)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.eat(b'}') {
            return Ok(out);
        }
        loop {
            let name = self.string()?;
            self.expect(b':')?;
            let v = self.number()?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("counter {name:?} must be a non-negative integer"));
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // lint: checked non-negative and integral just above
            out.push((name, v as u64));
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        Ok(out)
    }

    fn row(&mut self) -> Result<Row, String> {
        self.expect(b'{')?;
        let mut row = Row {
            bench: String::new(),
            dataset: String::new(),
            algorithm: String::new(),
            s: None,
            counters: Vec::new(),
        };
        if self.eat(b'}') {
            return Err("row must not be empty".into());
        }
        loop {
            let field = self.string()?;
            self.expect(b':')?;
            match field.as_str() {
                "bench" => row.bench = self.string()?,
                "dataset" => row.dataset = self.string()?,
                "algorithm" => row.algorithm = self.string()?,
                "s" => {
                    if !self.literal("null") {
                        let v = self.number()?;
                        if v < 0.0 || v.fract() != 0.0 {
                            return Err("\"s\" must be a non-negative integer".into());
                        }
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        // lint: checked non-negative and integral just above
                        let s = v as u64;
                        row.s = Some(s);
                    }
                }
                "counters" => row.counters = self.counters()?,
                _ => self.skip_value()?,
            }
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        Ok(row)
    }
}

/// Parses a `BENCH_*.json` document into its rows.
pub fn parse_rows(text: &str) -> Result<Vec<Row>, String> {
    let mut sc = Scanner::new(text);
    sc.expect(b'[')?;
    let mut rows = Vec::new();
    if !sc.eat(b']') {
        loop {
            rows.push(sc.row()?);
            if !sc.eat(b',') {
                break;
            }
        }
        sc.expect(b']')?;
    }
    sc.skip_ws();
    if sc.pos != sc.bytes.len() {
        return Err(format!("trailing content at byte {}", sc.pos));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(counter: &str, value: u64) -> String {
        format!(
            "[{{\"bench\": \"slinegraph\", \"dataset\": \"uniform\", \
             \"algorithm\": \"hashmap\", \"s\": 2, \"trials\": 3, \
             \"median_seconds\": 1.5e-4, \
             \"counters\": {{\"{counter}\": {value}, \"sline.edges_emitted\": 10}}}}]"
        )
    }

    #[test]
    fn parses_the_emitter_shape() {
        let rows = parse_rows(&doc("sline.pairs_examined", 100)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].bench, "slinegraph");
        assert_eq!(rows[0].s, Some(2));
        assert_eq!(rows[0].counter("sline.pairs_examined"), Some(100));
        assert_eq!(rows[0].counter("sline.edges_emitted"), Some(10));
    }

    #[test]
    fn identical_files_pass() {
        let d = doc("sline.pairs_examined", 100);
        let r = diff(&d, &d, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
        assert_eq!(r.compared, 2);
    }

    #[test]
    fn growth_over_threshold_fails() {
        let old = doc("sline.pairs_examined", 100);
        let new = doc("sline.pairs_examined", 120); // +20% > 15%
        let r = diff(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(!r.passed());
        assert!(r.violations[0].detail.contains("+20.0%"));
    }

    #[test]
    fn growth_under_threshold_passes_and_threshold_is_tunable() {
        let old = doc("sline.pairs_examined", 100);
        let new = doc("sline.pairs_examined", 110); // +10%
        assert!(diff(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap().passed());
        assert!(!diff(&old, &new, 5.0).unwrap().passed());
    }

    #[test]
    fn improvements_always_pass() {
        let old = doc("sline.pairs_examined", 100);
        let new = doc("sline.pairs_examined", 10);
        assert!(diff(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap().passed());
    }

    #[test]
    fn growth_from_zero_fails() {
        let old = doc("sline.pairs_skipped", 0);
        let new = doc("sline.pairs_skipped", 1);
        assert!(!diff(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap().passed());
    }

    #[test]
    fn denylisted_counter_is_ignored() {
        let old = doc("sline.queue_steals", 10);
        let new = doc("sline.queue_steals", 1000);
        let r = diff(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
        assert_eq!(r.compared, 1, "only sline.edges_emitted is gated");
    }

    #[test]
    fn missing_row_or_counter_fails() {
        let old = doc("sline.pairs_examined", 100);
        assert!(!diff(
            &old,
            "[{\"bench\": \"slinegraph\", \"dataset\": \"other\", \
                 \"algorithm\": \"hashmap\", \"s\": 2, \"counters\": {}}]",
            DEFAULT_THRESHOLD_PCT
        )
        .unwrap()
        .passed());
        let new = doc("sline.other_counter", 100);
        assert!(!diff(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap().passed());
    }

    #[test]
    fn new_rows_and_counters_are_informational() {
        let old = doc("sline.pairs_examined", 100);
        let new = format!(
            "[{},{}]",
            doc("sline.pairs_examined", 100)
                .trim_start_matches('[')
                .trim_end_matches(']'),
            "{\"bench\": \"slinegraph\", \"dataset\": \"extra\", \
             \"algorithm\": \"naive\", \"s\": null, \"counters\": {\"x\": 1}}"
        );
        let r = diff(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(r.passed());
        assert_eq!(r.added_rows, vec!["slinegraph/extra/naive/s=-"]);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(parse_rows("[{\"bench\": }]").is_err());
        assert!(parse_rows("not json").is_err());
        assert!(diff("[]", "[]", 15.0).unwrap().passed());
    }
}
