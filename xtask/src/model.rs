//! The item/block tracker the lint rules run against.
//!
//! [`FileModel`] digests one file's token stream (from [`crate::lexer`])
//! into the structure the rules need:
//!
//! - **code tokens** with comments split out, plus a per-line index of
//!   comment text and code presence, so the `// lint:` / `// SAFETY:`
//!   audit-marker lookup works exactly as before (same line, or the
//!   contiguous comment block immediately above);
//! - **`#[cfg(test)]` regions** scoped to the *actual attribute
//!   target* — the `mod tests { … }` block, a single `fn`, an `impl` —
//!   by tracking braces to the matching close. (The PR 5 pass treated
//!   everything after the first `#[cfg(test)]` to end-of-file as test
//!   code, silently un-linting any item below a test module.)
//! - **fn items**: visibility, start line, signature token range, and
//!   body token range, found by brace matching.

use crate::lexer::{lex, Kind, Token};

/// A function item: where it starts, whether it is `pub`, and the token
/// ranges of its signature and body within [`FileModel::code`].
#[derive(Debug, Clone)]
pub struct FnItem {
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `pub`, `pub(crate)`, `pub(super)`, … all count as public here:
    /// the signature rule cares about API surface, not reachability.
    pub is_pub: bool,
    /// `[start, end)` code-token range from the `fn` keyword up to (not
    /// including) the body `{` or the terminating `;`.
    pub sig: (usize, usize),
    /// `[start, end)` code-token range of the body *between* the braces
    /// (empty for trait-method declarations ending in `;`).
    pub body: Option<(usize, usize)>,
}

/// Per-file token model: code tokens, comment index, test regions, fns.
pub struct FileModel {
    /// Code tokens (comments stripped), in source order.
    pub code: Vec<Token>,
    /// Concatenated comment text per 1-based line (empty when none).
    comment_on_line: Vec<String>,
    /// Whether any code token starts on the 1-based line.
    code_on_line: Vec<bool>,
    /// `[start, end]` *inclusive* code-token index ranges under a
    /// `#[cfg(test)]` attribute (the attribute's `#` through the
    /// target's closing brace or `;`).
    pub test_ranges: Vec<(usize, usize)>,
    /// Function items in source order.
    pub fns: Vec<FnItem>,
}

impl FileModel {
    /// Lexes and digests `src`.
    pub fn new(src: &str) -> FileModel {
        let tokens = lex(src);
        let n_lines = src.lines().count() + 2;
        let mut comment_on_line = vec![String::new(); n_lines + 1];
        let mut code_on_line = vec![false; n_lines + 1];
        let mut code = Vec::new();
        for t in tokens {
            if t.line > n_lines {
                continue; // defensive; lines() vs trailing newline drift
            }
            if t.kind == Kind::Comment {
                comment_on_line[t.line].push_str(&t.text);
                comment_on_line[t.line].push(' ');
            } else {
                code_on_line[t.line] = true;
                code.push(t);
            }
        }
        let test_ranges = find_test_ranges(&code);
        let fns = find_fns(&code);
        FileModel {
            code,
            comment_on_line,
            code_on_line,
            test_ranges,
            fns,
        }
    }

    /// Is the code token at `idx` inside a `#[cfg(test)]` region?
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= idx && idx <= e)
    }

    /// `true` when `line` carries `marker` in a comment, or the
    /// contiguous run of comment-only lines immediately above does.
    pub fn marked(&self, line: usize, marker: &str) -> bool {
        if self
            .comment_on_line
            .get(line)
            .is_some_and(|c| c.contains(marker))
        {
            return true;
        }
        let mut j = line;
        while j > 1 {
            j -= 1;
            let comment = self
                .comment_on_line
                .get(j)
                .map(String::as_str)
                .unwrap_or("");
            let has_code = self.code_on_line.get(j).copied().unwrap_or(false);
            if has_code || comment.is_empty() {
                return false;
            }
            if comment.contains(marker) {
                return true;
            }
        }
        false
    }

    /// `// lint:` justification on `line` or the comment block above.
    pub fn justified(&self, line: usize) -> bool {
        self.marked(line, "// lint:")
    }

    /// Convenience: the text of code token `idx`, or `""` past the end.
    pub fn text(&self, idx: usize) -> &str {
        self.code.get(idx).map(|t| t.text.as_str()).unwrap_or("")
    }

    /// `true` when code token `idx` exists, is not a string/char
    /// literal, and has exactly `text`.
    pub fn tok_is(&self, idx: usize, text: &str) -> bool {
        self.code
            .get(idx)
            .is_some_and(|t| !matches!(t.kind, Kind::Str | Kind::Char) && t.text == text)
    }

    /// `true` when code token `idx` is an identifier with text `text`.
    pub fn ident_is(&self, idx: usize, text: &str) -> bool {
        self.code
            .get(idx)
            .is_some_and(|t| t.kind == Kind::Ident && t.text == text)
    }

    /// Matches `::` at `idx` (two consecutive `:` puncts).
    pub fn path_sep(&self, idx: usize) -> bool {
        self.tok_is(idx, ":") && self.tok_is(idx + 1, ":")
    }
}

/// Finds the code-token index of the brace matching the `{` at `open`
/// (which must point at a `{`). Returns the last token index when
/// unbalanced (linter keeps going on broken input).
fn matching_brace(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.kind != Kind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

/// Scans for the end of the attribute opening at `#` (idx points at the
/// `#`): returns the index of its closing `]`.
fn attr_end(code: &[Token], hash: usize) -> usize {
    let mut i = hash + 1;
    if code.get(i).is_some_and(|t| t.text == "!") {
        i += 1;
    }
    if code.get(i).is_none_or(|t| t.text != "[") {
        return hash;
    }
    let mut depth = 0usize;
    while i < code.len() {
        match code[i].text.as_str() {
            "[" if code[i].kind == Kind::Punct => depth += 1,
            "]" if code[i].kind == Kind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Does the attribute spanning `[hash, end]` contain a `cfg(...)` whose
/// argument list mentions the bare `test` flag?
fn attr_is_cfg_test(code: &[Token], hash: usize, end: usize) -> bool {
    let mut saw_cfg = false;
    let last = end.min(code.len().saturating_sub(1));
    for t in &code[hash..=last] {
        if t.kind == Kind::Ident {
            if t.text == "cfg" {
                saw_cfg = true;
            } else if t.text == "test" && saw_cfg {
                return true;
            }
        }
    }
    false
}

/// Computes the inclusive code-token ranges covered by `#[cfg(test)]`
/// attributes: from the `#` through the target item's closing `}` (or
/// its `;` for braceless items).
fn find_test_ranges(code: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].kind == Kind::Punct && code[i].text == "#") {
            i += 1;
            continue;
        }
        let end = attr_end(code, i);
        if end == i || !attr_is_cfg_test(code, i, end) {
            i += 1;
            continue;
        }
        // skip any further attributes stacked on the same item
        let mut j = end + 1;
        while code
            .get(j)
            .is_some_and(|t| t.text == "#" && t.kind == Kind::Punct)
        {
            let e = attr_end(code, j);
            if e == j {
                break;
            }
            j = e + 1;
        }
        // the target item: everything to the first top-level `{` … its
        // matching `}`, or to a `;` for braceless items (`use`, `type`)
        let mut k = j;
        let mut close = None;
        while k < code.len() {
            let t = &code[k];
            if t.kind == Kind::Punct && t.text == "{" {
                close = Some(matching_brace(code, k));
                break;
            }
            if t.kind == Kind::Punct && t.text == ";" {
                close = Some(k);
                break;
            }
            k += 1;
        }
        let close = close.unwrap_or(code.len().saturating_sub(1));
        out.push((i, close));
        i = close + 1;
    }
    out
}

/// Finds fn items: a `fn` keyword followed by an identifier (type-level
/// `fn(...)` pointers have `(` next and are skipped).
fn find_fns(code: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = &code[i];
        if !(t.kind == Kind::Ident && t.text == "fn") {
            continue;
        }
        let Some(name) = code.get(i + 1) else {
            continue;
        };
        if name.kind != Kind::Ident {
            continue;
        }
        // visibility: walk back over fn qualifiers and `pub(...)` groups
        let mut is_pub = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let p = &code[j];
            match (p.kind, p.text.as_str()) {
                (Kind::Ident, "const" | "async" | "unsafe" | "extern") => continue,
                (Kind::Str, _) => continue, // extern "C"
                (Kind::Punct, ")") => {
                    // a `pub(crate)`-style group: scan back to its `(`
                    // and keep walking
                    let mut depth = 1usize;
                    while j > 0 && depth > 0 {
                        j -= 1;
                        match code[j].text.as_str() {
                            ")" => depth += 1,
                            "(" => depth -= 1,
                            _ => {}
                        }
                    }
                    continue;
                }
                (Kind::Ident, "pub") => {
                    is_pub = true;
                    break;
                }
                _ => break,
            }
        }
        // signature: up to the body `{` or a `;`
        let mut k = i;
        let mut body = None;
        let mut sig_end = code.len();
        while k < code.len() {
            let t = &code[k];
            if t.kind == Kind::Punct && t.text == "{" {
                sig_end = k;
                let close = matching_brace(code, k);
                body = Some((k + 1, close));
                break;
            }
            if t.kind == Kind::Punct && t.text == ";" {
                sig_end = k;
                break;
            }
            k += 1;
        }
        out.push(FnItem {
            line: t.line,
            is_pub,
            sig: (i, sig_end),
            body,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_is_scoped_to_the_mod_block() {
        let src = "\
fn before() {}
#[cfg(test)]
mod tests {
    fn inside() {}
}
fn after() {}
";
        let m = FileModel::new(src);
        let idx_of = |name: &str| {
            m.code
                .iter()
                .position(|t| t.text == name)
                .expect("token present")
        };
        assert!(!m.in_test(idx_of("before")));
        assert!(m.in_test(idx_of("inside")));
        // the regression the block tracker fixes: code AFTER the test
        // module is NOT test code
        assert!(!m.in_test(idx_of("after")));
    }

    #[test]
    fn cfg_test_on_a_single_fn() {
        let src = "#[cfg(test)]\nfn helper() { body(); }\nfn real() {}\n";
        let m = FileModel::new(src);
        let idx_of = |name: &str| m.code.iter().position(|t| t.text == name).unwrap();
        assert!(m.in_test(idx_of("helper")));
        assert!(!m.in_test(idx_of("real")));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\nfn g() {}\n";
        let m = FileModel::new(src);
        let idx_of = |name: &str| m.code.iter().position(|t| t.text == name).unwrap();
        assert!(m.in_test(idx_of("f")));
        assert!(!m.in_test(idx_of("g")));
    }

    #[test]
    fn stacked_attributes_reach_the_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn f() {} }\nfn g() {}\n";
        let m = FileModel::new(src);
        let idx_of = |name: &str| m.code.iter().position(|t| t.text == name).unwrap();
        assert!(m.in_test(idx_of("f")));
        assert!(!m.in_test(idx_of("g")));
    }

    #[test]
    fn fn_items_track_visibility_and_body() {
        let src = "\
pub fn a(x: usize) -> usize { x + 1 }
fn b() {}
pub(crate) fn c() { loop {} }
";
        let m = FileModel::new(src);
        assert_eq!(m.fns.len(), 3);
        assert!(m.fns[0].is_pub);
        assert!(!m.fns[1].is_pub);
        assert!(m.fns[2].is_pub);
        let (s, e) = m.fns[0].body.unwrap();
        let body: Vec<&str> = m.code[s..e].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(body, vec!["x", "+", "1"]);
    }

    #[test]
    fn marker_lookup_same_line_and_block_above() {
        let src = "\
// lint: audited here
// second comment line
let x = i as u32;
let y = j as u32; // lint: trailing
let z = k as u32;
";
        let m = FileModel::new(src);
        assert!(m.justified(3));
        assert!(m.justified(4));
        assert!(!m.justified(5));
    }

    #[test]
    fn marker_inside_string_does_not_justify() {
        let src = "let s = \"// lint: not a comment\";\nlet x = i as u32;\n";
        let m = FileModel::new(src);
        assert!(!m.justified(1));
        assert!(!m.justified(2));
    }

    #[test]
    fn trait_method_declaration_has_no_body() {
        let src = "trait T { fn m(&self) -> usize; }\n";
        let m = FileModel::new(src);
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].body.is_none());
    }
}
