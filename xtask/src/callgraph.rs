//! The workspace-wide call graph behind `cargo xtask audit`.
//!
//! Nodes are the function definitions [`crate::parse`] extracted from
//! every workspace file, keyed `crate::module::[Type::]fn`. Edges come
//! from best-effort **name + arity** resolution of the call expressions
//! in each body:
//!
//! - [`CallStyle::Free`] `f(…)` resolves against free functions (no
//!   `impl` type, no `self` receiver) with the same name and arity;
//! - [`CallStyle::Method`] `recv.m(…)` resolves against associated
//!   functions taking `self` with the same name and arity (the
//!   receiver's type is unknown at token level, so *every* workspace
//!   type's matching method gets an edge — a sound over-approximation);
//! - [`CallStyle::Qualified`] `Q::f(…)` resolves against associated
//!   functions of type `Q` or free functions in a module named `Q`
//!   (`Self::f` uses the caller's own `impl` type). When no candidate
//!   matches the arity exactly, any `Q`-qualified name match still gets
//!   an edge — qualified calls carry enough context that keeping the
//!   edge beats dropping it;
//! - [`CallStyle::Macro`] and anything with zero candidates land in the
//!   explicit **unresolved** bucket. Unresolved is reported, never
//!   silently dropped: the audit can say "best-effort, N calls opaque",
//!   it must never say "panic-free" because resolution failed.
//!
//! Trait-object dispatch (`dyn Trait` receivers) is indistinguishable
//! from inherent method calls at token level; it resolves against every
//! workspace implementor of the method name — over-approximate, or
//! unresolved when no implementor is in the workspace. Both outcomes
//! are conservative for reachability.
//!
//! Test functions (`#[cfg(test)]` or under `tests/`) keep their nodes
//! but are excluded as resolution *candidates*: a production call must
//! never resolve into a test helper that happens to share a name.

use std::collections::{BTreeMap, VecDeque};

use crate::parse::{Call, CallStyle, FnDef, ParsedFile};

/// A call the resolver could not attach to any workspace definition.
#[derive(Debug, Clone)]
pub struct Unresolved {
    /// Index of the calling function in [`CallGraph::defs`].
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// Syntactic shape of the call.
    pub style: CallStyle,
    /// 1-based line of the call site.
    pub line: usize,
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// Every function definition, in file order.
    pub defs: Vec<FnDef>,
    /// Resolved callee indices per definition (parallel to `defs`),
    /// deduplicated.
    edges: Vec<Vec<usize>>,
    /// Calls with zero workspace candidates (plus all macros).
    pub unresolved: Vec<Unresolved>,
}

impl CallGraph {
    /// Builds the graph from every parsed file.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let defs: Vec<FnDef> = files.iter().flat_map(|f| f.fns.iter().cloned()).collect();
        // name → candidate def indices (production code only)
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, d) in defs.iter().enumerate() {
            if !d.is_test && d.has_body {
                by_name.entry(d.name.as_str()).or_default().push(i);
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
        let mut unresolved = Vec::new();
        for (i, d) in defs.iter().enumerate() {
            for c in &d.calls {
                match resolve(&defs, &by_name, d, c) {
                    Resolution::Defs(targets) => edges[i].extend(targets),
                    Resolution::Unresolved => unresolved.push(Unresolved {
                        caller: i,
                        name: c.name.clone(),
                        style: c.style,
                        line: c.line,
                    }),
                    Resolution::External => {}
                }
            }
            edges[i].sort_unstable();
            edges[i].dedup();
        }
        CallGraph {
            defs,
            edges,
            unresolved,
        }
    }

    /// Resolved callees of definition `i`.
    pub fn callees(&self, i: usize) -> &[usize] {
        self.edges.get(i).map_or(&[], Vec::as_slice)
    }

    /// Definitions matching an entry-point spec: a full key
    /// (`nwhy_core::builder::SLineBuilder::edges`) or any unambiguous
    /// suffix starting at a path segment (`SLineBuilder::edges`,
    /// `cmd_stats`). Test definitions never match.
    pub fn find(&self, spec: &str) -> Vec<usize> {
        let suffix = format!("::{spec}");
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                !d.is_test && d.has_body && (d.key == spec || d.key.ends_with(&suffix))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Every definition reachable from `roots` (inclusive), as a
    /// membership vector parallel to [`CallGraph::defs`].
    pub fn reachable(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.defs.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if r < seen.len() && !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in self.callees(i) {
                if !seen[j] {
                    seen[j] = true;
                    queue.push_back(j);
                }
            }
        }
        seen
    }

    /// Shortest call path (as def indices, root first) from any of
    /// `roots` to the first definition satisfying `target`, by BFS.
    pub fn shortest_path(
        &self,
        roots: &[usize],
        target: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.defs.len()];
        let mut seen = vec![false; self.defs.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if r < seen.len() && !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            if target(i) {
                let mut path = vec![i];
                let mut cur = i;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &j in self.callees(i) {
                if !seen[j] {
                    seen[j] = true;
                    parent[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        None
    }
}

enum Resolution {
    Defs(Vec<usize>),
    /// Zero candidates — reported in the unresolved bucket.
    Unresolved,
    /// Known-external call (std/vendored) we deliberately do not chase:
    /// currently only macros *could* go here, but macros stay
    /// unresolved so the bucket reports them; nothing uses this yet
    /// except the `Self`-without-impl corner.
    External,
}

fn resolve(
    defs: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnDef,
    c: &Call,
) -> Resolution {
    if c.style == CallStyle::Macro {
        return Resolution::Unresolved;
    }
    let Some(cands) = by_name.get(c.name.as_str()) else {
        return Resolution::Unresolved;
    };
    let arity = c.arity;
    let hits: Vec<usize> = match c.style {
        CallStyle::Free => cands
            .iter()
            .copied()
            .filter(|&i| {
                let d = &defs[i];
                d.impl_type.is_none() && !d.has_self && Some(d.arity) == arity
            })
            .collect(),
        CallStyle::Method => cands
            .iter()
            .copied()
            .filter(|&i| {
                let d = &defs[i];
                d.has_self && Some(d.arity) == arity
            })
            .collect(),
        CallStyle::Qualified => {
            let q = match c.qualifier.as_deref() {
                Some("Self") => match caller.impl_type.as_deref() {
                    Some(t) => t.to_string(),
                    None => return Resolution::External,
                },
                Some(q) => q.to_string(),
                None => return Resolution::Unresolved,
            };
            let qualified: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    let d = &defs[i];
                    d.impl_type.as_deref() == Some(q.as_str())
                        || d.key.ends_with(&format!("::{q}::{}", c.name))
                })
                .collect();
            let exact: Vec<usize> = qualified
                .iter()
                .copied()
                .filter(|&i| Some(defs[i].arity) == arity)
                .collect();
            if exact.is_empty() {
                qualified
            } else {
                exact
            }
        }
        CallStyle::Macro => unreachable!("handled above"),
    };
    if hits.is_empty() {
        Resolution::Unresolved
    } else {
        Resolution::Defs(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use crate::parse::parse_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(path, src)| parse_file(path, &FileModel::new(src)))
            .collect();
        CallGraph::build(&parsed)
    }

    fn idx(g: &CallGraph, key_suffix: &str) -> usize {
        let hits = g.find(key_suffix);
        assert_eq!(hits.len(), 1, "ambiguous or missing: {key_suffix}");
        hits[0]
    }

    #[test]
    fn free_call_resolves_by_name_and_arity() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn top() { mid(1); }\nfn mid(_x: u32) { leaf(); }\nfn leaf() {}\n",
        )]);
        let top = idx(&g, "a::top");
        let mid = idx(&g, "a::mid");
        let leaf = idx(&g, "a::leaf");
        assert_eq!(g.callees(top), &[mid]);
        assert_eq!(g.callees(mid), &[leaf]);
    }

    #[test]
    fn arity_mismatch_is_unresolved_not_a_false_edge() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn top() { mid(1, 2); }\nfn mid(_x: u32) {}\n",
        )]);
        let top = idx(&g, "a::top");
        assert!(g.callees(top).is_empty());
        assert!(g
            .unresolved
            .iter()
            .any(|u| u.caller == top && u.name == "mid"));
    }

    #[test]
    fn method_call_reaches_every_matching_impl() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "\
struct A;
struct B;
impl A { fn go(&self) {} }
impl B { fn go(&self) {} }
fn drive(a: &A) { a.go(); }
",
        )]);
        let drive = idx(&g, "a::drive");
        // receiver type is unknown at token level: both `go`s get edges
        assert_eq!(g.callees(drive).len(), 2);
    }

    #[test]
    fn qualified_call_filters_by_type() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "\
struct A;
struct B;
impl A { fn make() -> A { A } }
impl B { fn make() -> B { B } }
fn drive() { let _ = A::make(); }
",
        )]);
        let drive = idx(&g, "a::drive");
        let a_make = idx(&g, "A::make");
        assert_eq!(g.callees(drive), &[a_make]);
    }

    #[test]
    fn module_qualified_free_fn_resolves() {
        let g = graph(&[
            (
                "crates/core/src/ids.rs",
                "pub fn from_usize(_x: usize) {}\n",
            ),
            (
                "crates/core/src/a.rs",
                "fn drive(n: usize) { ids::from_usize(n); }\n",
            ),
        ]);
        let drive = idx(&g, "a::drive");
        let target = idx(&g, "ids::from_usize");
        assert_eq!(g.callees(drive), &[target]);
    }

    #[test]
    fn self_qualified_uses_the_callers_impl_type() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "\
struct A;
impl A {
    fn helper() {}
    fn go(&self) { Self::helper(); }
}
",
        )]);
        let go = idx(&g, "A::go");
        let helper = idx(&g, "A::helper");
        assert_eq!(g.callees(go), &[helper]);
    }

    #[test]
    fn trait_object_method_with_no_impl_is_unresolved() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn drive(h: &dyn Handler) { h.handle(1); }\n",
        )]);
        let drive = idx(&g, "a::drive");
        assert!(g.callees(drive).is_empty());
        assert!(
            g.unresolved
                .iter()
                .any(|u| u.caller == drive && u.name == "handle"),
            "dyn dispatch must land in the unresolved bucket, never vanish"
        );
    }

    #[test]
    fn macros_are_opaque_unresolved_calls() {
        let g = graph(&[("crates/core/src/a.rs", "fn f() { seventeen!(a, b); }\n")]);
        let f = idx(&g, "a::f");
        assert!(g
            .unresolved
            .iter()
            .any(|u| u.caller == f && u.style == CallStyle::Macro));
    }

    #[test]
    fn test_fns_are_never_candidates() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "\
fn drive() { helper(); }
#[cfg(test)]
mod tests {
    fn helper() {}
}
",
        )]);
        let drive = idx(&g, "a::drive");
        assert!(g.callees(drive).is_empty());
        assert!(g.unresolved.iter().any(|u| u.name == "helper"));
    }

    #[test]
    fn reachability_is_transitive_and_inclusive() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}\n",
        )]);
        let r = g.reachable(&[idx(&g, "a::a")]);
        assert!(r[idx(&g, "a::a")]);
        assert!(r[idx(&g, "a::b")]);
        assert!(r[idx(&g, "a::c")]);
        assert!(!r[idx(&g, "a::island")]);
    }

    #[test]
    fn shortest_path_is_shortest() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "\
fn a() { b(); shortcut(); }
fn b() { c(); }
fn c() { target(); }
fn shortcut() { target(); }
fn target() {}
",
        )]);
        let a = idx(&g, "a::a");
        let t = idx(&g, "a::target");
        let path = g.shortest_path(&[a], |i| i == t).unwrap();
        assert_eq!(path.len(), 3); // a → shortcut → target
        assert_eq!(path[0], a);
        assert_eq!(*path.last().unwrap(), t);
    }

    #[test]
    fn find_matches_full_key_and_suffix() {
        let g = graph(&[(
            "crates/core/src/builder.rs",
            "struct SLineBuilder;\nimpl SLineBuilder { pub fn edges(&self) {} }\n",
        )]);
        assert_eq!(g.find("SLineBuilder::edges").len(), 1);
        assert_eq!(g.find("nwhy_core::builder::SLineBuilder::edges").len(), 1);
        assert_eq!(g.find("edges").len(), 1);
        assert!(g.find("missing_fn").is_empty());
    }
}
