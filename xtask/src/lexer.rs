//! A hand-rolled, dependency-free Rust lexer for the repo lint engine.
//!
//! The PR 5 lint pass was line-lexical: it could not see through string
//! literals, doc comments, or multi-line expressions, which produced
//! known false-positive classes (`unsafe` quoted in a doc comment,
//! ` as u32` inside a string). This lexer tokenizes real Rust surface
//! syntax far enough for the rules in [`crate::lint`] to match on
//! *tokens*:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), kept as [`Kind::Comment`] tokens so the
//!   `// lint:` / `// SAFETY:` audit markers stay visible;
//! - string literals: normal (`"…"` with escapes), raw (`r"…"`,
//!   `r#"…"#` with any number of hashes), byte (`b"…"`, `br#"…"#`) and
//!   C variants (`c"…"`, `cr#"…"#`);
//! - char literals vs lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`) and byte chars (`b'x'`);
//! - identifiers (including raw `r#ident`), numbers (ints, floats,
//!   suffixes — without swallowing the `..` of a range), and
//!   single-char punctuation.
//!
//! Every token carries its 1-based line number; multi-line tokens
//! (block comments, multi-line strings) are anchored at their *start*
//! line. The lexer never fails: unterminated literals are closed at
//! end of input, which is the right behavior for a linter that must
//! keep scanning whatever rustc would reject anyway.

/// What a token is, at the granularity the lint rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (rules distinguish by text).
    Ident,
    /// `'lifetime` (including `'static`, `'_`).
    Lifetime,
    /// Integer or float literal, with suffix if any.
    Num,
    /// Any string literal (normal/raw/byte/C), text excludes quotes.
    Str,
    /// Char or byte-char literal.
    Char,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// Line or block comment, text includes the delimiters.
    Comment,
}

/// One lexed token: kind, verbatim text, and the 1-based line where it
/// starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: Kind,
    /// The token's text. For [`Kind::Str`] the quotes/prefix/hashes are
    /// stripped (rules match on *content*); for everything else the
    /// text is verbatim.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token {
    fn new(kind: Kind, text: impl Into<String>, line: usize) -> Self {
        Token {
            kind,
            text: text.into(),
            line,
        }
    }
}

/// The 2021-edition keyword set (strict + reserved), used by rules that
/// must tell an expression-position identifier from a keyword (e.g. the
/// slice-indexing check: `x[i]` indexes, `return [i]` builds an array).
pub fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn text_from(&self, start: usize) -> &'a str {
        // the lexer only splits at ASCII boundaries, so this slice is
        // valid UTF-8 whenever the input was
        std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("")
    }

    /// Consumes a line comment starting at `//`.
    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = self.text_from(start).to_string();
        self.out.push(Token::new(Kind::Comment, text, line));
    }

    /// Consumes a block comment starting at `/*`, handling nesting.
    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: close at EOF
            }
        }
        let text = self.text_from(start).to_string();
        self.out.push(Token::new(Kind::Comment, text, line));
    }

    /// Consumes a normal (escaped) string body after the opening quote
    /// was bumped; `quote` is `"` or `'` (for char literals the caller
    /// handles length semantics — we just find the closing quote).
    fn escaped_body(&mut self, quote: u8) -> String {
        let start = self.pos;
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    self.bump(); // the escaped char (or '{' of \u{…})
                }
                Some(b) if b == quote => break,
                Some(_) => {
                    self.bump();
                }
            }
        }
        let text = self.text_from(start).to_string();
        self.bump(); // closing quote (no-op at EOF)
        text
    }

    /// Consumes a raw string after the `r`/`br`/`cr` prefix: counts the
    /// hashes, expects `"`, scans to `"` followed by the same number of
    /// hashes.
    fn raw_string(&mut self, line: usize) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            self.bump();
            hashes += 1;
        }
        if self.peek(0) != Some(b'"') {
            // `r#ident` handed to us by mistake — shouldn't happen, the
            // caller peeks; treat the hashes as punctuation and return
            for _ in 0..hashes {
                self.out.push(Token::new(Kind::Punct, "#", line));
            }
            return;
        }
        self.bump(); // opening quote
        let start = self.pos;
        let end;
        loop {
            match self.peek(0) {
                None => {
                    end = self.pos;
                    break;
                }
                Some(b'"') => {
                    let close_at = self.pos;
                    self.bump();
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        end = close_at;
                        break;
                    }
                    // a quote with too few hashes is part of the body
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..end])
            .unwrap_or("")
            .to_string();
        self.out.push(Token::new(Kind::Str, text, line));
    }

    /// `'` was seen: lifetime (`'a`) or char literal (`'a'`, `'\n'`).
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // '
        match self.peek(0) {
            Some(b) if is_ident_start(b) => {
                // scan the ident run; a trailing `'` makes it a char
                // literal (`'a'`), otherwise it is a lifetime (`'a`)
                let start = self.pos;
                let mut end = self.pos;
                while end < self.src.len() && is_ident_continue(self.src[end]) {
                    end += 1;
                }
                if self.src.get(end) == Some(&b'\'') {
                    while self.pos < end {
                        self.bump();
                    }
                    let text = self.text_from(start).to_string();
                    self.bump(); // closing '
                    self.out.push(Token::new(Kind::Char, text, line));
                } else {
                    while self.pos < end {
                        self.bump();
                    }
                    let text = format!("'{}", self.text_from(start));
                    self.out.push(Token::new(Kind::Lifetime, text, line));
                }
            }
            Some(b'\'') => {
                // `''` — empty char literal (invalid Rust, but close it)
                self.bump();
                self.out.push(Token::new(Kind::Char, "", line));
            }
            Some(_) => {
                // escaped or punctuation char literal: `'\n'`, `'+'`
                let text = self.escaped_body(b'\'');
                self.out.push(Token::new(Kind::Char, text, line));
            }
            None => self.out.push(Token::new(Kind::Punct, "'", line)),
        }
    }

    /// Number literal; stops before `..` so ranges lex as `0` `.` `.`.
    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // leading digit
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                // exponent sign: `1e+3` / `2.5E-7`
                self.bump();
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.bump();
                }
            } else if b == b'.' {
                // a second dot means a range (`0..n`), not a float
                if self.peek(1) == Some(b'.') {
                    break;
                }
                // `1.max(2)` — method call on a literal, not a float
                if self.peek(1).is_some_and(is_ident_start) {
                    break;
                }
                self.bump();
            } else {
                break;
            }
        }
        let text = self.text_from(start).to_string();
        self.out.push(Token::new(Kind::Num, text, line));
    }

    fn ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = self.text_from(start).to_string();
        self.out.push(Token::new(Kind::Ident, text, line));
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    let line = self.line;
                    self.bump();
                    let text = self.escaped_body(b'"');
                    self.out.push(Token::new(Kind::Str, text, line));
                }
                b'\'' => self.quote(),
                b'r' | b'b' | b'c' => {
                    let line = self.line;
                    // string prefixes: r" r#" b" b' br" br#" c" cr#"
                    let (p1, p2) = (self.peek(1), self.peek(2));
                    match (b, p1, p2) {
                        (b'r', Some(b'"'), _) => {
                            self.bump();
                            self.raw_string(line);
                        }
                        (b'r', Some(b'#'), Some(n)) if n == b'"' || n == b'#' => {
                            self.bump();
                            self.raw_string(line);
                        }
                        (b'r', Some(b'#'), Some(n)) if is_ident_start(n) => {
                            // raw identifier r#ident
                            self.bump();
                            self.bump();
                            self.ident();
                        }
                        (b'b' | b'c', Some(b'"'), _) => {
                            self.bump();
                            self.bump();
                            let text = self.escaped_body(b'"');
                            self.out.push(Token::new(Kind::Str, text, line));
                        }
                        (b'b', Some(b'\''), _) => {
                            self.bump();
                            self.bump();
                            let text = self.escaped_body(b'\'');
                            self.out.push(Token::new(Kind::Char, text, line));
                        }
                        (b'b' | b'c', Some(b'r'), Some(n)) if n == b'"' || n == b'#' => {
                            self.bump();
                            self.bump();
                            self.raw_string(line);
                        }
                        _ => self.ident(),
                    }
                }
                b if is_ident_start(b) => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.out
                        .push(Token::new(Kind::Punct, (b as char).to_string(), line));
                }
            }
        }
        self.out
    }
}

/// Tokenizes `src`. Comments are kept in-stream (callers that only want
/// code tokens filter on [`Kind::Comment`]).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != Kind::Comment)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("pub fn f(x: u32) -> u64 { x as u64 }");
        assert!(toks.contains(&(Kind::Ident, "pub".into())));
        assert!(toks.contains(&(Kind::Ident, "u32".into())));
        assert!(toks.contains(&(Kind::Punct, "{".into())));
        assert!(is_keyword("unsafe") && !is_keyword("unsafe_code"));
    }

    #[test]
    fn string_contents_are_isolated() {
        // the panic! and unsafe inside the string must be Str text, not
        // Ident tokens — this is the false-positive class the lexical
        // pass could not avoid
        let texts = code_texts(r#"let s = "panic! unsafe as u32";"#);
        assert_eq!(texts, vec!["let", "s", "=", "panic! unsafe as u32", ";"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let s = r#"quote " inside"#; let t = r##"x"#y"##;"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec!["quote \" inside", "x\"#y"]);
    }

    #[test]
    fn raw_string_without_hashes_and_byte_strings() {
        let toks =
            kinds(r##"let a = r"no \ escapes"; let b = b"bytes"; let c = br#"raw bytes"#;"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec!["no \\ escapes", "bytes", "raw bytes"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks,
            vec![
                (Kind::Ident, "a".into()),
                (
                    Kind::Comment,
                    "/* outer /* inner */ still comment */".into()
                ),
                (Kind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn doc_comments_are_comments() {
        // `unsafe` in a doc comment must not produce an Ident token
        let texts = code_texts("/// this mentions unsafe code\nfn f() {}\n");
        assert_eq!(texts, vec!["fn", "f", "(", ")", "{", "}"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(toks.contains(&(Kind::Lifetime, "'a".into())));
        assert!(toks.contains(&(Kind::Char, "x".into())));
        assert!(toks.contains(&(Kind::Char, "\\'".into())));
    }

    #[test]
    fn unicode_escape_char_literal() {
        let toks = kinds(r"let c = '\u{1F600}';");
        assert!(toks.iter().any(|(k, _)| *k == Kind::Char));
        // the closing `;` must still arrive as punctuation
        assert_eq!(toks.last().unwrap(), &(Kind::Punct, ";".into()));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let texts = code_texts("for i in 0..n { a[i] = 1.5e-3; }");
        assert!(texts.contains(&"0".to_string()));
        assert!(texts.contains(&"1.5e-3".to_string()));
        // the two range dots survive as puncts
        assert_eq!(texts.iter().filter(|t| *t == ".").count(), 2);
    }

    #[test]
    fn method_call_on_int_literal() {
        let texts = code_texts("let x = 1.max(2);");
        assert!(texts.contains(&"1".to_string()));
        assert!(texts.contains(&"max".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb\n\"multi\nline\"\nc";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text.contains(text)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("two"), 2); // comment anchored at its start
        assert_eq!(toks.iter().find(|t| t.text == "b").unwrap().line, 4);
        assert_eq!(find("multi"), 5);
        assert_eq!(toks.iter().find(|t| t.text == "c").unwrap().line, 7);
    }

    #[test]
    fn raw_identifiers() {
        let texts = code_texts("let r#type = 1;");
        assert!(texts.contains(&"type".to_string()));
    }

    #[test]
    fn unterminated_literals_close_at_eof() {
        // the linter must keep going on code rustc would reject
        assert!(!lex("let s = \"open").is_empty());
        assert!(!lex("/* open").is_empty());
        assert!(!lex("let s = r#\"open").is_empty());
    }

    #[test]
    fn shebang_like_and_attributes() {
        let texts = code_texts("#![forbid(unsafe_code)]\n#[allow(dead_code)]\nfn f() {}");
        assert!(texts.contains(&"#".to_string()));
        assert!(texts.contains(&"unsafe_code".to_string()));
        assert!(texts.contains(&"allow".to_string()));
    }
}
