//! `cargo xtask` entry point. Two tasks:
//!
//! ```text
//! cargo xtask lint [--json | --sarif] [--update-baseline] [ROOT]
//! cargo xtask audit [--json | --sarif] [--update-baseline] [ROOT]
//! cargo xtask bench-diff <OLD.json> <NEW.json> [--threshold PCT]
//! cargo xtask check-prom <FILE|-> [--require NAME]...
//! ```
//!
//! `lint` runs the token-aware repo lint pass (see [`xtask::lint`])
//! over `ROOT` (default: the workspace root) and exits non-zero on any
//! finding. `--json` emits a findings array, `--sarif` a SARIF 2.1.0
//! log for GitHub code scanning. `--update-baseline` rewrites
//! `xtask/panic_baseline.txt` from the tree's current `panic-path`
//! counts (use after burning sites down — the ratchet only moves one
//! way).
//!
//! `audit` runs the call-graph analysis families (see [`xtask::audit`]):
//! transitive panic-reachability from `xtask/entrypoints.txt` against
//! the `xtask/reach_baseline.txt` ratchet, the hot-loop allocation
//! rule, and the memory-ordering policy check. `--json` emits the full
//! machine-readable report, `--sarif` the findings as SARIF 2.1.0, and
//! `--update-baseline` rewrites `xtask/reach_baseline.txt` from the
//! current reach counts.
//!
//! `bench-diff` is the CI perf gate (see [`xtask::bench_diff`]): it
//! compares two `BENCH_*.json` counter files and exits non-zero when
//! any kernel counter grew more than the threshold (default 15%, also
//! settable via `NWHY_BENCH_DIFF_THRESHOLD`).
//!
//! `check-prom` validates a Prometheus text exposition (see
//! [`xtask::check_prom`]) read from FILE (or stdin with `-`); each
//! `--require NEEDLE` additionally demands a sample line containing
//! NEEDLE (a metric name or a label fragment like `quantile="0.99"`).
//! CI pipes `nwhy-cli … --metrics=prom --metrics-out` output through it.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let mut json = false;
            let mut sarif = false;
            let mut update_baseline = false;
            let mut root: Option<PathBuf> = None;
            for a in args {
                match a.as_str() {
                    "--json" => json = true,
                    "--sarif" => sarif = true,
                    "--update-baseline" => update_baseline = true,
                    _ => root = Some(PathBuf::from(a)),
                }
            }
            let root = root.unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .parent()
                    .expect("xtask sits one level under the workspace root")
                    .to_path_buf()
            });
            if update_baseline {
                let content = xtask::lint::regenerate_baseline(&root);
                let path = root.join(xtask::lint::PANIC_BASELINE);
                if let Err(e) = std::fs::write(&path, &content) {
                    eprintln!("xtask lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!("xtask lint: baseline rewritten at {}", path.display());
            }
            let report = xtask::lint::lint_tree_report(&root);
            let findings = &report.findings;
            if sarif {
                println!("{}", xtask::sarif::to_sarif(findings));
            } else if json {
                println!("{}", xtask::lint::to_json(findings));
            } else {
                for f in findings {
                    println!("{f}");
                }
                let rules: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
                eprintln!(
                    "xtask lint: {} finding(s) across {} rule(s)",
                    findings.len(),
                    rules.len()
                );
                eprintln!(
                    "xtask lint: panic-path debt: {} panic site(s), {} index site(s) \
                     ({} baselined)",
                    report.baseline.panic_total,
                    report.baseline.index_total,
                    report.baseline.suppressed
                );
                if !report.baseline.shrinkable.is_empty() {
                    eprintln!(
                        "xtask lint: {} baseline entr(ies) can ratchet down — run \
                         `cargo xtask lint --update-baseline`:",
                        report.baseline.shrinkable.len()
                    );
                    for s in &report.baseline.shrinkable {
                        eprintln!("  {s}");
                    }
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("audit") => {
            let mut json = false;
            let mut sarif = false;
            let mut update_baseline = false;
            let mut root: Option<PathBuf> = None;
            for a in args {
                match a.as_str() {
                    "--json" => json = true,
                    "--sarif" => sarif = true,
                    "--update-baseline" => update_baseline = true,
                    _ => root = Some(PathBuf::from(a)),
                }
            }
            let root = root.unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .parent()
                    .expect("xtask sits one level under the workspace root")
                    .to_path_buf()
            });
            let report = xtask::audit::audit_tree(&root);
            if update_baseline {
                let content = xtask::audit::format_reach_baseline(&report.entries);
                let path = root.join(xtask::audit::REACH_BASELINE);
                if let Err(e) = std::fs::write(&path, &content) {
                    eprintln!("xtask audit: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!(
                    "xtask audit: reach baseline rewritten at {}",
                    path.display()
                );
            }
            if sarif {
                println!("{}", xtask::sarif::to_sarif(&report.findings));
            } else if json {
                println!("{}", xtask::audit::to_json(&report));
            } else {
                for f in &report.findings {
                    println!("{f}");
                }
                for e in &report.entries {
                    let verdict = if e.resolved.is_empty() {
                        "UNRESOLVED".to_string()
                    } else if e.sites <= e.baseline.unwrap_or(0) {
                        format!("ok ({} ≤ {})", e.sites, e.baseline.unwrap_or(0))
                    } else {
                        format!("GREW ({} > {})", e.sites, e.baseline.unwrap_or(0))
                    };
                    eprintln!("  {} — {verdict}", e.spec);
                    if e.sites > e.baseline.unwrap_or(0) {
                        if let Some(w) = &e.witness {
                            eprintln!("    witness: {w}");
                        }
                    }
                }
                eprintln!(
                    "xtask audit: {} finding(s); {} entry point(s), {} fn(s) in the \
                     call graph ({} hot), {} unresolved call(s)",
                    report.findings.len(),
                    report.entries.len(),
                    report.total_defs,
                    report.hot_fns.len(),
                    report.unresolved_calls
                );
                if !report.shrinkable.is_empty() {
                    eprintln!(
                        "xtask audit: {} reach entr(ies) can ratchet down — run \
                         `cargo xtask audit --update-baseline`:",
                        report.shrinkable.len()
                    );
                    for s in &report.shrinkable {
                        eprintln!("  {s}");
                    }
                }
            }
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("bench-diff") => {
            let mut paths: Vec<String> = Vec::new();
            let mut threshold: Option<f64> = None;
            let mut args = args.peekable();
            while let Some(a) = args.next() {
                if a == "--threshold" {
                    threshold = args.next().and_then(|v| v.parse().ok());
                    if threshold.is_none() {
                        eprintln!("bench-diff: --threshold needs a number");
                        return ExitCode::from(2);
                    }
                } else if let Some(v) = a.strip_prefix("--threshold=") {
                    match v.parse() {
                        Ok(t) => threshold = Some(t),
                        Err(_) => {
                            eprintln!("bench-diff: --threshold needs a number");
                            return ExitCode::from(2);
                        }
                    }
                } else {
                    paths.push(a);
                }
            }
            let [old, new] = paths.as_slice() else {
                eprintln!("usage: cargo xtask bench-diff <OLD.json> <NEW.json> [--threshold PCT]");
                return ExitCode::from(2);
            };
            let threshold = xtask::bench_diff::resolve_threshold(threshold);
            let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
            let report = read(old)
                .and_then(|o| read(new).map(|n| (o, n)))
                .and_then(|(o, n)| xtask::bench_diff::diff(&o, &n, threshold));
            match report {
                Err(e) => {
                    eprintln!("bench-diff: {e}");
                    ExitCode::from(2)
                }
                Ok(r) => {
                    for v in &r.violations {
                        println!("REGRESSION {v}");
                    }
                    for k in &r.added_rows {
                        println!("new row (not gated): {k}");
                    }
                    eprintln!(
                        "bench-diff: {} counter(s) compared at +{threshold}% threshold, \
                         {} regression(s)",
                        r.compared,
                        r.violations.len()
                    );
                    if r.passed() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
            }
        }
        Some("check-prom") => {
            let mut path: Option<String> = None;
            let mut requires: Vec<String> = Vec::new();
            let mut args = args.peekable();
            while let Some(a) = args.next() {
                if a == "--require" {
                    match args.next() {
                        Some(name) => requires.push(name),
                        None => {
                            eprintln!("check-prom: --require needs a metric name");
                            return ExitCode::from(2);
                        }
                    }
                } else if let Some(name) = a.strip_prefix("--require=") {
                    requires.push(name.to_string());
                } else {
                    path = Some(a);
                }
            }
            let Some(path) = path else {
                eprintln!("usage: cargo xtask check-prom <FILE|-> [--require NAME]...");
                return ExitCode::from(2);
            };
            let input = if path == "-" {
                let mut buf = String::new();
                use std::io::Read;
                if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                    eprintln!("check-prom: stdin: {e}");
                    return ExitCode::from(2);
                }
                buf
            } else {
                match std::fs::read_to_string(&path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("check-prom: {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            };
            let report = xtask::check_prom::check(&input);
            for e in &report.errors {
                println!("{e}");
            }
            let mut missing = 0usize;
            for name in &requires {
                if !xtask::check_prom::requires(&input, name) {
                    println!("required sample `{name}` not found");
                    missing += 1;
                }
            }
            eprintln!(
                "check-prom: {} familie(s), {} sample(s), {} error(s), {missing} missing \
                 requirement(s)",
                report.families,
                report.samples,
                report.errors.len()
            );
            if report.passed() && missing == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--json | --sarif] [--update-baseline] [ROOT] | \
                 audit [--json | --sarif] [--update-baseline] [ROOT] | \
                 bench-diff <OLD.json> <NEW.json> [--threshold PCT] | \
                 check-prom <FILE|-> [--require NAME]...>"
            );
            ExitCode::from(2)
        }
    }
}
