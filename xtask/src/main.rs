//! `cargo xtask` entry point. Currently one task:
//!
//! ```text
//! cargo xtask lint [--json] [ROOT]
//! ```
//!
//! which runs the repo lint pass (see [`xtask::lint`]) over `ROOT`
//! (default: the workspace root) and exits non-zero on any finding.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            for a in args {
                if a == "--json" {
                    json = true;
                } else {
                    root = Some(PathBuf::from(a));
                }
            }
            let root = root.unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .parent()
                    .expect("xtask sits one level under the workspace root")
                    .to_path_buf()
            });
            let findings = xtask::lint::lint_tree(&root);
            if json {
                println!("{}", xtask::lint::to_json(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
                let rules: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
                eprintln!(
                    "xtask lint: {} finding(s) across {} rule(s)",
                    findings.len(),
                    rules.len()
                );
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--json] [ROOT]");
            ExitCode::from(2)
        }
    }
}
