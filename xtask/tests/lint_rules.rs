//! Per-rule fixture tests for the `cargo xtask lint` pass, plus the
//! meta-test that the workspace itself lints clean.
//!
//! Fixtures live in `tests/fixtures/` (never compiled) and are fed to
//! [`lint_file`] under *fake in-scope paths*: the path decides which
//! rules apply, so the same fixture can be shown to trip a rule inside
//! the ID modules and stay silent outside them.

use std::path::Path;
use xtask::lint::{
    lint_file, lint_tree, to_json, RAW_PUB_SIGNATURE, STRAY_ATOMIC_IMPORT, UNAUDITED_ID_CAST,
    UNJUSTIFIED_ALLOW, UNSAFE_CONFINEMENT, UNTYPED_ID_ARITHMETIC,
};

/// Distinct rules hit when linting `src` as if it lived at `fake_path`.
fn rules_hit(fake_path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_file(Path::new(fake_path), src)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn bad_pub_sig_fixture_trips_raw_pub_signature() {
    let src = include_str!("fixtures/bad_pub_sig.rs");
    let findings = lint_file(Path::new("crates/core/src/repr.rs"), src);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RAW_PUB_SIGNATURE)
        .collect();
    // lookup(): `edge: usize` + `-> u32`; neighbors_of(): `v: usize` + `u64`.
    assert_eq!(hits.len(), 4, "{findings:?}");
    assert!(hits.iter().any(|f| f.line == 6), "{hits:?}");
    assert!(hits.iter().any(|f| f.line == 12), "{hits:?}");
}

#[test]
fn bad_cast_fixture_trips_unaudited_id_cast() {
    let src = include_str!("fixtures/bad_cast.rs");
    let findings = lint_file(Path::new("crates/core/src/slinegraph/naive.rs"), src);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == UNAUDITED_ID_CAST)
        .collect();
    // ` as Id`, ` as u32`, ` as usize` — one line each.
    assert_eq!(hits.len(), 3, "{findings:?}");
}

#[test]
fn bad_arith_fixture_trips_untyped_id_arithmetic() {
    let src = include_str!("fixtures/bad_arith.rs");
    let hits = rules_hit("crates/core/src/adjoin.rs", src);
    assert!(hits.contains(&UNTYPED_ID_ARITHMETIC), "{hits:?}");
}

#[test]
fn bad_atomic_fixture_trips_stray_atomic_import() {
    let src = include_str!("fixtures/bad_atomic.rs");
    let hits = rules_hit("crates/hygra/src/bfs.rs", src);
    assert_eq!(hits, vec![STRAY_ATOMIC_IMPORT]);
}

#[test]
fn bad_allow_fixture_trips_unjustified_allow() {
    let src = include_str!("fixtures/bad_allow.rs");
    let hits = rules_hit("crates/util/src/hash.rs", src);
    assert_eq!(hits, vec![UNJUSTIFIED_ALLOW]);
}

#[test]
fn bad_unsafe_fixture_trips_confinement_everywhere_but_the_island() {
    let src = include_str!("fixtures/bad_unsafe.rs");
    // anywhere in crates/ — including test-heavy crates — unsafe is a
    // finding, and the `// lint:` comment in the fixture does NOT
    // whitelist it (this rule has no escape outside the island)
    for fake in [
        "crates/core/src/repr.rs",
        "crates/bench/src/lib.rs",
        "crates/store/src/storage.rs",
    ] {
        let findings = lint_file(Path::new(fake), src);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == UNSAFE_CONFINEMENT)
            .collect();
        assert_eq!(hits.len(), 2, "{fake}: {findings:?}");
    }
}

#[test]
fn island_unsafe_requires_safety_comment() {
    let src = include_str!("fixtures/bad_unsafe_island.rs");
    let findings = lint_file(Path::new("crates/store/src/mmap.rs"), src);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == UNSAFE_CONFINEMENT)
        .collect();
    // only the undocumented block fires; the `// SAFETY:`-annotated one
    // is the sanctioned shape
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 11, "{hits:?}");
}

#[test]
fn unsafe_attribute_tokens_do_not_trip_confinement() {
    // `forbid(unsafe_code)` and `deny(unsafe_op_in_unsafe_fn)` carry no
    // standalone `unsafe` word — the rule must leave them alone
    let src = "#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}\n";
    let findings = lint_file(Path::new("crates/core/src/lib.rs"), src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn id_rules_do_not_apply_outside_the_id_modules() {
    // The cast fixture is fine in, say, the bench crate: rules A and B
    // are scoped to repr/adjoin/slinegraph.
    let src = include_str!("fixtures/bad_cast.rs");
    let findings = lint_file(Path::new("crates/bench/src/lib.rs"), src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lint_comment_whitelists_a_finding() {
    let src = "fn f(i: usize) -> u32 {\n    i as u32 // lint: audited in a fixture\n}\n";
    let findings = lint_file(Path::new("crates/core/src/adjoin.rs"), src);
    assert!(findings.is_empty(), "{findings:?}");

    // ... and the justification may sit on the comment block immediately
    // above the offending line.
    let src =
        "fn f(i: usize) -> u32 {\n    // lint: audited in a fixture\n    // (a second comment line)\n    i as u32\n}\n";
    let findings = lint_file(Path::new("crates/core/src/adjoin.rs"), src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn test_code_is_exempt_from_cast_rules_but_not_atomics() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU32;\n    fn f(i: usize) -> u32 { i as u32 }\n}\n";
    let hits = rules_hit("crates/core/src/adjoin.rs", src);
    assert!(hits.contains(&STRAY_ATOMIC_IMPORT), "{hits:?}");
    assert!(!hits.contains(&UNAUDITED_ID_CAST), "{hits:?}");
}

#[test]
fn findings_point_at_file_and_line() {
    let src = include_str!("fixtures/bad_atomic.rs");
    let findings = lint_file(Path::new("crates/hygra/src/bfs.rs"), src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].file, "crates/hygra/src/bfs.rs");
    assert_eq!(findings[0].line, 3);
    assert!(findings[0]
        .to_string()
        .starts_with("crates/hygra/src/bfs.rs:3: [stray-atomic-import]"));
}

#[test]
fn json_output_is_wellformed() {
    let src = include_str!("fixtures/bad_allow.rs");
    let findings = lint_file(Path::new("crates/util/src/hash.rs"), src);
    let json = to_json(&findings);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"rule\": \"unjustified-allow\""));
    assert!(json.contains("\"line\": 3"));
}

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level under the workspace root");
    let findings = lint_tree(root);
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
