//! Per-rule fixture tests for the `cargo xtask lint` pass, plus the
//! meta-test that the workspace itself lints clean.
//!
//! Fixtures live in `tests/fixtures/` (never compiled) and are fed to
//! [`lint_file`] under *fake in-scope paths*: the path decides which
//! rules apply, so the same fixture can be shown to trip a rule inside
//! the ID modules and stay silent outside them.

use std::path::Path;
use xtask::lint::{
    lint_file, lint_tree, lint_tree_report, to_json, CRATE_BOUNDARY, KIND_INDEX, KIND_PANIC,
    OBS_COVERAGE, PANIC_PATH, RAW_PUB_SIGNATURE, STRAY_ATOMIC_IMPORT, UNAUDITED_ID_CAST,
    UNJUSTIFIED_ALLOW, UNSAFE_CONFINEMENT, UNTYPED_ID_ARITHMETIC,
};

/// Distinct rules hit when linting `src` as if it lived at `fake_path`.
fn rules_hit(fake_path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_file(Path::new(fake_path), src)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn bad_pub_sig_fixture_trips_raw_pub_signature() {
    let src = include_str!("fixtures/bad_pub_sig.rs");
    let findings = lint_file(Path::new("crates/core/src/repr.rs"), src);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RAW_PUB_SIGNATURE)
        .collect();
    // lookup(): `edge: usize` + `-> u32`; neighbors_of(): `v: usize` + `u64`.
    assert_eq!(hits.len(), 4, "{findings:?}");
    assert!(hits.iter().any(|f| f.line == 6), "{hits:?}");
    assert!(hits.iter().any(|f| f.line == 12), "{hits:?}");
}

#[test]
fn bad_cast_fixture_trips_unaudited_id_cast() {
    let src = include_str!("fixtures/bad_cast.rs");
    let findings = lint_file(Path::new("crates/core/src/slinegraph/naive.rs"), src);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == UNAUDITED_ID_CAST)
        .collect();
    // ` as Id`, ` as u32`, ` as usize` — one line each.
    assert_eq!(hits.len(), 3, "{findings:?}");
}

#[test]
fn bad_arith_fixture_trips_untyped_id_arithmetic() {
    let src = include_str!("fixtures/bad_arith.rs");
    let hits = rules_hit("crates/core/src/adjoin.rs", src);
    assert!(hits.contains(&UNTYPED_ID_ARITHMETIC), "{hits:?}");
}

#[test]
fn bad_atomic_fixture_trips_stray_atomic_import() {
    let src = include_str!("fixtures/bad_atomic.rs");
    let hits = rules_hit("crates/hygra/src/bfs.rs", src);
    assert_eq!(hits, vec![STRAY_ATOMIC_IMPORT]);
}

#[test]
fn bad_allow_fixture_trips_unjustified_allow() {
    let src = include_str!("fixtures/bad_allow.rs");
    let hits = rules_hit("crates/util/src/hash.rs", src);
    assert_eq!(hits, vec![UNJUSTIFIED_ALLOW]);
}

#[test]
fn bad_unsafe_fixture_trips_confinement_everywhere_but_the_island() {
    let src = include_str!("fixtures/bad_unsafe.rs");
    // anywhere in crates/ — including test-heavy crates — unsafe is a
    // finding, and the `// lint:` comment in the fixture does NOT
    // whitelist it (this rule has no escape outside the island)
    for fake in [
        "crates/core/src/repr.rs",
        "crates/bench/src/lib.rs",
        "crates/store/src/storage.rs",
    ] {
        let findings = lint_file(Path::new(fake), src);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == UNSAFE_CONFINEMENT)
            .collect();
        assert_eq!(hits.len(), 2, "{fake}: {findings:?}");
    }
}

#[test]
fn island_unsafe_requires_safety_comment() {
    let src = include_str!("fixtures/bad_unsafe_island.rs");
    let findings = lint_file(Path::new("crates/store/src/mmap.rs"), src);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == UNSAFE_CONFINEMENT)
        .collect();
    // only the undocumented block fires; the `// SAFETY:`-annotated one
    // is the sanctioned shape
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 11, "{hits:?}");
}

#[test]
fn unsafe_attribute_tokens_do_not_trip_confinement() {
    // `forbid(unsafe_code)` and `deny(unsafe_op_in_unsafe_fn)` carry no
    // standalone `unsafe` word — the rule must leave them alone
    let src = "#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}\n";
    let findings = lint_file(Path::new("crates/core/src/lib.rs"), src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn id_rules_do_not_apply_outside_the_id_modules() {
    // The cast fixture is fine in, say, the bench crate: rules A and B
    // are scoped to repr/adjoin/slinegraph.
    let src = include_str!("fixtures/bad_cast.rs");
    let findings = lint_file(Path::new("crates/bench/src/lib.rs"), src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lint_comment_whitelists_a_finding() {
    let src = "fn f(i: usize) -> u32 {\n    i as u32 // lint: audited in a fixture\n}\n";
    let findings = lint_file(Path::new("crates/core/src/adjoin.rs"), src);
    assert!(findings.is_empty(), "{findings:?}");

    // ... and the justification may sit on the comment block immediately
    // above the offending line.
    let src =
        "fn f(i: usize) -> u32 {\n    // lint: audited in a fixture\n    // (a second comment line)\n    i as u32\n}\n";
    let findings = lint_file(Path::new("crates/core/src/adjoin.rs"), src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn test_code_is_exempt_from_cast_rules_but_not_atomics() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU32;\n    fn f(i: usize) -> u32 { i as u32 }\n}\n";
    let hits = rules_hit("crates/core/src/adjoin.rs", src);
    assert!(hits.contains(&STRAY_ATOMIC_IMPORT), "{hits:?}");
    assert!(!hits.contains(&UNAUDITED_ID_CAST), "{hits:?}");
}

#[test]
fn findings_point_at_file_and_line() {
    let src = include_str!("fixtures/bad_atomic.rs");
    let findings = lint_file(Path::new("crates/hygra/src/bfs.rs"), src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].file, "crates/hygra/src/bfs.rs");
    assert_eq!(findings[0].line, 3);
    assert!(findings[0]
        .to_string()
        .starts_with("crates/hygra/src/bfs.rs:3: [stray-atomic-import]"));
}

#[test]
fn json_output_is_wellformed() {
    let src = include_str!("fixtures/bad_allow.rs");
    let findings = lint_file(Path::new("crates/util/src/hash.rs"), src);
    let json = to_json(&findings);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"rule\": \"unjustified-allow\""));
    assert!(json.contains("\"line\": 3"));
}

// ---------------------------------------------------------------------
// v2 rules: panic-path, crate-boundary, obs-coverage
// ---------------------------------------------------------------------

#[test]
fn bad_panic_fixture_trips_every_family_member() {
    let src = include_str!("fixtures/bad_panic.rs");
    let findings = lint_file(Path::new("crates/core/src/x.rs"), src);
    let hits: Vec<_> = findings.iter().filter(|f| f.rule == PANIC_PATH).collect();
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented! — and
    // one unchecked index; the audited fn and the test module are exempt
    assert_eq!(
        hits.iter().filter(|f| f.kind == KIND_PANIC).count(),
        6,
        "{findings:?}"
    );
    assert_eq!(
        hits.iter().filter(|f| f.kind == KIND_INDEX).count(),
        1,
        "{findings:?}"
    );
}

#[test]
fn indexing_is_scoped_to_the_query_path_crates() {
    let src = "pub fn f(xs: &[u32]) -> u32 { xs[0] }\n";
    // in a query-path crate the index fires ...
    let core = lint_file(Path::new("crates/core/src/x.rs"), src);
    assert!(core.iter().any(|f| f.kind == KIND_INDEX), "{core:?}");
    // ... in the CLI crate only the panic family is denied, not indexing
    let cli = lint_file(Path::new("crates/nwhy/src/bin/nwhy-cli.rs"), src);
    assert!(cli.iter().all(|f| f.kind != KIND_INDEX), "{cli:?}");
    // ... and bench/test/example trees are fully exempt
    let bench = lint_file(Path::new("crates/core/benches/b.rs"), src);
    assert!(bench.iter().all(|f| f.rule != PANIC_PATH), "{bench:?}");
}

#[test]
fn bad_boundary_fixture_trips_crate_boundary() {
    let src = include_str!("fixtures/bad_boundary.rs");
    let findings = lint_file(Path::new("crates/core/src/planner2.rs"), src);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == CRATE_BOUNDARY)
        .collect();
    // hygra and nwhy_io are back-edges from core; nwhy_gen is not a core
    // dev-dependency so even the test module may not use it. nwhy_util
    // (allowed) and nwhy_core (self) stay silent.
    assert_eq!(hits.len(), 3, "{findings:?}");
    for dep in ["hygra", "nwhy_io", "nwhy_gen"] {
        assert!(
            hits.iter().any(|f| f.message.contains(dep)),
            "missing {dep}: {hits:?}"
        );
    }
}

#[test]
fn dev_dependency_edges_are_test_scope_only() {
    // store's manifest lists nwhy_gen under [dev-dependencies]
    let in_test = "#[cfg(test)]\nmod tests {\n    use nwhy_gen::profiles::all;\n}\n";
    let findings = lint_file(Path::new("crates/store/src/x.rs"), in_test);
    assert!(
        findings.iter().all(|f| f.rule != CRATE_BOUNDARY),
        "{findings:?}"
    );
    let in_src = "use nwhy_gen::profiles::all;\n";
    let findings = lint_file(Path::new("crates/store/src/x.rs"), in_src);
    assert!(
        findings.iter().any(|f| f.rule == CRATE_BOUNDARY),
        "{findings:?}"
    );
}

#[test]
fn bad_obs_fixture_trips_obs_coverage_only_for_the_bare_kernel() {
    let src = include_str!("fixtures/bad_obs.rs");
    let findings = lint_file(Path::new("crates/hygra/src/fixture.rs"), src);
    let hits: Vec<_> = findings.iter().filter(|f| f.rule == OBS_COVERAGE).collect();
    // the span-carrying kernel, the loop-free accessor, and the audited
    // helper are all exempt; only the bare loop fires
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 4, "{hits:?}");
    // outside the instrumentation-contract scope the same file is silent
    let outside = lint_file(Path::new("crates/util/src/fixture.rs"), src);
    assert!(
        outside.iter().all(|f| f.rule != OBS_COVERAGE),
        "{outside:?}"
    );
}

#[test]
fn string_literal_false_positives_are_dead() {
    // v1's lexical scanner flagged ` as u32`, `unsafe`, atomics, and
    // `#[allow]` inside string literals and doc comments; the
    // token-aware engine must stay silent on all of them — even under
    // the strictest fake path (id module + index scope).
    let src = include_str!("fixtures/string_fp.rs");
    let findings = lint_file(Path::new("crates/core/src/repr.rs"), src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn code_after_a_test_module_is_linted_again() {
    // v1 treated everything after the first `#[cfg(test)]` as test code
    // to end-of-file; the block tracker scopes the exemption to the mod
    // block, so the unaudited cast after it must fire.
    let src = include_str!("fixtures/post_test_module.rs");
    let findings = lint_file(Path::new("crates/core/src/adjoin.rs"), src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == UNAUDITED_ID_CAST && f.line == 20),
        "the post-test-module cast must be seen: {findings:?}"
    );
    // while the cast inside the test module stays exempt
    assert!(
        findings.iter().all(|f| f.line != 14),
        "test-module code must stay exempt: {findings:?}"
    );
}

#[test]
fn baseline_ratchet_rejects_a_synthetic_regression() {
    // an on-disk mini-workspace whose baseline allows exactly the
    // current number of panic sites ...
    let root = std::env::temp_dir().join(format!("xtask_ratchet_{}", std::process::id()));
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::create_dir_all(root.join("xtask")).unwrap();
    let two_sites =
        "pub fn f(a: Option<u32>, b: Option<u32>) -> u32 {\n    a.unwrap() + b.unwrap()\n}\n";
    std::fs::write(src_dir.join("lib.rs"), two_sites).unwrap();
    std::fs::write(
        root.join("xtask/panic_baseline.txt"),
        "panic 2 crates/demo/src/lib.rs\n",
    )
    .unwrap();
    let report = lint_tree_report(&root);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.baseline.suppressed, 2);

    // ... then a third site lands: the ratchet must fail the tree and
    // surface every site in the regressed file
    let three_sites = "pub fn f(a: Option<u32>, b: Option<u32>) -> u32 {\n    a.unwrap() + b.unwrap() + a.expect(\"x\")\n}\n";
    std::fs::write(src_dir.join("lib.rs"), three_sites).unwrap();
    let report = lint_tree_report(&root);
    assert_eq!(report.findings.len(), 3, "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.rule == PANIC_PATH));

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn sarif_output_carries_the_fixture_findings() {
    let src = include_str!("fixtures/bad_panic.rs");
    let findings = lint_file(Path::new("crates/core/src/x.rs"), src);
    let sarif = xtask::sarif::to_sarif(&findings);
    // SARIF 2.1.0 shape: versioned log, tool.driver with the rule
    // table, results with physicalLocation uri + startLine
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"driver\""));
    assert!(sarif.contains("\"ruleId\": \"panic-path\""));
    assert!(sarif.contains("\"artifactLocation\": {\"uri\": \"crates/core/src/x.rs\"}"));
    assert!(sarif.contains("\"startLine\": 5"));
}

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level under the workspace root");
    let report = lint_tree_report(root);
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean under all nine rules:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // the merge acceptance gate: the panic-family debt has been burned
    // down from the pre-ratchet 190 to 23 — hold the line there
    assert!(
        report.baseline.panic_total < 30,
        "panic-family debt regressed: {}",
        report.baseline.panic_total
    );
    // the baseline must be tight: no entry above the current count
    assert!(
        report.baseline.shrinkable.is_empty(),
        "stale baseline entries — run `cargo xtask lint --update-baseline`: {:?}",
        report.baseline.shrinkable
    );
    // exercise the compatibility wrapper too
    assert!(lint_tree(root).is_empty());
}

// ---------------------------------------------------------------------
// call-graph audit families (`cargo xtask audit`)
// ---------------------------------------------------------------------

use xtask::audit::{audit_tree, run_audit, AuditInputs};
use xtask::callgraph::CallGraph;
use xtask::lint::{ALLOC_HOT_LOOP, ORDERING_POLICY, PANIC_REACH};
use xtask::model::FileModel;
use xtask::parse::{parse_file, CallStyle};

#[test]
fn nested_impl_in_mod_gets_the_full_module_path() {
    // regression guard: a fn inside `impl` inside nested `mod`s must be
    // keyed `<crate>::<file>::outer::inner::Widget::poke`, not orphaned
    // at the file root — reachability depends on these keys.
    let src = include_str!("fixtures/nested_impl_path.rs");
    let m = FileModel::new(src);
    let parsed = parse_file("crates/core/src/demo.rs", &m);
    let keys: Vec<&str> = parsed.fns.iter().map(|f| f.key.as_str()).collect();
    assert!(
        keys.contains(&"nwhy_core::demo::outer::inner::Widget::poke"),
        "{keys:?}"
    );
    assert!(
        keys.contains(&"nwhy_core::demo::outer::inner::helper"),
        "{keys:?}"
    );
    assert!(
        keys.contains(&"nwhy_core::demo::outer::sibling"),
        "{keys:?}"
    );

    // and the deep key is addressable end-to-end: poke's call resolves
    let cg = CallGraph::build(&[parsed]);
    let poke = cg.find("Widget::poke");
    let helper = cg.find("inner::helper");
    assert_eq!(poke.len(), 1);
    assert_eq!(helper.len(), 1);
    assert!(cg.callees(poke[0]).contains(&helper[0]));
}

#[test]
fn trait_objects_closures_and_macros_resolve_soundly() {
    let src = include_str!("fixtures/callgraph_edges.rs");
    let m = FileModel::new(src);
    let parsed = parse_file("crates/core/src/demo.rs", &m);
    let cg = CallGraph::build(&[parsed]);

    // the `dyn Sink` call has no workspace impl: it must land in the
    // unresolved bucket, and the bodyless trait signature must NOT
    // satisfy it (that would be a false "panic-free" guarantee)
    assert!(
        cg.unresolved
            .iter()
            .any(|u| u.name == "emit" && matches!(u.style, CallStyle::Method)),
        "trait-object call must be unresolved"
    );
    let drive = cg.find("demo::drive");
    assert_eq!(drive.len(), 1);
    assert!(
        cg.callees(drive[0]).is_empty(),
        "no edge may point at a bodyless declaration"
    );

    // the call inside the closure handed to `.map(...)` attaches to the
    // enclosing fn, so reachability flows through combinators
    let fan = cg.find("demo::fan_out");
    let crunch = cg.find("demo::crunch");
    assert_eq!(fan.len(), 1);
    assert_eq!(crunch.len(), 1);
    assert!(cg.callees(fan[0]).contains(&crunch[0]));

    // macro invocations stay opaque
    assert!(cg
        .unresolved
        .iter()
        .any(|u| u.name == "log_it" && matches!(u.style, CallStyle::Macro)));
}

#[test]
fn bad_alloc_fixture_trips_only_the_hot_fn() {
    let inputs = AuditInputs {
        files: vec![(
            "crates/core/src/k.rs".to_string(),
            include_str!("fixtures/bad_alloc_hot.rs").to_string(),
        )],
        entrypoints: String::new(),
        reach_baseline: String::new(),
        ordering_policy: String::new(),
        hot_roots: vec!["k::kernel".to_string()],
    };
    let report = run_audit(&inputs);
    let allocs: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == ALLOC_HOT_LOOP)
        .collect();
    assert!(!allocs.is_empty(), "{:?}", report.findings);
    assert!(allocs.iter().any(|f| f.message.contains("format!")));
    // `cold` has the identical body but is not reachable from the hot
    // roots: every finding must sit inside `kernel` (before line 15)
    assert!(allocs.iter().all(|f| f.line < 15), "{allocs:?}");
    assert!(!report.passed());
}

#[test]
fn good_alloc_fixture_passes() {
    let inputs = AuditInputs {
        files: vec![(
            "crates/core/src/k.rs".to_string(),
            include_str!("fixtures/good_alloc_hot.rs").to_string(),
        )],
        entrypoints: String::new(),
        reach_baseline: String::new(),
        ordering_policy: String::new(),
        hot_roots: vec!["k::kernel".to_string()],
    };
    let report = run_audit(&inputs);
    assert!(
        report.findings.iter().all(|f| f.rule != ALLOC_HOT_LOOP),
        "{:?}",
        report.findings
    );
    assert!(report.passed());
}

#[test]
fn bad_ordering_fixture_trips_seqcst_and_undeclared() {
    let policy = "crates/ fetch_add Relaxed\ncrates/ load Relaxed\n";
    let inputs = AuditInputs {
        files: vec![(
            "crates/core/src/o.rs".to_string(),
            include_str!("fixtures/bad_ordering.rs").to_string(),
        )],
        entrypoints: String::new(),
        reach_baseline: String::new(),
        ordering_policy: policy.to_string(),
        hot_roots: Vec::new(),
    };
    let report = run_audit(&inputs);
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == ORDERING_POLICY)
        .collect();
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|f| f.message.contains("SeqCst")));
    assert!(hits.iter().any(|f| f.message.contains("Acquire")));
    assert!(!report.passed());
}

#[test]
fn good_ordering_fixture_passes() {
    let policy = "crates/ fetch_add Relaxed\ncrates/ load Relaxed\n";
    let inputs = AuditInputs {
        files: vec![(
            "crates/core/src/o.rs".to_string(),
            include_str!("fixtures/good_ordering.rs").to_string(),
        )],
        entrypoints: String::new(),
        reach_baseline: String::new(),
        ordering_policy: policy.to_string(),
        hot_roots: Vec::new(),
    };
    let report = run_audit(&inputs);
    assert!(
        report.findings.iter().all(|f| f.rule != ORDERING_POLICY),
        "{:?}",
        report.findings
    );
    assert!(report.passed());
}

#[test]
fn deep_unwrap_from_an_entry_is_caught_with_a_witness() {
    // the acceptance scenario: an `unwrap()` three calls deep from a
    // CLI-style entry point, audited end-to-end through the on-disk
    // manifests (`audit_tree`, not a hand-built input)
    let root = std::env::temp_dir().join(format!("xtask_audit_{}", std::process::id()));
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::create_dir_all(root.join("xtask")).unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn cmd_run() {\n    step_one();\n}\nfn step_one() {\n    step_two();\n}\n\
         fn step_two() {\n    let v: Vec<u32> = vec![1];\n    let _ = v.first().unwrap();\n}\n",
    )
    .unwrap();
    std::fs::write(root.join("xtask/entrypoints.txt"), "demo::cmd_run\n").unwrap();
    std::fs::write(root.join("xtask/reach_baseline.txt"), "0 demo::cmd_run\n").unwrap();
    std::fs::write(root.join("xtask/ordering_policy.txt"), "").unwrap();

    let report = audit_tree(&root);
    let reach: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == PANIC_REACH)
        .collect();
    assert_eq!(reach.len(), 1, "{:?}", report.findings);
    let msg = &reach[0].message;
    assert!(
        msg.contains("demo::cmd_run → demo::step_one → demo::step_two"),
        "witness must print the full call path: {msg}"
    );
    assert!(msg.contains("`.unwrap()`"), "{msg}");
    assert!(msg.contains("crates/demo/src/lib.rs:9"), "{msg}");
    assert!(!report.passed());

    // allowing the one site in the baseline clears the audit
    std::fs::write(root.join("xtask/reach_baseline.txt"), "1 demo::cmd_run\n").unwrap();
    let report = audit_tree(&root);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.passed());

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn workspace_audit_clean() {
    // the merge gate for the audit families: every declared entry point
    // resolves and stays within its reach baseline, no hot-loop
    // allocations, no ordering-policy violations — and the baseline is
    // tight (nothing left to ratchet down)
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level under the workspace root");
    let report = audit_tree(root);
    assert!(
        report.findings.is_empty(),
        "workspace must audit clean:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(!report.entries.is_empty());
    assert!(
        report.entries.iter().all(|e| !e.resolved.is_empty()),
        "every entry spec must resolve"
    );
    assert!(
        report.shrinkable.is_empty(),
        "stale reach baseline — run `cargo xtask audit --update-baseline`: {:?}",
        report.shrinkable
    );
    assert!(report.passed());
}
