// xtask fixture: trips `unjustified-allow` when linted under any
// crates/ fake path. Never compiled — consumed via include_str!.
#[allow(clippy::needless_range_loop)]
fn sum(xs: &[u64]) -> u64 {
    let mut s = 0;
    for i in 0..xs.len() {
        s += xs[i];
    }
    s
}
