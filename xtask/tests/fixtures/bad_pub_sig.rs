// xtask fixture: trips `raw-pub-signature` when linted under an
// in-scope fake path. Never compiled — consumed via include_str!.
pub struct Wrapper;

impl Wrapper {
    pub fn lookup(&self, edge: usize) -> u32 {
        let _ = edge;
        0
    }
}

pub fn neighbors_of(
    v: usize,
    count: u64,
) -> Vec<usize> {
    let _ = (v, count);
    Vec::new()
}
