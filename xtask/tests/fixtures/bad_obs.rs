//! Fixture: an uninstrumented public traversal kernel. Never compiled.

/// A kernel-shaped pub fn with a loop and no obs touch: the violation.
pub fn uninstrumented_kernel(rows: &[Vec<u32>]) -> usize {
    let mut total = 0;
    for row in rows {
        total += row.len();
    }
    total
}

/// Loop-free accessors are exempt by construction.
pub fn accessor(rows: &[Vec<u32>]) -> usize {
    rows.len()
}

/// Instrumented kernels satisfy the contract.
pub fn instrumented_kernel(rows: &[Vec<u32>]) -> usize {
    let _span = nwhy_obs::span("fixture.kernel");
    let mut total = 0;
    while total < rows.len() {
        total += 1;
    }
    total
}

// lint: obs: fixture-sanctioned helper
pub fn audited_kernel(rows: &[Vec<u32>]) -> usize {
    let mut total = 0;
    for row in rows {
        total += row.len();
    }
    total
}
