// xtask fixture: trips `stray-atomic-import` when linted under any
// crates/ fake path. Never compiled — consumed via include_str!.
use std::sync::atomic::{AtomicUsize, Ordering};

fn bump(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::Relaxed);
}
