//! Fixture: every member of the panic family plus unchecked indexing.
//! Never compiled — fed to `lint_file` under a fake in-scope path.

pub fn aborts_everywhere(xs: &[u32], i: usize) -> u32 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("non-empty");
    if i > xs.len() {
        panic!("out of range");
    }
    match i {
        0 => unreachable!(),
        1 => todo!(),
        2 => unimplemented!(),
        _ => head + tail + xs[i],
    }
}

pub fn audited(xs: &[u32]) -> u32 {
    // lint: panic: fixture-sanctioned abort
    xs[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), v[0]);
    }
}
