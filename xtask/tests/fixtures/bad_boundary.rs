//! Fixture: dependency-DAG back-edges. Never compiled — fed to
//! `lint_file` under a fake path inside `crates/core/`, where `hygra`
//! and `nwhy_io` are both forbidden dependencies.

use hygra::bfs::hygra_bfs;
use nwhy_util::partition::Strategy;

pub fn back_edge() {
    let _ = nwhy_io::read_binary;
    let _ = nwhy_core::ids::from_usize(0);
}

#[cfg(test)]
mod tests {
    use nwhy_gen::profiles::profile_by_name;
}
