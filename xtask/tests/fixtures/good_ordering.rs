//! Clean twin of `bad_ordering.rs`: every (module, op, ordering)
//! triple is declared by the fixture policy, and `std::cmp::Ordering`
//! is naturally out of the rule's scope.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU32, Ordering};

pub fn bump(c: &AtomicU32) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn peek(c: &AtomicU32) -> u32 {
    c.load(Ordering::Relaxed)
}

pub fn classify(a: u32, b: u32) -> CmpOrdering {
    a.cmp(&b)
}
