//! Fixture: call-graph edge cases. A trait-object method call with no
//! workspace impl must land in the unresolved bucket (the bodyless
//! trait signature is NOT a candidate — that would be a false
//! "panic-free" guarantee); calls inside a closure handed to a
//! rayon-style combinator attach to the enclosing fn; macro
//! invocations stay opaque.

pub trait Sink {
    fn emit(&self, v: u32);
}

pub fn drive(s: &dyn Sink) {
    s.emit(7);
}

pub fn fan_out(xs: &[u32]) -> u32 {
    xs.iter().map(|x| crunch(*x)).sum()
}

pub fn crunch(x: u32) -> u32 {
    log_it!(x);
    x * 2
}
