// xtask fixture: trips `untyped-id-arithmetic` when linted under any
// crates/ fake path. Never compiled — consumed via include_str!.
fn adjoin_ids(vs: &[u32], ne: usize) -> Vec<u32> {
    vs.iter().map(|&v| v + ne as u32).collect()
}

fn local_offset(id: AdjoinId, ne: usize) -> usize {
    id.idx() + ne
}
