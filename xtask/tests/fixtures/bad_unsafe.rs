//! Fixture: `unsafe` outside the mmap island. Never compiled.

pub fn read_first(bytes: &[u8]) -> u8 {
    // lint: even a justification comment must not whitelist this rule
    unsafe { *bytes.get_unchecked(0) }
}

pub unsafe fn transmute_len(v: &[u32]) -> usize {
    v.len()
}
