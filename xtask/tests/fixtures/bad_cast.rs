// xtask fixture: trips `unaudited-id-cast` when linted under an
// in-scope fake path. Never compiled — consumed via include_str!.
type Id = u32;

fn demo(i: usize, ne: usize) -> usize {
    let a = i as Id;
    let b = ne as u32;
    (a + b) as usize
}
