//! Fixture: the v1 engine treated everything after the FIRST
//! `#[cfg(test)]` as test code to end-of-file. The block tracker must
//! scope the exemption to the mod's braces and lint the code after it.

pub fn before(i: usize) -> usize {
    i
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let i = 3usize;
        assert_eq!(super::before(i), i as usize);
    }
}

// v1 never saw this region: an unaudited cast AFTER the test module.
pub fn after(i: usize) -> u32 {
    i as u32
}
