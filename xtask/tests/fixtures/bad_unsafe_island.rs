//! Fixture: unsafe blocks inside the mmap island, one documented and
//! one not. Never compiled.

pub fn documented(bytes: &[u8]) -> u8 {
    // SAFETY: fixture-level argument — the caller guarantees non-empty.
    unsafe { *bytes.get_unchecked(0) }
}

pub fn undocumented(bytes: &[u8]) -> u8 {
    // an ordinary comment is not a safety argument
    unsafe { *bytes.get_unchecked(0) }
}
