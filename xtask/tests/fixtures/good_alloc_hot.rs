//! Clean twin of `bad_alloc_hot.rs`: the buffer is hoisted out of the
//! loop and the one remaining in-loop push carries a justification
//! marker, so `alloc-in-hot-loop` has nothing to say.

pub fn kernel(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(xs.len());
    for x in xs {
        // lint: alloc: output accumulator sized up front; push is amortized O(1)
        out.push(x + 1);
    }
    out
}
