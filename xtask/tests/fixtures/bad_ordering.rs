//! Fixture: memory-ordering policy violations. `SeqCst` is denied
//! unconditionally, and the `load Acquire` here is not declared by the
//! fixture policy, so both sites must be flagged by `ordering-policy`.

use std::sync::atomic::{AtomicU32, Ordering};

pub fn bump(c: &AtomicU32) {
    c.fetch_add(1, Ordering::SeqCst);
}

pub fn peek(c: &AtomicU32) -> u32 {
    c.load(Ordering::Acquire)
}
