//! Fixture: allocations inside the loop body of a hot kernel. The
//! `format!` and the push onto a locally-grown vec must both be
//! flagged by `alloc-in-hot-loop`; `cold` has the same shape but is
//! not reachable from any hot root, so it stays silent.

pub fn kernel(xs: &[u32]) -> Vec<String> {
    let mut out = Vec::new();
    for x in xs {
        let s = format!("{x}");
        out.push(s);
    }
    out
}

pub fn cold(xs: &[u32]) -> Vec<String> {
    let mut out = Vec::new();
    for x in xs {
        let s = format!("{x}");
        out.push(s);
    }
    out
}
