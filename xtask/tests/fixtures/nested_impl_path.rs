//! Fixture: a fn inside an `impl` nested in a `mod` must be keyed by
//! its full module path — `<crate>::<file>::outer::inner::Widget::poke`
//! — so call-graph resolution and reachability see the real item, not a
//! file-root orphan.

pub mod outer {
    pub mod inner {
        pub struct Widget;

        impl Widget {
            pub fn poke(&self) -> u32 {
                helper(1)
            }
        }

        pub fn helper(x: u32) -> u32 {
            x + 1
        }
    }

    pub fn sibling() -> u32 {
        7
    }
}
