//! Fixture: the v1 lexical scanner's false-positive classes. A
//! token-aware pass must find NOTHING here — every pattern below sits
//! inside a string literal or a comment, not in code.

/// Doc comments may discuss `unsafe` code and ` as u32` casts freely,
/// or even std::sync::atomic and #[allow(dead_code)].
pub fn describe() -> &'static str {
    let a = "x as u32 and y as Id and z as usize";
    let b = "unsafe { transmute }";
    let c = "use std::sync::atomic::AtomicU64;";
    let d = "#[allow(dead_code)]";
    let e = r#"raw: .unwrap() .expect("x") panic! xs[i]"#;
    // a line comment quoting `unsafe` and `i as u32` is also not code
    let _ = (a, b, c, d);
    e
}
