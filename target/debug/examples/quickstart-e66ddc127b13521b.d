/root/repo/target/debug/examples/quickstart-e66ddc127b13521b.d: crates/nwhy/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e66ddc127b13521b.rmeta: crates/nwhy/../../examples/quickstart.rs Cargo.toml

crates/nwhy/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
