/root/repo/target/debug/examples/spectral-a63d18a51560e3e1.d: crates/nwhy/../../examples/spectral.rs

/root/repo/target/debug/examples/spectral-a63d18a51560e3e1: crates/nwhy/../../examples/spectral.rs

crates/nwhy/../../examples/spectral.rs:
