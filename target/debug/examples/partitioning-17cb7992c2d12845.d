/root/repo/target/debug/examples/partitioning-17cb7992c2d12845.d: crates/nwhy/../../examples/partitioning.rs Cargo.toml

/root/repo/target/debug/examples/libpartitioning-17cb7992c2d12845.rmeta: crates/nwhy/../../examples/partitioning.rs Cargo.toml

crates/nwhy/../../examples/partitioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
