/root/repo/target/debug/examples/partitioning-5606da91db869aa0.d: crates/nwhy/../../examples/partitioning.rs

/root/repo/target/debug/examples/partitioning-5606da91db869aa0: crates/nwhy/../../examples/partitioning.rs

crates/nwhy/../../examples/partitioning.rs:
