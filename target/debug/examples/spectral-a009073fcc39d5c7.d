/root/repo/target/debug/examples/spectral-a009073fcc39d5c7.d: crates/nwhy/../../examples/spectral.rs Cargo.toml

/root/repo/target/debug/examples/libspectral-a009073fcc39d5c7.rmeta: crates/nwhy/../../examples/spectral.rs Cargo.toml

crates/nwhy/../../examples/spectral.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
