/root/repo/target/debug/examples/scaling-9a134383bc7c5902.d: crates/nwhy/../../examples/scaling.rs Cargo.toml

/root/repo/target/debug/examples/libscaling-9a134383bc7c5902.rmeta: crates/nwhy/../../examples/scaling.rs Cargo.toml

crates/nwhy/../../examples/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
