/root/repo/target/debug/examples/quickstart-a3b1b04efc1a2094.d: crates/nwhy/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a3b1b04efc1a2094: crates/nwhy/../../examples/quickstart.rs

crates/nwhy/../../examples/quickstart.rs:
