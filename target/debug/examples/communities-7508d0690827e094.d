/root/repo/target/debug/examples/communities-7508d0690827e094.d: crates/nwhy/../../examples/communities.rs

/root/repo/target/debug/examples/communities-7508d0690827e094: crates/nwhy/../../examples/communities.rs

crates/nwhy/../../examples/communities.rs:
