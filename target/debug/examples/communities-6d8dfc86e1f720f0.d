/root/repo/target/debug/examples/communities-6d8dfc86e1f720f0.d: crates/nwhy/../../examples/communities.rs Cargo.toml

/root/repo/target/debug/examples/libcommunities-6d8dfc86e1f720f0.rmeta: crates/nwhy/../../examples/communities.rs Cargo.toml

crates/nwhy/../../examples/communities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
