/root/repo/target/debug/examples/scaling-2bbcc95bfa403e60.d: crates/nwhy/../../examples/scaling.rs

/root/repo/target/debug/examples/scaling-2bbcc95bfa403e60: crates/nwhy/../../examples/scaling.rs

crates/nwhy/../../examples/scaling.rs:
