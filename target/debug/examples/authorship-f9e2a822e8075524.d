/root/repo/target/debug/examples/authorship-f9e2a822e8075524.d: crates/nwhy/../../examples/authorship.rs

/root/repo/target/debug/examples/authorship-f9e2a822e8075524: crates/nwhy/../../examples/authorship.rs

crates/nwhy/../../examples/authorship.rs:
