/root/repo/target/debug/examples/authorship-9333739cdc557c4c.d: crates/nwhy/../../examples/authorship.rs Cargo.toml

/root/repo/target/debug/examples/libauthorship-9333739cdc557c4c.rmeta: crates/nwhy/../../examples/authorship.rs Cargo.toml

crates/nwhy/../../examples/authorship.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
