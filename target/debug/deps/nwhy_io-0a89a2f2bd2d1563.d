/root/repo/target/debug/deps/nwhy_io-0a89a2f2bd2d1563.d: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

/root/repo/target/debug/deps/libnwhy_io-0a89a2f2bd2d1563.rlib: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

/root/repo/target/debug/deps/libnwhy_io-0a89a2f2bd2d1563.rmeta: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

crates/io/src/lib.rs:
crates/io/src/adjoin_reader.rs:
crates/io/src/binary.rs:
crates/io/src/dot.rs:
crates/io/src/error.rs:
crates/io/src/hyperedge_list.rs:
crates/io/src/matrix_market.rs:
crates/io/src/tsv.rs:
