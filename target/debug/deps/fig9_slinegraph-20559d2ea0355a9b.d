/root/repo/target/debug/deps/fig9_slinegraph-20559d2ea0355a9b.d: crates/bench/src/bin/fig9_slinegraph.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_slinegraph-20559d2ea0355a9b.rmeta: crates/bench/src/bin/fig9_slinegraph.rs Cargo.toml

crates/bench/src/bin/fig9_slinegraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
