/root/repo/target/debug/deps/hygra-9e1b758a1d303dd8.d: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

/root/repo/target/debug/deps/hygra-9e1b758a1d303dd8: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

crates/hygra/src/lib.rs:
crates/hygra/src/bfs.rs:
crates/hygra/src/cc.rs:
crates/hygra/src/engine.rs:
crates/hygra/src/kcore.rs:
crates/hygra/src/mis.rs:
crates/hygra/src/pagerank.rs:
crates/hygra/src/subset.rs:
