/root/repo/target/debug/deps/extensions-f8e6a427b5264c89.d: crates/nwhy/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-f8e6a427b5264c89: crates/nwhy/../../tests/extensions.rs

crates/nwhy/../../tests/extensions.rs:
