/root/repo/target/debug/deps/nwhy_cli-518932ccb8228d5c.d: crates/nwhy/src/bin/nwhy-cli.rs Cargo.toml

/root/repo/target/debug/deps/libnwhy_cli-518932ccb8228d5c.rmeta: crates/nwhy/src/bin/nwhy-cli.rs Cargo.toml

crates/nwhy/src/bin/nwhy-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
