/root/repo/target/debug/deps/integration-6b34401b8b28dcbc.d: crates/nwhy/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-6b34401b8b28dcbc.rmeta: crates/nwhy/../../tests/integration.rs Cargo.toml

crates/nwhy/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
