/root/repo/target/debug/deps/nwhy_bench-b8c373b44cf22b7d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnwhy_bench-b8c373b44cf22b7d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnwhy_bench-b8c373b44cf22b7d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
