/root/repo/target/debug/deps/table1-34fc84885ee9c9a1.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-34fc84885ee9c9a1: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
