/root/repo/target/debug/deps/nwhy_io-13374887fa71df7c.d: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

/root/repo/target/debug/deps/nwhy_io-13374887fa71df7c: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

crates/io/src/lib.rs:
crates/io/src/adjoin_reader.rs:
crates/io/src/binary.rs:
crates/io/src/dot.rs:
crates/io/src/error.rs:
crates/io/src/hyperedge_list.rs:
crates/io/src/matrix_market.rs:
crates/io/src/tsv.rs:
