/root/repo/target/debug/deps/loom-03ca6ddd3694a946.d: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs Cargo.toml

/root/repo/target/debug/deps/libloom-03ca6ddd3694a946.rmeta: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs Cargo.toml

vendor/loom/src/lib.rs:
vendor/loom/src/rt.rs:
vendor/loom/src/sync.rs:
vendor/loom/src/thread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
