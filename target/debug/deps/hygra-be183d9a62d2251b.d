/root/repo/target/debug/deps/hygra-be183d9a62d2251b.d: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs Cargo.toml

/root/repo/target/debug/deps/libhygra-be183d9a62d2251b.rmeta: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs Cargo.toml

crates/hygra/src/lib.rs:
crates/hygra/src/bfs.rs:
crates/hygra/src/cc.rs:
crates/hygra/src/engine.rs:
crates/hygra/src/kcore.rs:
crates/hygra/src/mis.rs:
crates/hygra/src/pagerank.rs:
crates/hygra/src/subset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
