/root/repo/target/debug/deps/nwhy-e1e508713948a49e.d: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libnwhy-e1e508713948a49e.rmeta: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs Cargo.toml

crates/nwhy/src/lib.rs:
crates/nwhy/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
