/root/repo/target/debug/deps/fig9_slinegraph-08fd4b00769fc5d7.d: crates/bench/src/bin/fig9_slinegraph.rs

/root/repo/target/debug/deps/fig9_slinegraph-08fd4b00769fc5d7: crates/bench/src/bin/fig9_slinegraph.rs

crates/bench/src/bin/fig9_slinegraph.rs:
