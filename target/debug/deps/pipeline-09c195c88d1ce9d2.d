/root/repo/target/debug/deps/pipeline-09c195c88d1ce9d2.d: crates/nwhy/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-09c195c88d1ce9d2: crates/nwhy/../../tests/pipeline.rs

crates/nwhy/../../tests/pipeline.rs:
