/root/repo/target/debug/deps/nwhy-162af97da33cbc4d.d: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libnwhy-162af97da33cbc4d.rmeta: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs Cargo.toml

crates/nwhy/src/lib.rs:
crates/nwhy/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
