/root/repo/target/debug/deps/fig8_bfs_scaling-2baa96843bc10662.d: crates/bench/src/bin/fig8_bfs_scaling.rs

/root/repo/target/debug/deps/fig8_bfs_scaling-2baa96843bc10662: crates/bench/src/bin/fig8_bfs_scaling.rs

crates/bench/src/bin/fig8_bfs_scaling.rs:
