/root/repo/target/debug/deps/nwhy_bench-0a1948e1b7d4a528.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/nwhy_bench-0a1948e1b7d4a528: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
