/root/repo/target/debug/deps/nwhy_util-01d0ed7f97be1169.d: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

/root/repo/target/debug/deps/nwhy_util-01d0ed7f97be1169: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

crates/util/src/lib.rs:
crates/util/src/atomics.rs:
crates/util/src/bitmap.rs:
crates/util/src/fxhash.rs:
crates/util/src/partition.rs:
crates/util/src/pool.rs:
crates/util/src/prefix.rs:
crates/util/src/sync.rs:
crates/util/src/timer.rs:
crates/util/src/workq.rs:
