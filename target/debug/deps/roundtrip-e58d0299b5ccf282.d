/root/repo/target/debug/deps/roundtrip-e58d0299b5ccf282.d: crates/io/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-e58d0299b5ccf282.rmeta: crates/io/tests/roundtrip.rs Cargo.toml

crates/io/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
