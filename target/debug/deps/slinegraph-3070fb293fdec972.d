/root/repo/target/debug/deps/slinegraph-3070fb293fdec972.d: crates/bench/benches/slinegraph.rs Cargo.toml

/root/repo/target/debug/deps/libslinegraph-3070fb293fdec972.rmeta: crates/bench/benches/slinegraph.rs Cargo.toml

crates/bench/benches/slinegraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
