/root/repo/target/debug/deps/fig9_slinegraph-3e6aa735c9d4a256.d: crates/bench/src/bin/fig9_slinegraph.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_slinegraph-3e6aa735c9d4a256.rmeta: crates/bench/src/bin/fig9_slinegraph.rs Cargo.toml

crates/bench/src/bin/fig9_slinegraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
