/root/repo/target/debug/deps/nwhy-3f11032f56e941f4.d: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

/root/repo/target/debug/deps/nwhy-3f11032f56e941f4: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

crates/nwhy/src/lib.rs:
crates/nwhy/src/session.rs:
