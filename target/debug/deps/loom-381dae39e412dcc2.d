/root/repo/target/debug/deps/loom-381dae39e412dcc2.d: crates/util/tests/loom.rs Cargo.toml

/root/repo/target/debug/deps/libloom-381dae39e412dcc2.rmeta: crates/util/tests/loom.rs Cargo.toml

crates/util/tests/loom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
