/root/repo/target/debug/deps/integration-67d0e9b155eb7c5e.d: crates/nwhy/../../tests/integration.rs

/root/repo/target/debug/deps/integration-67d0e9b155eb7c5e: crates/nwhy/../../tests/integration.rs

crates/nwhy/../../tests/integration.rs:
