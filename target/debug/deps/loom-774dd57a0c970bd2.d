/root/repo/target/debug/deps/loom-774dd57a0c970bd2.d: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

/root/repo/target/debug/deps/libloom-774dd57a0c970bd2.rlib: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

/root/repo/target/debug/deps/libloom-774dd57a0c970bd2.rmeta: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

vendor/loom/src/lib.rs:
vendor/loom/src/rt.rs:
vendor/loom/src/sync.rs:
vendor/loom/src/thread.rs:
