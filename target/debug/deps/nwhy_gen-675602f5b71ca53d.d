/root/repo/target/debug/deps/nwhy_gen-675602f5b71ca53d.d: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

/root/repo/target/debug/deps/libnwhy_gen-675602f5b71ca53d.rlib: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

/root/repo/target/debug/deps/libnwhy_gen-675602f5b71ca53d.rmeta: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

crates/gen/src/lib.rs:
crates/gen/src/communities.rs:
crates/gen/src/powerlaw.rs:
crates/gen/src/profiles.rs:
crates/gen/src/rng.rs:
crates/gen/src/sbm.rs:
crates/gen/src/uniform.rs:
