/root/repo/target/debug/deps/nwhy_util-9392afeeaed0b09b.d: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs Cargo.toml

/root/repo/target/debug/deps/libnwhy_util-9392afeeaed0b09b.rmeta: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/atomics.rs:
crates/util/src/bitmap.rs:
crates/util/src/fxhash.rs:
crates/util/src/partition.rs:
crates/util/src/pool.rs:
crates/util/src/prefix.rs:
crates/util/src/sync.rs:
crates/util/src/timer.rs:
crates/util/src/workq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
