/root/repo/target/debug/deps/cross_representation-5fea25f105383165.d: crates/nwhy/../../tests/cross_representation.rs

/root/repo/target/debug/deps/cross_representation-5fea25f105383165: crates/nwhy/../../tests/cross_representation.rs

crates/nwhy/../../tests/cross_representation.rs:
