/root/repo/target/debug/deps/nwhy_bench-a07341a320d4edbe.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnwhy_bench-a07341a320d4edbe.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
