/root/repo/target/debug/deps/loom-fb16b63de40c826a.d: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs Cargo.toml

/root/repo/target/debug/deps/libloom-fb16b63de40c826a.rmeta: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs Cargo.toml

vendor/loom/src/lib.rs:
vendor/loom/src/rt.rs:
vendor/loom/src/sync.rs:
vendor/loom/src/thread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
