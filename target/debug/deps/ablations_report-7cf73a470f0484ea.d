/root/repo/target/debug/deps/ablations_report-7cf73a470f0484ea.d: crates/bench/src/bin/ablations_report.rs

/root/repo/target/debug/deps/ablations_report-7cf73a470f0484ea: crates/bench/src/bin/ablations_report.rs

crates/bench/src/bin/ablations_report.rs:
