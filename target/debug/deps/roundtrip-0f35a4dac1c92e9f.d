/root/repo/target/debug/deps/roundtrip-0f35a4dac1c92e9f.d: crates/io/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-0f35a4dac1c92e9f: crates/io/tests/roundtrip.rs

crates/io/tests/roundtrip.rs:
