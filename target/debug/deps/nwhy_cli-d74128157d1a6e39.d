/root/repo/target/debug/deps/nwhy_cli-d74128157d1a6e39.d: crates/nwhy/src/bin/nwhy-cli.rs

/root/repo/target/debug/deps/nwhy_cli-d74128157d1a6e39: crates/nwhy/src/bin/nwhy-cli.rs

crates/nwhy/src/bin/nwhy-cli.rs:
