/root/repo/target/debug/deps/nwhy_io-68fd9af19907c581.d: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs Cargo.toml

/root/repo/target/debug/deps/libnwhy_io-68fd9af19907c581.rmeta: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs Cargo.toml

crates/io/src/lib.rs:
crates/io/src/adjoin_reader.rs:
crates/io/src/binary.rs:
crates/io/src/dot.rs:
crates/io/src/error.rs:
crates/io/src/hyperedge_list.rs:
crates/io/src/matrix_market.rs:
crates/io/src/tsv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
