/root/repo/target/debug/deps/loom-f1b690d26341de28.d: crates/util/tests/loom.rs

/root/repo/target/debug/deps/loom-f1b690d26341de28: crates/util/tests/loom.rs

crates/util/tests/loom.rs:
