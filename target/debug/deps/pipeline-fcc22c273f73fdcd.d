/root/repo/target/debug/deps/pipeline-fcc22c273f73fdcd.d: crates/nwhy/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-fcc22c273f73fdcd.rmeta: crates/nwhy/../../tests/pipeline.rs Cargo.toml

crates/nwhy/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
