/root/repo/target/debug/deps/smetrics_props-0e6819e834103d94.d: crates/core/tests/smetrics_props.rs Cargo.toml

/root/repo/target/debug/deps/libsmetrics_props-0e6819e834103d94.rmeta: crates/core/tests/smetrics_props.rs Cargo.toml

crates/core/tests/smetrics_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
