/root/repo/target/debug/deps/nwhy_gen-e46daf89687ead46.d: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

/root/repo/target/debug/deps/nwhy_gen-e46daf89687ead46: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

crates/gen/src/lib.rs:
crates/gen/src/communities.rs:
crates/gen/src/powerlaw.rs:
crates/gen/src/profiles.rs:
crates/gen/src/rng.rs:
crates/gen/src/sbm.rs:
crates/gen/src/uniform.rs:
