/root/repo/target/debug/deps/nwhy_cli-47e6128df4eaecd3.d: crates/nwhy/src/bin/nwhy-cli.rs

/root/repo/target/debug/deps/nwhy_cli-47e6128df4eaecd3: crates/nwhy/src/bin/nwhy-cli.rs

crates/nwhy/src/bin/nwhy-cli.rs:
