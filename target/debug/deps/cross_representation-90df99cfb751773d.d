/root/repo/target/debug/deps/cross_representation-90df99cfb751773d.d: crates/nwhy/../../tests/cross_representation.rs Cargo.toml

/root/repo/target/debug/deps/libcross_representation-90df99cfb751773d.rmeta: crates/nwhy/../../tests/cross_representation.rs Cargo.toml

crates/nwhy/../../tests/cross_representation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
