/root/repo/target/debug/deps/nwhy-65935f4a4e8f0e68.d: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

/root/repo/target/debug/deps/libnwhy-65935f4a4e8f0e68.rlib: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

/root/repo/target/debug/deps/libnwhy-65935f4a4e8f0e68.rmeta: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

crates/nwhy/src/lib.rs:
crates/nwhy/src/session.rs:
