/root/repo/target/debug/deps/nwhy_bench-fabaa9cc5be9cf51.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnwhy_bench-fabaa9cc5be9cf51.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
