/root/repo/target/debug/deps/extensions-7f5d5f188b49abe4.d: crates/nwhy/../../tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-7f5d5f188b49abe4.rmeta: crates/nwhy/../../tests/extensions.rs Cargo.toml

crates/nwhy/../../tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
