/root/repo/target/debug/deps/nwhy_util-2922f2eaad2789f4.d: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

/root/repo/target/debug/deps/libnwhy_util-2922f2eaad2789f4.rlib: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

/root/repo/target/debug/deps/libnwhy_util-2922f2eaad2789f4.rmeta: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

crates/util/src/lib.rs:
crates/util/src/atomics.rs:
crates/util/src/bitmap.rs:
crates/util/src/fxhash.rs:
crates/util/src/partition.rs:
crates/util/src/pool.rs:
crates/util/src/prefix.rs:
crates/util/src/sync.rs:
crates/util/src/timer.rs:
crates/util/src/workq.rs:
