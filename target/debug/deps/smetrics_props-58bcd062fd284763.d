/root/repo/target/debug/deps/smetrics_props-58bcd062fd284763.d: crates/core/tests/smetrics_props.rs

/root/repo/target/debug/deps/smetrics_props-58bcd062fd284763: crates/core/tests/smetrics_props.rs

crates/core/tests/smetrics_props.rs:
