/root/repo/target/debug/deps/nwhy_core-8e0ef9d6d30eb1e9.d: crates/core/src/lib.rs crates/core/src/adjoin.rs crates/core/src/algorithms/mod.rs crates/core/src/algorithms/adjoin_bfs.rs crates/core/src/algorithms/adjoin_cc.rs crates/core/src/algorithms/hyper_bfs.rs crates/core/src/algorithms/hyper_cc.rs crates/core/src/algorithms/kcore.rs crates/core/src/algorithms/s_components.rs crates/core/src/algorithms/toplex.rs crates/core/src/biedgelist.rs crates/core/src/clique.rs crates/core/src/fixtures.rs crates/core/src/hypergraph.rs crates/core/src/matrix.rs crates/core/src/ops.rs crates/core/src/repr.rs crates/core/src/slinegraph/mod.rs crates/core/src/slinegraph/builder.rs crates/core/src/slinegraph/ensemble.rs crates/core/src/slinegraph/hashmap.rs crates/core/src/slinegraph/intersection.rs crates/core/src/slinegraph/naive.rs crates/core/src/slinegraph/pair_sort.rs crates/core/src/slinegraph/queue_single.rs crates/core/src/slinegraph/queue_two_phase.rs crates/core/src/slinegraph/weighted.rs crates/core/src/smetrics.rs crates/core/src/transform.rs crates/core/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libnwhy_core-8e0ef9d6d30eb1e9.rmeta: crates/core/src/lib.rs crates/core/src/adjoin.rs crates/core/src/algorithms/mod.rs crates/core/src/algorithms/adjoin_bfs.rs crates/core/src/algorithms/adjoin_cc.rs crates/core/src/algorithms/hyper_bfs.rs crates/core/src/algorithms/hyper_cc.rs crates/core/src/algorithms/kcore.rs crates/core/src/algorithms/s_components.rs crates/core/src/algorithms/toplex.rs crates/core/src/biedgelist.rs crates/core/src/clique.rs crates/core/src/fixtures.rs crates/core/src/hypergraph.rs crates/core/src/matrix.rs crates/core/src/ops.rs crates/core/src/repr.rs crates/core/src/slinegraph/mod.rs crates/core/src/slinegraph/builder.rs crates/core/src/slinegraph/ensemble.rs crates/core/src/slinegraph/hashmap.rs crates/core/src/slinegraph/intersection.rs crates/core/src/slinegraph/naive.rs crates/core/src/slinegraph/pair_sort.rs crates/core/src/slinegraph/queue_single.rs crates/core/src/slinegraph/queue_two_phase.rs crates/core/src/slinegraph/weighted.rs crates/core/src/smetrics.rs crates/core/src/transform.rs crates/core/src/validate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adjoin.rs:
crates/core/src/algorithms/mod.rs:
crates/core/src/algorithms/adjoin_bfs.rs:
crates/core/src/algorithms/adjoin_cc.rs:
crates/core/src/algorithms/hyper_bfs.rs:
crates/core/src/algorithms/hyper_cc.rs:
crates/core/src/algorithms/kcore.rs:
crates/core/src/algorithms/s_components.rs:
crates/core/src/algorithms/toplex.rs:
crates/core/src/biedgelist.rs:
crates/core/src/clique.rs:
crates/core/src/fixtures.rs:
crates/core/src/hypergraph.rs:
crates/core/src/matrix.rs:
crates/core/src/ops.rs:
crates/core/src/repr.rs:
crates/core/src/slinegraph/mod.rs:
crates/core/src/slinegraph/builder.rs:
crates/core/src/slinegraph/ensemble.rs:
crates/core/src/slinegraph/hashmap.rs:
crates/core/src/slinegraph/intersection.rs:
crates/core/src/slinegraph/naive.rs:
crates/core/src/slinegraph/pair_sort.rs:
crates/core/src/slinegraph/queue_single.rs:
crates/core/src/slinegraph/queue_two_phase.rs:
crates/core/src/slinegraph/weighted.rs:
crates/core/src/smetrics.rs:
crates/core/src/transform.rs:
crates/core/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
