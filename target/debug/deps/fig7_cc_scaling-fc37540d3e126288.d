/root/repo/target/debug/deps/fig7_cc_scaling-fc37540d3e126288.d: crates/bench/src/bin/fig7_cc_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_cc_scaling-fc37540d3e126288.rmeta: crates/bench/src/bin/fig7_cc_scaling.rs Cargo.toml

crates/bench/src/bin/fig7_cc_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
