/root/repo/target/debug/deps/nwgraph-48e50b7ba11ad589.d: crates/nwgraph/src/lib.rs crates/nwgraph/src/algorithms/mod.rs crates/nwgraph/src/algorithms/betweenness.rs crates/nwgraph/src/algorithms/bfs.rs crates/nwgraph/src/algorithms/cc.rs crates/nwgraph/src/algorithms/closeness.rs crates/nwgraph/src/algorithms/kcore.rs crates/nwgraph/src/algorithms/ktruss.rs crates/nwgraph/src/algorithms/mis.rs crates/nwgraph/src/algorithms/pagerank.rs crates/nwgraph/src/algorithms/sssp.rs crates/nwgraph/src/algorithms/triangles.rs crates/nwgraph/src/csr.rs crates/nwgraph/src/edge_list.rs crates/nwgraph/src/neighbor_range.rs crates/nwgraph/src/random.rs crates/nwgraph/src/relabel.rs Cargo.toml

/root/repo/target/debug/deps/libnwgraph-48e50b7ba11ad589.rmeta: crates/nwgraph/src/lib.rs crates/nwgraph/src/algorithms/mod.rs crates/nwgraph/src/algorithms/betweenness.rs crates/nwgraph/src/algorithms/bfs.rs crates/nwgraph/src/algorithms/cc.rs crates/nwgraph/src/algorithms/closeness.rs crates/nwgraph/src/algorithms/kcore.rs crates/nwgraph/src/algorithms/ktruss.rs crates/nwgraph/src/algorithms/mis.rs crates/nwgraph/src/algorithms/pagerank.rs crates/nwgraph/src/algorithms/sssp.rs crates/nwgraph/src/algorithms/triangles.rs crates/nwgraph/src/csr.rs crates/nwgraph/src/edge_list.rs crates/nwgraph/src/neighbor_range.rs crates/nwgraph/src/random.rs crates/nwgraph/src/relabel.rs Cargo.toml

crates/nwgraph/src/lib.rs:
crates/nwgraph/src/algorithms/mod.rs:
crates/nwgraph/src/algorithms/betweenness.rs:
crates/nwgraph/src/algorithms/bfs.rs:
crates/nwgraph/src/algorithms/cc.rs:
crates/nwgraph/src/algorithms/closeness.rs:
crates/nwgraph/src/algorithms/kcore.rs:
crates/nwgraph/src/algorithms/ktruss.rs:
crates/nwgraph/src/algorithms/mis.rs:
crates/nwgraph/src/algorithms/pagerank.rs:
crates/nwgraph/src/algorithms/sssp.rs:
crates/nwgraph/src/algorithms/triangles.rs:
crates/nwgraph/src/csr.rs:
crates/nwgraph/src/edge_list.rs:
crates/nwgraph/src/neighbor_range.rs:
crates/nwgraph/src/random.rs:
crates/nwgraph/src/relabel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
