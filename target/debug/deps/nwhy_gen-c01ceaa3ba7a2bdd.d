/root/repo/target/debug/deps/nwhy_gen-c01ceaa3ba7a2bdd.d: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs Cargo.toml

/root/repo/target/debug/deps/libnwhy_gen-c01ceaa3ba7a2bdd.rmeta: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/communities.rs:
crates/gen/src/powerlaw.rs:
crates/gen/src/profiles.rs:
crates/gen/src/rng.rs:
crates/gen/src/sbm.rs:
crates/gen/src/uniform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
