/root/repo/target/debug/deps/loom-2e85c0f18f2ad848.d: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

/root/repo/target/debug/deps/loom-2e85c0f18f2ad848: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

vendor/loom/src/lib.rs:
vendor/loom/src/rt.rs:
vendor/loom/src/sync.rs:
vendor/loom/src/thread.rs:
