/root/repo/target/debug/deps/ablations_report-774e49c3d87e6702.d: crates/bench/src/bin/ablations_report.rs Cargo.toml

/root/repo/target/debug/deps/libablations_report-774e49c3d87e6702.rmeta: crates/bench/src/bin/ablations_report.rs Cargo.toml

crates/bench/src/bin/ablations_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
