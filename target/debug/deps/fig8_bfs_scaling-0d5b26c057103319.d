/root/repo/target/debug/deps/fig8_bfs_scaling-0d5b26c057103319.d: crates/bench/src/bin/fig8_bfs_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_bfs_scaling-0d5b26c057103319.rmeta: crates/bench/src/bin/fig8_bfs_scaling.rs Cargo.toml

crates/bench/src/bin/fig8_bfs_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
