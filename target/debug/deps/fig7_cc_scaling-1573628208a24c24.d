/root/repo/target/debug/deps/fig7_cc_scaling-1573628208a24c24.d: crates/bench/src/bin/fig7_cc_scaling.rs

/root/repo/target/debug/deps/fig7_cc_scaling-1573628208a24c24: crates/bench/src/bin/fig7_cc_scaling.rs

crates/bench/src/bin/fig7_cc_scaling.rs:
