/root/repo/target/debug/deps/traversal-6d42b3f5fd3c1790.d: crates/bench/benches/traversal.rs Cargo.toml

/root/repo/target/debug/deps/libtraversal-6d42b3f5fd3c1790.rmeta: crates/bench/benches/traversal.rs Cargo.toml

crates/bench/benches/traversal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
