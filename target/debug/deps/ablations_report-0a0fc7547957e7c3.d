/root/repo/target/debug/deps/ablations_report-0a0fc7547957e7c3.d: crates/bench/src/bin/ablations_report.rs Cargo.toml

/root/repo/target/debug/deps/libablations_report-0a0fc7547957e7c3.rmeta: crates/bench/src/bin/ablations_report.rs Cargo.toml

crates/bench/src/bin/ablations_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
