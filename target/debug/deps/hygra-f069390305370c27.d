/root/repo/target/debug/deps/hygra-f069390305370c27.d: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

/root/repo/target/debug/deps/libhygra-f069390305370c27.rlib: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

/root/repo/target/debug/deps/libhygra-f069390305370c27.rmeta: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

crates/hygra/src/lib.rs:
crates/hygra/src/bfs.rs:
crates/hygra/src/cc.rs:
crates/hygra/src/engine.rs:
crates/hygra/src/kcore.rs:
crates/hygra/src/mis.rs:
crates/hygra/src/pagerank.rs:
crates/hygra/src/subset.rs:
