/root/repo/target/release/examples/scaling-66ce29b7c943988f.d: crates/nwhy/../../examples/scaling.rs

/root/repo/target/release/examples/scaling-66ce29b7c943988f: crates/nwhy/../../examples/scaling.rs

crates/nwhy/../../examples/scaling.rs:
