/root/repo/target/release/examples/authorship-8d3be149ebbf39d6.d: crates/nwhy/../../examples/authorship.rs

/root/repo/target/release/examples/authorship-8d3be149ebbf39d6: crates/nwhy/../../examples/authorship.rs

crates/nwhy/../../examples/authorship.rs:
