/root/repo/target/release/examples/quickstart-8a4d63611507f6ca.d: crates/nwhy/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8a4d63611507f6ca: crates/nwhy/../../examples/quickstart.rs

crates/nwhy/../../examples/quickstart.rs:
