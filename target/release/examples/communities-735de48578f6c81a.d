/root/repo/target/release/examples/communities-735de48578f6c81a.d: crates/nwhy/../../examples/communities.rs

/root/repo/target/release/examples/communities-735de48578f6c81a: crates/nwhy/../../examples/communities.rs

crates/nwhy/../../examples/communities.rs:
