/root/repo/target/release/examples/partitioning-e0584653664e7e51.d: crates/nwhy/../../examples/partitioning.rs

/root/repo/target/release/examples/partitioning-e0584653664e7e51: crates/nwhy/../../examples/partitioning.rs

crates/nwhy/../../examples/partitioning.rs:
