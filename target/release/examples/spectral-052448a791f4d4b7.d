/root/repo/target/release/examples/spectral-052448a791f4d4b7.d: crates/nwhy/../../examples/spectral.rs

/root/repo/target/release/examples/spectral-052448a791f4d4b7: crates/nwhy/../../examples/spectral.rs

crates/nwhy/../../examples/spectral.rs:
