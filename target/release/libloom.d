/root/repo/target/release/libloom.rlib: /root/repo/vendor/loom/src/lib.rs /root/repo/vendor/loom/src/rt.rs /root/repo/vendor/loom/src/sync.rs /root/repo/vendor/loom/src/thread.rs
