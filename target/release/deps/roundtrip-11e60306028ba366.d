/root/repo/target/release/deps/roundtrip-11e60306028ba366.d: crates/io/tests/roundtrip.rs

/root/repo/target/release/deps/roundtrip-11e60306028ba366: crates/io/tests/roundtrip.rs

crates/io/tests/roundtrip.rs:
