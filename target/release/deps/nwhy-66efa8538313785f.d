/root/repo/target/release/deps/nwhy-66efa8538313785f.d: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

/root/repo/target/release/deps/libnwhy-66efa8538313785f.rlib: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

/root/repo/target/release/deps/libnwhy-66efa8538313785f.rmeta: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

crates/nwhy/src/lib.rs:
crates/nwhy/src/session.rs:
