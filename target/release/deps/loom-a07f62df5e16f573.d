/root/repo/target/release/deps/loom-a07f62df5e16f573.d: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

/root/repo/target/release/deps/libloom-a07f62df5e16f573.rlib: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

/root/repo/target/release/deps/libloom-a07f62df5e16f573.rmeta: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

vendor/loom/src/lib.rs:
vendor/loom/src/rt.rs:
vendor/loom/src/sync.rs:
vendor/loom/src/thread.rs:
