/root/repo/target/release/deps/criterion-f0774923d3fbd31b.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f0774923d3fbd31b.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f0774923d3fbd31b.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
