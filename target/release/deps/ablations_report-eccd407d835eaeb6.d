/root/repo/target/release/deps/ablations_report-eccd407d835eaeb6.d: crates/bench/src/bin/ablations_report.rs

/root/repo/target/release/deps/ablations_report-eccd407d835eaeb6: crates/bench/src/bin/ablations_report.rs

crates/bench/src/bin/ablations_report.rs:
