/root/repo/target/release/deps/pipeline-753ef23d1ee1c90b.d: crates/nwhy/../../tests/pipeline.rs

/root/repo/target/release/deps/pipeline-753ef23d1ee1c90b: crates/nwhy/../../tests/pipeline.rs

crates/nwhy/../../tests/pipeline.rs:
