/root/repo/target/release/deps/smetrics_props-4356da74bad9a693.d: crates/core/tests/smetrics_props.rs

/root/repo/target/release/deps/smetrics_props-4356da74bad9a693: crates/core/tests/smetrics_props.rs

crates/core/tests/smetrics_props.rs:
