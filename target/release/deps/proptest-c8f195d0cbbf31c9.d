/root/repo/target/release/deps/proptest-c8f195d0cbbf31c9.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-c8f195d0cbbf31c9: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
