/root/repo/target/release/deps/proptest-34dbbbfd32e8fd5e.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-34dbbbfd32e8fd5e.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-34dbbbfd32e8fd5e.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
