/root/repo/target/release/deps/cross_representation-788d52cb8a9bcbea.d: crates/nwhy/../../tests/cross_representation.rs

/root/repo/target/release/deps/cross_representation-788d52cb8a9bcbea: crates/nwhy/../../tests/cross_representation.rs

crates/nwhy/../../tests/cross_representation.rs:
