/root/repo/target/release/deps/fig9_slinegraph-69bcf6298e0fb12a.d: crates/bench/src/bin/fig9_slinegraph.rs

/root/repo/target/release/deps/fig9_slinegraph-69bcf6298e0fb12a: crates/bench/src/bin/fig9_slinegraph.rs

crates/bench/src/bin/fig9_slinegraph.rs:
