/root/repo/target/release/deps/nwhy_gen-771077fb4c367359.d: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

/root/repo/target/release/deps/libnwhy_gen-771077fb4c367359.rlib: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

/root/repo/target/release/deps/libnwhy_gen-771077fb4c367359.rmeta: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

crates/gen/src/lib.rs:
crates/gen/src/communities.rs:
crates/gen/src/powerlaw.rs:
crates/gen/src/profiles.rs:
crates/gen/src/rng.rs:
crates/gen/src/sbm.rs:
crates/gen/src/uniform.rs:
