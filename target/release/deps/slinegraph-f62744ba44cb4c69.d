/root/repo/target/release/deps/slinegraph-f62744ba44cb4c69.d: crates/bench/benches/slinegraph.rs

/root/repo/target/release/deps/slinegraph-f62744ba44cb4c69: crates/bench/benches/slinegraph.rs

crates/bench/benches/slinegraph.rs:
