/root/repo/target/release/deps/nwhy_bench-c0148cc7d9b126f5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/nwhy_bench-c0148cc7d9b126f5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
