/root/repo/target/release/deps/nwhy_io-a13cf4b2ccc22432.d: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

/root/repo/target/release/deps/nwhy_io-a13cf4b2ccc22432: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

crates/io/src/lib.rs:
crates/io/src/adjoin_reader.rs:
crates/io/src/binary.rs:
crates/io/src/dot.rs:
crates/io/src/error.rs:
crates/io/src/hyperedge_list.rs:
crates/io/src/matrix_market.rs:
crates/io/src/tsv.rs:
