/root/repo/target/release/deps/nwhy_cli-90549ca14801cc1e.d: crates/nwhy/src/bin/nwhy-cli.rs

/root/repo/target/release/deps/nwhy_cli-90549ca14801cc1e: crates/nwhy/src/bin/nwhy-cli.rs

crates/nwhy/src/bin/nwhy-cli.rs:
