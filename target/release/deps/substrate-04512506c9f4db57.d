/root/repo/target/release/deps/substrate-04512506c9f4db57.d: crates/bench/benches/substrate.rs

/root/repo/target/release/deps/substrate-04512506c9f4db57: crates/bench/benches/substrate.rs

crates/bench/benches/substrate.rs:
