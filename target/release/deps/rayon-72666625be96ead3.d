/root/repo/target/release/deps/rayon-72666625be96ead3.d: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/pool.rs vendor/rayon/src/slice.rs

/root/repo/target/release/deps/rayon-72666625be96ead3: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/pool.rs vendor/rayon/src/slice.rs

vendor/rayon/src/lib.rs:
vendor/rayon/src/iter.rs:
vendor/rayon/src/pool.rs:
vendor/rayon/src/slice.rs:
