/root/repo/target/release/deps/nwhy-d61378efe50a10fa.d: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

/root/repo/target/release/deps/nwhy-d61378efe50a10fa: crates/nwhy/src/lib.rs crates/nwhy/src/session.rs

crates/nwhy/src/lib.rs:
crates/nwhy/src/session.rs:
