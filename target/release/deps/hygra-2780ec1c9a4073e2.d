/root/repo/target/release/deps/hygra-2780ec1c9a4073e2.d: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

/root/repo/target/release/deps/hygra-2780ec1c9a4073e2: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

crates/hygra/src/lib.rs:
crates/hygra/src/bfs.rs:
crates/hygra/src/cc.rs:
crates/hygra/src/engine.rs:
crates/hygra/src/kcore.rs:
crates/hygra/src/mis.rs:
crates/hygra/src/pagerank.rs:
crates/hygra/src/subset.rs:
