/root/repo/target/release/deps/fig9_slinegraph-864b6caabcf25190.d: crates/bench/src/bin/fig9_slinegraph.rs

/root/repo/target/release/deps/fig9_slinegraph-864b6caabcf25190: crates/bench/src/bin/fig9_slinegraph.rs

crates/bench/src/bin/fig9_slinegraph.rs:
