/root/repo/target/release/deps/proptest-3c1b9aa34ad21e98.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-3c1b9aa34ad21e98.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-3c1b9aa34ad21e98.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
