/root/repo/target/release/deps/ablations-7add928e68d239a7.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-7add928e68d239a7: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
