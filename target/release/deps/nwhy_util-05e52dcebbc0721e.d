/root/repo/target/release/deps/nwhy_util-05e52dcebbc0721e.d: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

/root/repo/target/release/deps/libnwhy_util-05e52dcebbc0721e.rlib: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

/root/repo/target/release/deps/libnwhy_util-05e52dcebbc0721e.rmeta: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

crates/util/src/lib.rs:
crates/util/src/atomics.rs:
crates/util/src/bitmap.rs:
crates/util/src/fxhash.rs:
crates/util/src/partition.rs:
crates/util/src/pool.rs:
crates/util/src/prefix.rs:
crates/util/src/sync.rs:
crates/util/src/timer.rs:
crates/util/src/workq.rs:
