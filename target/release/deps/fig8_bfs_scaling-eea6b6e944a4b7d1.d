/root/repo/target/release/deps/fig8_bfs_scaling-eea6b6e944a4b7d1.d: crates/bench/src/bin/fig8_bfs_scaling.rs

/root/repo/target/release/deps/fig8_bfs_scaling-eea6b6e944a4b7d1: crates/bench/src/bin/fig8_bfs_scaling.rs

crates/bench/src/bin/fig8_bfs_scaling.rs:
