/root/repo/target/release/deps/nwhy_util-881825388883dc70.d: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

/root/repo/target/release/deps/libnwhy_util-881825388883dc70.rlib: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

/root/repo/target/release/deps/libnwhy_util-881825388883dc70.rmeta: crates/util/src/lib.rs crates/util/src/atomics.rs crates/util/src/bitmap.rs crates/util/src/fxhash.rs crates/util/src/partition.rs crates/util/src/pool.rs crates/util/src/prefix.rs crates/util/src/sync.rs crates/util/src/timer.rs crates/util/src/workq.rs

crates/util/src/lib.rs:
crates/util/src/atomics.rs:
crates/util/src/bitmap.rs:
crates/util/src/fxhash.rs:
crates/util/src/partition.rs:
crates/util/src/pool.rs:
crates/util/src/prefix.rs:
crates/util/src/sync.rs:
crates/util/src/timer.rs:
crates/util/src/workq.rs:
