/root/repo/target/release/deps/nwhy_cli-38eeb3fd19221655.d: crates/nwhy/src/bin/nwhy-cli.rs

/root/repo/target/release/deps/nwhy_cli-38eeb3fd19221655: crates/nwhy/src/bin/nwhy-cli.rs

crates/nwhy/src/bin/nwhy-cli.rs:
