/root/repo/target/release/deps/fig8_bfs_scaling-89d6f8c6cdca57a6.d: crates/bench/src/bin/fig8_bfs_scaling.rs

/root/repo/target/release/deps/fig8_bfs_scaling-89d6f8c6cdca57a6: crates/bench/src/bin/fig8_bfs_scaling.rs

crates/bench/src/bin/fig8_bfs_scaling.rs:
