/root/repo/target/release/deps/rayon-497101186783ec39.d: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/pool.rs vendor/rayon/src/slice.rs

/root/repo/target/release/deps/librayon-497101186783ec39.rlib: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/pool.rs vendor/rayon/src/slice.rs

/root/repo/target/release/deps/librayon-497101186783ec39.rmeta: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/pool.rs vendor/rayon/src/slice.rs

vendor/rayon/src/lib.rs:
vendor/rayon/src/iter.rs:
vendor/rayon/src/pool.rs:
vendor/rayon/src/slice.rs:
