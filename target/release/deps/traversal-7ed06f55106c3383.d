/root/repo/target/release/deps/traversal-7ed06f55106c3383.d: crates/bench/benches/traversal.rs

/root/repo/target/release/deps/traversal-7ed06f55106c3383: crates/bench/benches/traversal.rs

crates/bench/benches/traversal.rs:
