/root/repo/target/release/deps/integration-fe603dbd3458c2b5.d: crates/nwhy/../../tests/integration.rs

/root/repo/target/release/deps/integration-fe603dbd3458c2b5: crates/nwhy/../../tests/integration.rs

crates/nwhy/../../tests/integration.rs:
