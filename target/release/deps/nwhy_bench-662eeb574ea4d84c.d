/root/repo/target/release/deps/nwhy_bench-662eeb574ea4d84c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnwhy_bench-662eeb574ea4d84c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnwhy_bench-662eeb574ea4d84c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
