/root/repo/target/release/deps/criterion-e8ba6db3e784c97d.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-e8ba6db3e784c97d: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
