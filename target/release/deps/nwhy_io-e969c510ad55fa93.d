/root/repo/target/release/deps/nwhy_io-e969c510ad55fa93.d: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

/root/repo/target/release/deps/libnwhy_io-e969c510ad55fa93.rlib: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

/root/repo/target/release/deps/libnwhy_io-e969c510ad55fa93.rmeta: crates/io/src/lib.rs crates/io/src/adjoin_reader.rs crates/io/src/binary.rs crates/io/src/dot.rs crates/io/src/error.rs crates/io/src/hyperedge_list.rs crates/io/src/matrix_market.rs crates/io/src/tsv.rs

crates/io/src/lib.rs:
crates/io/src/adjoin_reader.rs:
crates/io/src/binary.rs:
crates/io/src/dot.rs:
crates/io/src/error.rs:
crates/io/src/hyperedge_list.rs:
crates/io/src/matrix_market.rs:
crates/io/src/tsv.rs:
