/root/repo/target/release/deps/table1-98adc8ce4eeeae74.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-98adc8ce4eeeae74: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
