/root/repo/target/release/deps/loom-d19f7fa2aafb0d4d.d: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

/root/repo/target/release/deps/libloom-d19f7fa2aafb0d4d.rlib: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

/root/repo/target/release/deps/libloom-d19f7fa2aafb0d4d.rmeta: vendor/loom/src/lib.rs vendor/loom/src/rt.rs vendor/loom/src/sync.rs vendor/loom/src/thread.rs

vendor/loom/src/lib.rs:
vendor/loom/src/rt.rs:
vendor/loom/src/sync.rs:
vendor/loom/src/thread.rs:
