/root/repo/target/release/deps/fig7_cc_scaling-48d93674caa48276.d: crates/bench/src/bin/fig7_cc_scaling.rs

/root/repo/target/release/deps/fig7_cc_scaling-48d93674caa48276: crates/bench/src/bin/fig7_cc_scaling.rs

crates/bench/src/bin/fig7_cc_scaling.rs:
