/root/repo/target/release/deps/loom-29a1b49c7c41590d.d: crates/util/tests/loom.rs

/root/repo/target/release/deps/loom-29a1b49c7c41590d: crates/util/tests/loom.rs

crates/util/tests/loom.rs:
