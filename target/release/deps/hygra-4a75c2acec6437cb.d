/root/repo/target/release/deps/hygra-4a75c2acec6437cb.d: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

/root/repo/target/release/deps/libhygra-4a75c2acec6437cb.rlib: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

/root/repo/target/release/deps/libhygra-4a75c2acec6437cb.rmeta: crates/hygra/src/lib.rs crates/hygra/src/bfs.rs crates/hygra/src/cc.rs crates/hygra/src/engine.rs crates/hygra/src/kcore.rs crates/hygra/src/mis.rs crates/hygra/src/pagerank.rs crates/hygra/src/subset.rs

crates/hygra/src/lib.rs:
crates/hygra/src/bfs.rs:
crates/hygra/src/cc.rs:
crates/hygra/src/engine.rs:
crates/hygra/src/kcore.rs:
crates/hygra/src/mis.rs:
crates/hygra/src/pagerank.rs:
crates/hygra/src/subset.rs:
