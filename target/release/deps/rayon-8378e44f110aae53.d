/root/repo/target/release/deps/rayon-8378e44f110aae53.d: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/pool.rs vendor/rayon/src/slice.rs

/root/repo/target/release/deps/librayon-8378e44f110aae53.rlib: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/pool.rs vendor/rayon/src/slice.rs

/root/repo/target/release/deps/librayon-8378e44f110aae53.rmeta: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/pool.rs vendor/rayon/src/slice.rs

vendor/rayon/src/lib.rs:
vendor/rayon/src/iter.rs:
vendor/rayon/src/pool.rs:
vendor/rayon/src/slice.rs:
