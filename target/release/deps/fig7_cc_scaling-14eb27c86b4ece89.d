/root/repo/target/release/deps/fig7_cc_scaling-14eb27c86b4ece89.d: crates/bench/src/bin/fig7_cc_scaling.rs

/root/repo/target/release/deps/fig7_cc_scaling-14eb27c86b4ece89: crates/bench/src/bin/fig7_cc_scaling.rs

crates/bench/src/bin/fig7_cc_scaling.rs:
