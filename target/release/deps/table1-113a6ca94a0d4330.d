/root/repo/target/release/deps/table1-113a6ca94a0d4330.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-113a6ca94a0d4330: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
