/root/repo/target/release/deps/nwhy_gen-7eb48f5584cba8ea.d: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

/root/repo/target/release/deps/nwhy_gen-7eb48f5584cba8ea: crates/gen/src/lib.rs crates/gen/src/communities.rs crates/gen/src/powerlaw.rs crates/gen/src/profiles.rs crates/gen/src/rng.rs crates/gen/src/sbm.rs crates/gen/src/uniform.rs

crates/gen/src/lib.rs:
crates/gen/src/communities.rs:
crates/gen/src/powerlaw.rs:
crates/gen/src/profiles.rs:
crates/gen/src/rng.rs:
crates/gen/src/sbm.rs:
crates/gen/src/uniform.rs:
