/root/repo/target/release/deps/extensions-7a4512744906eefd.d: crates/nwhy/../../tests/extensions.rs

/root/repo/target/release/deps/extensions-7a4512744906eefd: crates/nwhy/../../tests/extensions.rs

crates/nwhy/../../tests/extensions.rs:
