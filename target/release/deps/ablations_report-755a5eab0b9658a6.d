/root/repo/target/release/deps/ablations_report-755a5eab0b9658a6.d: crates/bench/src/bin/ablations_report.rs

/root/repo/target/release/deps/ablations_report-755a5eab0b9658a6: crates/bench/src/bin/ablations_report.rs

crates/bench/src/bin/ablations_report.rs:
