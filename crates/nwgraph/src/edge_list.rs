//! Coordinate-format edge lists, the construction staging area for [`Csr`](crate::csr::Csr).
//!
//! Mirrors NWGraph's `edge_list`: algorithms that *produce* graphs (s-line
//! construction, clique expansion, generators, file readers) append
//! `(source, target)` pairs here, then index them once into CSR form.

use crate::Vertex;

/// A growable list of directed edges over vertices `0..num_vertices`,
/// with optional per-edge `f64` weights.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<(Vertex, Vertex)>,
    weights: Option<Vec<f64>>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            weights: None,
        }
    }

    /// Creates an edge list from parts. Vertex IDs must be `< num_vertices`.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn from_edges(num_vertices: usize, edges: Vec<(Vertex, Vertex)>) -> Self {
        for &(u, v) in &edges {
            assert!(
                (u as usize) < num_vertices && (v as usize) < num_vertices,
                "edge ({u}, {v}) out of range for {num_vertices} vertices"
            );
        }
        Self {
            num_vertices,
            edges,
            weights: None,
        }
    }

    /// Like [`EdgeList::from_edges`] with per-edge weights.
    ///
    /// # Panics
    /// Panics if lengths differ or endpoints are out of range.
    pub fn from_weighted_edges(
        num_vertices: usize,
        edges: Vec<(Vertex, Vertex)>,
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(edges.len(), weights.len(), "edges/weights length mismatch");
        let mut el = Self::from_edges(num_vertices, edges);
        el.weights = Some(weights);
        el
    }

    /// Number of vertices in the ID space.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (directed) edges currently stored.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` if no edges are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The raw edge slice.
    #[inline]
    pub fn edges(&self) -> &[(Vertex, Vertex)] {
        &self.edges
    }

    /// Optional weight slice, parallel to [`EdgeList::edges`].
    #[inline]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Appends an unweighted edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, or if this list is weighted.
    pub fn push(&mut self, u: Vertex, v: Vertex) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        assert!(
            self.weights.is_none(),
            "weighted list requires push_weighted"
        );
        self.edges.push((u, v));
    }

    /// Appends a weighted edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, or if previous edges were
    /// pushed without weights.
    pub fn push_weighted(&mut self, u: Vertex, v: Vertex, w: f64) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        match &mut self.weights {
            Some(ws) => ws.push(w),
            None if self.edges.is_empty() => self.weights = Some(vec![w]),
            None => panic!("cannot mix weighted and unweighted pushes"),
        }
        self.edges.push((u, v));
    }

    /// Adds the reverse of every edge, making the list symmetric
    /// (undirected). Weights are duplicated.
    pub fn symmetrize(&mut self) {
        let m = self.edges.len();
        self.edges.reserve(m);
        for i in 0..m {
            let (u, v) = self.edges[i];
            self.edges.push((v, u));
        }
        if let Some(ws) = &mut self.weights {
            ws.reserve(m);
            for i in 0..m {
                let w = ws[i];
                ws.push(w);
            }
        }
    }

    /// Sorts edges lexicographically and removes exact duplicates.
    /// For weighted lists the first occurrence's weight is kept.
    pub fn sort_dedup(&mut self) {
        match &mut self.weights {
            None => {
                self.edges.sort_unstable();
                self.edges.dedup();
            }
            Some(ws) => {
                let mut order: Vec<usize> = (0..self.edges.len()).collect();
                let edges = &self.edges;
                // Stable sort keeps the first occurrence first among equals.
                order.sort_by_key(|&i| edges[i]);
                let mut new_edges = Vec::with_capacity(order.len());
                let mut new_ws = Vec::with_capacity(order.len());
                for i in order {
                    if new_edges.last() != Some(&self.edges[i]) {
                        new_edges.push(self.edges[i]);
                        new_ws.push(ws[i]);
                    }
                }
                self.edges = new_edges;
                *ws = new_ws;
            }
        }
    }

    /// Removes self-loops `(u, u)`.
    pub fn remove_self_loops(&mut self) {
        match &mut self.weights {
            None => self.edges.retain(|&(u, v)| u != v),
            Some(ws) => {
                let mut kept_ws = Vec::with_capacity(ws.len());
                let mut kept_edges = Vec::with_capacity(self.edges.len());
                for (i, &(u, v)) in self.edges.iter().enumerate() {
                    if u != v {
                        kept_edges.push((u, v));
                        kept_ws.push(ws[i]);
                    }
                }
                self.edges = kept_edges;
                *ws = kept_ws;
            }
        }
    }

    /// Grows the vertex ID space to `n` (no-op if already at least `n`).
    pub fn grow_vertices(&mut self, n: usize) {
        self.num_vertices = self.num_vertices.max(n);
    }

    /// Extends with edges from another list over the same vertex space.
    ///
    /// # Panics
    /// Panics if weightedness differs or other's IDs exceed this space.
    pub fn append(&mut self, other: &EdgeList) {
        assert!(
            other.num_vertices <= self.num_vertices,
            "appending list with larger vertex space"
        );
        assert_eq!(
            self.weights.is_some(),
            other.weights.is_some() || other.edges.is_empty(),
            "weightedness mismatch in append"
        );
        self.edges.extend_from_slice(&other.edges);
        if let (Some(ws), Some(ows)) = (&mut self.weights, &other.weights) {
            ws.extend_from_slice(ows);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(1, 2);
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.edges(), &[(0, 1), (1, 2)]);
        assert!(el.weights().is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        let mut el = EdgeList::new(2);
        el.push(0, 2);
    }

    #[test]
    fn weighted_push() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 2.5);
        el.push_weighted(1, 2, 0.5);
        assert_eq!(el.weights(), Some(&[2.5, 0.5][..]));
    }

    #[test]
    #[should_panic(expected = "mix")]
    fn cannot_mix_weighted_after_unweighted() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push_weighted(1, 2, 1.0);
    }

    #[test]
    fn symmetrize_doubles() {
        let mut el = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]);
        el.symmetrize();
        assert_eq!(el.num_edges(), 4);
        assert!(el.edges().contains(&(1, 0)));
        assert!(el.edges().contains(&(2, 1)));
    }

    #[test]
    fn symmetrize_weighted_duplicates_weights() {
        let mut el = EdgeList::from_weighted_edges(3, vec![(0, 1)], vec![7.0]);
        el.symmetrize();
        assert_eq!(el.edges(), &[(0, 1), (1, 0)]);
        assert_eq!(el.weights(), Some(&[7.0, 7.0][..]));
    }

    #[test]
    fn sort_dedup_removes_duplicates() {
        let mut el = EdgeList::from_edges(3, vec![(1, 2), (0, 1), (1, 2), (0, 1)]);
        el.sort_dedup();
        assert_eq!(el.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn sort_dedup_weighted_keeps_first_weight() {
        let mut el =
            EdgeList::from_weighted_edges(3, vec![(1, 2), (0, 1), (1, 2)], vec![9.0, 1.0, 5.0]);
        el.sort_dedup();
        assert_eq!(el.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(el.weights(), Some(&[1.0, 9.0][..]));
    }

    #[test]
    fn remove_self_loops_filters() {
        let mut el = EdgeList::from_edges(3, vec![(0, 0), (0, 1), (2, 2)]);
        el.remove_self_loops();
        assert_eq!(el.edges(), &[(0, 1)]);
    }

    #[test]
    fn remove_self_loops_weighted_keeps_alignment() {
        let mut el =
            EdgeList::from_weighted_edges(3, vec![(0, 0), (0, 1), (2, 2)], vec![1.0, 2.0, 3.0]);
        el.remove_self_loops();
        assert_eq!(el.edges(), &[(0, 1)]);
        assert_eq!(el.weights(), Some(&[2.0][..]));
    }

    #[test]
    fn append_merges() {
        let mut a = EdgeList::from_edges(4, vec![(0, 1)]);
        let b = EdgeList::from_edges(4, vec![(2, 3)]);
        a.append(&b);
        assert_eq!(a.edges(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn grow_vertices_expands_space() {
        let mut el = EdgeList::new(2);
        el.grow_vertices(5);
        el.push(4, 0);
        assert_eq!(el.num_vertices(), 5);
        el.grow_vertices(3); // shrink is a no-op
        assert_eq!(el.num_vertices(), 5);
    }
}
