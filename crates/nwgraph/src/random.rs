//! Deterministic pseudo-random graph generators for tests and benches.
//!
//! A tiny xorshift-based PRNG is embedded here (rather than pulling `rand`
//! into the library's public dependency set) so that generated graphs are
//! reproducible across platforms from a seed alone.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::Vertex;

/// SplitMix64: tiny, high-quality 64-bit PRNG (public-domain algorithm).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style widening multiply.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform random undirected graph: `n` vertices, `m` undirected edges
/// (sampled with replacement, self-loops removed, then symmetrized).
pub fn gnm_undirected(n: usize, m: usize, seed: u64) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let mut el = EdgeList::new(n);
    if n >= 2 {
        for _ in 0..m {
            let u = rng.below(n as u64) as Vertex;
            let mut v = rng.below(n as u64) as Vertex;
            while v == u {
                v = rng.below(n as u64) as Vertex;
            }
            el.push(u, v);
        }
    }
    el.symmetrize();
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

/// Uniform random *directed* graph with `m` arcs (possibly with
/// duplicates removed), no self-loops.
pub fn gnm_directed(n: usize, m: usize, seed: u64) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let mut el = EdgeList::new(n);
    if n >= 2 {
        for _ in 0..m {
            let u = rng.below(n as u64) as Vertex;
            let mut v = rng.below(n as u64) as Vertex;
            while v == u {
                v = rng.below(n as u64) as Vertex;
            }
            el.push(u, v);
        }
    }
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

/// Random connected undirected graph: a random spanning tree plus `extra`
/// random edges. Useful for BFS/SSSP tests that need full reachability.
pub fn connected_undirected(n: usize, extra: usize, seed: u64) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let mut el = EdgeList::new(n);
    for v in 1..n {
        let u = rng.below(v as u64) as Vertex;
        el.push(u, v as Vertex);
    }
    if n >= 2 {
        for _ in 0..extra {
            let u = rng.below(n as u64) as Vertex;
            let mut v = rng.below(n as u64) as Vertex;
            while v == u {
                v = rng.below(n as u64) as Vertex;
            }
            el.push(u, v);
        }
    }
    el.symmetrize();
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

/// Random connected weighted undirected graph; weights uniform in
/// `[1.0, 10.0)`.
pub fn weighted_connected(n: usize, extra: usize, seed: u64) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let push =
        |edges: &mut Vec<(Vertex, Vertex)>, ws: &mut Vec<f64>, u: Vertex, v: Vertex, w: f64| {
            edges.push((u, v));
            ws.push(w);
            edges.push((v, u));
            ws.push(w);
        };
    for v in 1..n {
        let u = rng.below(v as u64) as Vertex;
        let w = 1.0 + 9.0 * rng.unit_f64();
        push(&mut edges, &mut weights, u, v as Vertex, w);
    }
    if n >= 2 {
        for _ in 0..extra {
            let u = rng.below(n as u64) as Vertex;
            let mut v = rng.below(n as u64) as Vertex;
            while v == u {
                v = rng.below(n as u64) as Vertex;
            }
            let w = 1.0 + 9.0 * rng.unit_f64();
            push(&mut edges, &mut weights, u, v, w);
        }
    }
    let mut el = EdgeList::from_weighted_edges(n, edges, weights);
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gnm_shapes() {
        let g = gnm_undirected(50, 100, 1);
        assert_eq!(g.num_vertices(), 50);
        assert!(g.is_symmetric());
        assert!(!g.iter().any(|(u, nbrs)| nbrs.contains(&u)));
        let d = gnm_directed(50, 100, 1);
        assert_eq!(d.num_vertices(), 50);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(gnm_undirected(0, 10, 1).num_vertices(), 0);
        assert_eq!(gnm_undirected(1, 10, 1).num_edges(), 0);
        assert_eq!(connected_undirected(1, 5, 1).num_edges(), 0);
    }

    #[test]
    fn connected_generator_is_connected() {
        let g = connected_undirected(100, 20, 9);
        // simple reachability check from 0
        let mut seen = [false; 100];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_generator_weights_in_range() {
        let g = weighted_connected(30, 10, 11);
        assert!(g.is_weighted());
        for u in 0..30u32 {
            for (_, w) in g.weighted_neighbors(u) {
                assert!((1.0..10.0).contains(&w));
            }
        }
    }
}
