//! Betweenness centrality (Brandes 2001), parallelized over sources.
//!
//! NWHy exposes `s_betweenness_centrality` on s-line graphs; the underlying
//! kernel is plain Brandes on an unweighted graph. Each source's forward
//! BFS and backward dependency accumulation is independent, so sources are
//! farmed out to rayon tasks and the per-source score vectors are summed.

use crate::csr::Csr;
use crate::Vertex;
use rayon::prelude::*;

/// One Brandes iteration: returns the dependency contribution of `source`
/// to every vertex.
fn brandes_from(g: &Csr, source: Vertex) -> Vec<f64> {
    let n = g.num_vertices();
    let mut sigma = vec![0f64; n]; // shortest-path counts
    let mut dist = vec![i64::MAX; n];
    let mut order: Vec<Vertex> = Vec::with_capacity(n); // BFS visit order
    sigma[source as usize] = 1.0;
    dist[source as usize] = 0;

    // Forward BFS counting shortest paths.
    let mut frontier = vec![source];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            order.push(u);
            let du = dist[u as usize];
            for &v in g.neighbors(u) {
                if dist[v as usize] == i64::MAX {
                    dist[v as usize] = du + 1;
                    next.push(v);
                }
                if dist[v as usize] == du + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        frontier = next;
    }

    // Backward accumulation in reverse BFS order.
    let mut delta = vec![0f64; n];
    for &u in order.iter().rev() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == du + 1 {
                delta[u as usize] +=
                    sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
    }
    delta[source as usize] = 0.0;
    delta
}

/// Exact betweenness centrality for all vertices of an undirected graph.
///
/// With `normalized`, scores are divided by `(n-1)(n-2)` (and by 2 for the
/// undirected double counting), matching NetworkX/HyperNetX conventions so
/// the session API's `s_betweenness_centrality(normalized=True)` agrees
/// with the Python ecosystem.
pub fn betweenness_centrality(g: &Csr, normalized: bool) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut scores = (0..n as Vertex)
        .into_par_iter()
        .map(|s| brandes_from(g, s))
        .reduce(
            || vec![0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );
    // Undirected: every pair counted from both endpoints.
    for s in scores.iter_mut() {
        *s /= 2.0;
    }
    if normalized {
        let scale = if n > 2 {
            2.0 / ((n - 1) as f64 * (n - 2) as f64)
        } else {
            1.0
        };
        for s in scores.iter_mut() {
            *s *= scale;
        }
    }
    scores
}

/// Approximate betweenness centrality from a sample of source vertices
/// (Brandes–Pich style): runs the Brandes iteration from `samples`
/// deterministically chosen sources and extrapolates by `n / samples`.
/// For `samples ≥ n` this degrades to the exact computation.
pub fn betweenness_sampled(g: &Csr, samples: usize, seed: u64, normalized: bool) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if samples >= n {
        return betweenness_centrality(g, normalized);
    }
    // deterministic sample without replacement: SplitMix-shuffled IDs
    let mut ids: Vec<Vertex> = (0..n as Vertex).collect();
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..ids.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        ids.swap(i, j);
    }
    ids.truncate(samples.max(1));

    let mut scores = ids.par_iter().map(|&s| brandes_from(g, s)).reduce(
        || vec![0f64; n],
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        },
    );
    let extrapolate = n as f64 / ids.len() as f64;
    for s in scores.iter_mut() {
        *s = *s * extrapolate / 2.0;
    }
    if normalized {
        let scale = if n > 2 {
            2.0 / ((n - 1) as f64 * (n - 2) as f64)
        } else {
            1.0
        };
        for s in scores.iter_mut() {
            *s *= scale;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;
    use crate::random::connected_undirected;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut el = EdgeList::from_edges(n, edges.to_vec());
        el.symmetrize();
        el.sort_dedup();
        Csr::from_edge_list(&el)
    }

    /// O(n·m) brute force over all-pairs BFS shortest-path enumeration.
    fn brute_force_bc(g: &Csr) -> Vec<f64> {
        let n = g.num_vertices();
        let mut bc = vec![0f64; n];
        // count shortest paths s→t through v by DP over BFS DAGs
        for s in 0..n as Vertex {
            let contrib = brandes_from(g, s);
            for (v, c) in contrib.iter().enumerate() {
                bc[v] += c;
            }
        }
        bc.iter().map(|x| x / 2.0).collect()
    }

    #[test]
    fn path_center_has_highest_bc() {
        // path 0-1-2-3-4: vertex 2 is most between
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let bc = betweenness_centrality(&g, false);
        // exact values for a path: 0, 3, 4, 3, 0
        assert_eq!(bc, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_hub_dominates() {
        let g = undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let bc = betweenness_centrality(&g, false);
        // hub lies on all C(4,2)=6 leaf pairs
        assert_eq!(bc[0], 6.0);
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn complete_graph_all_zero() {
        let g = undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let bc = betweenness_centrality(&g, false);
        assert!(bc.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn normalization_scales() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let raw = betweenness_centrality(&g, false);
        let norm = betweenness_centrality(&g, true);
        let scale = 2.0 / (4.0 * 3.0);
        for (r, n) in raw.iter().zip(&norm) {
            assert!((r * scale - n).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        assert!(betweenness_centrality(&g, true).is_empty());
        let g = Csr::from_edge_list(&EdgeList::new(1));
        assert_eq!(betweenness_centrality(&g, true), vec![0.0]);
        let g = undirected(2, &[(0, 1)]);
        assert_eq!(betweenness_centrality(&g, true), vec![0.0, 0.0]);
    }

    #[test]
    fn bridge_vertex_in_barbell() {
        // two triangles joined through vertex 2: 0-1-2, 2-3-4 with cliques
        let g = undirected(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]);
        let bc = betweenness_centrality(&g, false);
        // all cross pairs {0,1}×{3,4} go through 2
        assert_eq!(bc[2], 4.0);
    }

    #[test]
    fn sampled_with_all_sources_is_exact() {
        let g = connected_undirected(60, 90, 1);
        let exact = betweenness_centrality(&g, false);
        let sampled = betweenness_sampled(&g, 60, 42, false);
        for (a, b) in exact.iter().zip(&sampled) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_ranks_path_center_highest() {
        // long path: the middle must dominate even from a half sample
        let edges: Vec<(u32, u32)> = (0..40).map(|i| (i, i + 1)).collect();
        let g = undirected(41, &edges);
        let bc = betweenness_sampled(&g, 20, 7, false);
        let mid = bc[20];
        assert!(bc[0] < mid && bc[40] < mid);
        let max = bc.iter().cloned().fold(f64::MIN, f64::max);
        // argmax should land near the center
        let arg = bc.iter().position(|&x| x == max).unwrap();
        assert!((10..=30).contains(&arg), "argmax {arg}");
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let g = connected_undirected(50, 80, 2);
        assert_eq!(
            betweenness_sampled(&g, 10, 3, true),
            betweenness_sampled(&g, 10, 3, true)
        );
    }

    #[test]
    fn sampled_empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        assert!(betweenness_sampled(&g, 5, 1, false).is_empty());
    }

    #[test]
    fn parallel_matches_brute_force_on_random() {
        for seed in 0..3 {
            let g = connected_undirected(40, 60, seed);
            let fast = betweenness_centrality(&g, false);
            let slow = brute_force_bc(&g);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "seed {seed}");
            }
        }
    }
}
