//! Parallel connected components: label propagation, Shiloach–Vishkin, and
//! Afforest.
//!
//! These are the three CC algorithm families the NWHy paper names:
//! minimum-label propagation (Orzan; Yan et al.) drives HyperCC, Afforest
//! (Sutton, Ben-Nun, Barak) drives AdjoinCC, and Shiloach–Vishkin is the
//! classic PRAM baseline. All expect an undirected (symmetric) graph and
//! return a label array where two vertices share a label iff they share a
//! component.

use crate::csr::Csr;
use crate::Vertex;
use nwhy_util::atomics::atomic_min_u32;
use nwhy_util::fxhash::FxHashMap;
use nwhy_util::sync::{AtomicBool, AtomicU32, Ordering};
use rayon::prelude::*;

/// Minimum-label propagation. Every vertex starts with its own ID as
/// label; rounds of parallel edge relaxations push the minimum label
/// through each component until a fixpoint.
pub fn cc_label_propagation(g: &Csr) -> Vec<Vertex> {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        (0..n).into_par_iter().for_each(|u| {
            let lu = labels[u].load(Ordering::Relaxed);
            for &v in g.neighbors(u as Vertex) {
                // Push my label down to the neighbor and pull theirs to me.
                if atomic_min_u32(&labels[v as usize], lu) {
                    changed.store(true, Ordering::Relaxed);
                }
                let lv = labels[v as usize].load(Ordering::Relaxed);
                if atomic_min_u32(&labels[u], lv) {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
    }
    labels.into_iter().map(AtomicU32::into_inner).collect()
}

/// Shiloach–Vishkin (1982): alternating hook and pointer-jumping
/// (compress) phases on a parent forest.
pub fn shiloach_vishkin(g: &Csr) -> Vec<Vertex> {
    let n = g.num_vertices();
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        // Hook: for each edge (u, v), attach the root of the larger label
        // under the smaller.
        (0..n).into_par_iter().for_each(|u| {
            for &v in g.neighbors(u as Vertex) {
                let pu = parent[u].load(Ordering::Relaxed);
                let pv = parent[v as usize].load(Ordering::Relaxed);
                // only hook roots to keep the forest shallow
                if pu < pv && pv == parent[pv as usize].load(Ordering::Relaxed) {
                    if atomic_min_u32(&parent[pv as usize], pu) {
                        changed.store(true, Ordering::Relaxed);
                    }
                } else if pv < pu
                    && pu == parent[pu as usize].load(Ordering::Relaxed)
                    && atomic_min_u32(&parent[pu as usize], pv)
                {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
        // Compress: pointer jumping.
        (0..n).into_par_iter().for_each(|u| loop {
            let p = parent[u].load(Ordering::Relaxed);
            let gp = parent[p as usize].load(Ordering::Relaxed);
            if p == gp {
                break;
            }
            parent[u].store(gp, Ordering::Relaxed);
        });
    }
    parent.into_iter().map(AtomicU32::into_inner).collect()
}

/// GAPBS-style concurrent hooking used by Afforest.
#[inline]
fn link(u: Vertex, v: Vertex, comp: &[AtomicU32]) {
    let mut p1 = comp[u as usize].load(Ordering::Relaxed);
    let mut p2 = comp[v as usize].load(Ordering::Relaxed);
    while p1 != p2 {
        let (high, low) = if p1 > p2 { (p1, p2) } else { (p2, p1) };
        // Try to hook the root `high` directly under `low`.
        if comp[high as usize]
            .compare_exchange(high, low, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            break;
        }
        p1 = comp[comp[high as usize].load(Ordering::Relaxed) as usize].load(Ordering::Relaxed);
        p2 = low;
    }
}

/// Full pointer-jump compression of the component forest.
fn compress(comp: &[AtomicU32]) {
    (0..comp.len()).into_par_iter().for_each(|u| loop {
        let p = comp[u].load(Ordering::Relaxed);
        let gp = comp[p as usize].load(Ordering::Relaxed);
        if p == gp {
            break;
        }
        comp[u].store(gp, Ordering::Relaxed);
    });
}

/// Finds the most frequent component among ~1024 sampled vertices — the
/// Afforest "skip the giant component" heuristic.
fn sample_largest(comp: &[AtomicU32]) -> Vertex {
    let n = comp.len();
    if n == 0 {
        return 0;
    }
    let step = (n / 1024).max(1);
    let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
    let mut i = 0;
    while i < n {
        // follow to root for an accurate sample
        let mut c = comp[i].load(Ordering::Relaxed);
        while c != comp[c as usize].load(Ordering::Relaxed) {
            c = comp[c as usize].load(Ordering::Relaxed);
        }
        *counts.entry(c).or_insert(0) += 1;
        i += step;
    }
    counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(label, _)| label)
        .unwrap_or(0)
}

/// How many of each vertex's first neighbors the Afforest sampling phase
/// links (the paper's "subgraph sampling" parameter, 2 in the original).
const NEIGHBOR_ROUNDS: usize = 2;

/// Afforest (Sutton et al., IPDPS 2018): link a couple of neighbors per
/// vertex, identify the emerging giant component by sampling, then finish
/// linking only the vertices outside it. NWHy's AdjoinCC uses this.
///
/// # Examples
///
/// ```
/// use nwgraph::algorithms::cc::{afforest, normalize_labels, num_components};
/// use nwgraph::{Csr, EdgeList};
///
/// let mut el = EdgeList::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
/// el.symmetrize();
/// let g = Csr::from_edge_list(&el);
/// let labels = normalize_labels(&afforest(&g));
/// assert_eq!(labels, vec![0, 0, 0, 3, 3]);
/// assert_eq!(num_components(&labels), 2);
/// ```
pub fn afforest(g: &Csr) -> Vec<Vertex> {
    let n = g.num_vertices();
    let comp: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();

    // Phase 1: neighbor-round sampling.
    for round in 0..NEIGHBOR_ROUNDS {
        (0..n).into_par_iter().for_each(|u| {
            if let Some(&v) = g.neighbors(u as Vertex).get(round) {
                link(u as Vertex, v, &comp);
            }
        });
        compress(&comp);
    }

    // Phase 2: find the giant component.
    let giant = sample_largest(&comp);

    // Phase 3: finish the remaining edges of vertices outside the giant
    // component.
    (0..n).into_par_iter().for_each(|u| {
        if comp[u].load(Ordering::Relaxed) == giant {
            return;
        }
        let nbrs = g.neighbors(u as Vertex);
        for &v in nbrs.iter().skip(NEIGHBOR_ROUNDS) {
            link(u as Vertex, v, &comp);
        }
    });
    compress(&comp);
    comp.into_iter().map(AtomicU32::into_inner).collect()
}

/// Number of distinct components in a label array.
pub fn num_components(labels: &[Vertex]) -> usize {
    let mut distinct: Vec<Vertex> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

/// Sizes of each component, keyed by label.
pub fn component_sizes(labels: &[Vertex]) -> FxHashMap<Vertex, usize> {
    let mut sizes: FxHashMap<Vertex, usize> = FxHashMap::default();
    for &l in labels {
        *sizes.entry(l).or_insert(0) += 1;
    }
    sizes
}

/// Canonicalizes labels so that each component is named by its smallest
/// member, making outputs of different CC algorithms directly comparable.
pub fn normalize_labels(labels: &[Vertex]) -> Vec<Vertex> {
    let mut smallest: FxHashMap<Vertex, Vertex> = FxHashMap::default();
    for (v, &l) in labels.iter().enumerate() {
        let e = smallest.entry(l).or_insert(v as Vertex);
        *e = (*e).min(v as Vertex);
    }
    labels.iter().map(|l| smallest[l]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;
    use crate::random::gnm_undirected;
    use proptest::prelude::*;

    fn two_components() -> Csr {
        // {0,1,2} path and {3,4} edge
        let mut el = EdgeList::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        el.symmetrize();
        Csr::from_edge_list(&el)
    }

    /// Ground truth by sequential DFS.
    fn dfs_labels(g: &Csr) -> Vec<Vertex> {
        let n = g.num_vertices();
        let mut labels = vec![u32::MAX; n];
        for s in 0..n {
            if labels[s] != u32::MAX {
                continue;
            }
            let mut stack = vec![s as Vertex];
            labels[s] = s as Vertex;
            while let Some(u) = stack.pop() {
                for &v in g.neighbors(u) {
                    if labels[v as usize] == u32::MAX {
                        labels[v as usize] = s as Vertex;
                        stack.push(v);
                    }
                }
            }
        }
        labels
    }

    #[test]
    fn label_propagation_two_components() {
        let g = two_components();
        let labels = normalize_labels(&cc_label_propagation(&g));
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn shiloach_vishkin_two_components() {
        let g = two_components();
        let labels = normalize_labels(&shiloach_vishkin(&g));
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn afforest_two_components() {
        let g = two_components();
        let labels = normalize_labels(&afforest(&g));
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        assert!(cc_label_propagation(&g).is_empty());
        let g = Csr::from_edge_list(&EdgeList::new(4));
        for f in [cc_label_propagation, shiloach_vishkin, afforest] {
            let labels = f(&g);
            assert_eq!(num_components(&labels), 4);
        }
    }

    #[test]
    fn num_components_and_sizes() {
        let labels = vec![0, 0, 3, 3, 3];
        assert_eq!(num_components(&labels), 2);
        let sizes = component_sizes(&labels);
        assert_eq!(sizes[&0], 2);
        assert_eq!(sizes[&3], 3);
    }

    #[test]
    fn all_algorithms_agree_on_random_graphs() {
        for seed in 0..6 {
            let g = gnm_undirected(200, 150, seed); // sparse → many components
            let truth = normalize_labels(&dfs_labels(&g));
            assert_eq!(
                normalize_labels(&cc_label_propagation(&g)),
                truth,
                "lp seed {seed}"
            );
            assert_eq!(
                normalize_labels(&shiloach_vishkin(&g)),
                truth,
                "sv seed {seed}"
            );
            assert_eq!(normalize_labels(&afforest(&g)), truth, "aff seed {seed}");
        }
    }

    #[test]
    fn giant_component_case() {
        // dense graph: nearly everything in one component — exercises the
        // Afforest giant-component skip.
        let g = gnm_undirected(500, 3000, 7);
        let truth = normalize_labels(&dfs_labels(&g));
        assert_eq!(normalize_labels(&afforest(&g)), truth);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_cc_algorithms_match_dfs(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..120)
        ) {
            let mut el = EdgeList::from_edges(25, edges);
            el.remove_self_loops();
            el.symmetrize();
            el.sort_dedup();
            let g = Csr::from_edge_list(&el);
            let truth = normalize_labels(&dfs_labels(&g));
            prop_assert_eq!(normalize_labels(&cc_label_propagation(&g)), truth.clone());
            prop_assert_eq!(normalize_labels(&shiloach_vishkin(&g)), truth.clone());
            prop_assert_eq!(normalize_labels(&afforest(&g)), truth);
        }
    }
}
