//! k-core decomposition by parallel peeling.
//!
//! Another of the standard hypergraph-framework algorithms (§V names
//! k-core among Hygra/MESH/HyperX's suites). The peeling algorithm removes
//! all vertices of degree < k rounds at a time; a vertex's core number is
//! the largest k at which it survives.

use crate::csr::Csr;
use crate::Vertex;
use nwhy_util::sync::{AtomicUsize, Ordering};
use rayon::prelude::*;

/// Computes the core number of every vertex of an undirected graph.
pub fn kcore_decomposition(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let degree: Vec<AtomicUsize> = (0..n)
        .map(|v| AtomicUsize::new(g.degree(v as Vertex)))
        .collect();
    let mut core = vec![0u32; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut remaining = n;
    let mut k = 0u32;

    while remaining > 0 {
        k += 1;
        // Peel every vertex with degree < k, cascading within this k.
        loop {
            let to_remove: Vec<Vertex> = (0..n as Vertex)
                .into_par_iter()
                .filter(|&v| {
                    alive[v as usize] && degree[v as usize].load(Ordering::Relaxed) < k as usize
                })
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for &v in &to_remove {
                alive[v as usize] = false;
                core[v as usize] = k - 1;
                remaining -= 1;
            }
            to_remove.par_iter().for_each(|&v| {
                for &u in g.neighbors(v) {
                    if alive[u as usize] {
                        degree[u as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
        }
    }
    core
}

/// The degeneracy of the graph: the maximum core number.
pub fn degeneracy(g: &Csr) -> u32 {
    kcore_decomposition(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut el = EdgeList::from_edges(n, edges.to_vec());
        el.symmetrize();
        el.sort_dedup();
        Csr::from_edge_list(&el)
    }

    #[test]
    fn triangle_with_tail() {
        // triangle 0-1-2 plus tail 2-3
        let g = undirected(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let core = kcore_decomposition(&g);
        assert_eq!(core, vec![2, 2, 2, 1]);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn path_is_1_core() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(kcore_decomposition(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn clique_core_number() {
        let g = undirected(
            5,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
            ],
        );
        assert_eq!(kcore_decomposition(&g), vec![4; 5]);
    }

    #[test]
    fn isolated_vertices_are_0_core() {
        let g = Csr::from_edge_list(&EdgeList::new(3));
        assert_eq!(kcore_decomposition(&g), vec![0, 0, 0]);
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn cascading_peel() {
        // star: removing leaves at k=2 drops hub's degree to 0,
        // so the hub must also peel at k=2 (core number 1).
        let g = undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(kcore_decomposition(&g), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        assert!(kcore_decomposition(&g).is_empty());
    }
}
