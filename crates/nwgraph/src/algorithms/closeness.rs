//! Closeness, harmonic closeness, and eccentricity — the distance-based
//! centralities NWHy's Python API exposes as `s_closeness_centrality`,
//! `s_harmonic_closeness_centrality`, and `s_eccentricity`.
//!
//! All three are all-pairs-BFS sweeps, parallelized over sources.

use crate::algorithms::bfs::bfs_direction_optimizing;
use crate::csr::Csr;
use crate::{Vertex, INVALID_VERTEX};
use rayon::prelude::*;

/// Closeness centrality of every vertex, using the Wasserman–Faust
/// formula for disconnected graphs (as NetworkX/HyperNetX do):
/// `C(v) = (r-1)/n-1 · (r-1)/Σ d(v,u)` where `r` is the size of `v`'s
/// reachable set. Isolated vertices score 0.
pub fn closeness_centrality(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    (0..n as Vertex)
        .into_par_iter()
        .map(|v| {
            let levels = bfs_direction_optimizing(g, v).levels;
            let mut total = 0u64;
            let mut reached = 0u64;
            for &l in &levels {
                if l != INVALID_VERTEX {
                    total += l as u64;
                    reached += 1;
                }
            }
            // `reached` includes v itself at distance 0.
            if total == 0 || n <= 1 {
                0.0
            } else {
                let r = reached as f64;
                ((r - 1.0) / (n as f64 - 1.0)) * ((r - 1.0) / total as f64)
            }
        })
        .collect()
}

/// Harmonic closeness: `H(v) = Σ_{u≠v} 1/d(v,u)` with `1/∞ = 0`.
/// Robust to disconnection without the Wasserman–Faust correction.
pub fn harmonic_closeness_centrality(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    (0..n as Vertex)
        .into_par_iter()
        .map(|v| {
            let levels = bfs_direction_optimizing(g, v).levels;
            levels
                .iter()
                .filter(|&&l| l != INVALID_VERTEX && l > 0)
                .map(|&l| 1.0 / l as f64)
                .sum()
        })
        .collect()
}

/// Eccentricity of every vertex: the greatest *finite* hop distance to any
/// reachable vertex (so it is well-defined per component). Isolated
/// vertices have eccentricity 0.
pub fn eccentricity(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    (0..n as Vertex)
        .into_par_iter()
        .map(|v| bfs_direction_optimizing(g, v).max_level())
        .collect()
}

/// The diameter of the graph: max finite eccentricity (0 for empty).
/// Exact — runs one BFS per vertex; use
/// [`diameter_estimate_double_sweep`] for large graphs.
pub fn diameter(g: &Csr) -> u32 {
    eccentricity(g).into_iter().max().unwrap_or(0)
}

/// Double-sweep diameter lower bound: BFS from `start`, then BFS from the
/// farthest vertex found. Exact on trees; on general graphs a lower bound
/// that is usually tight in practice — the standard cheap estimator.
pub fn diameter_estimate_double_sweep(g: &Csr, start: Vertex) -> u32 {
    if g.num_vertices() == 0 {
        return 0;
    }
    let first = bfs_direction_optimizing(g, start);
    let farthest = first
        .levels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l != INVALID_VERTEX)
        .max_by_key(|&(_, &l)| l)
        .map(|(v, _)| v as Vertex)
        .unwrap_or(start);
    bfs_direction_optimizing(g, farthest).max_level()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut el = EdgeList::from_edges(n, edges.to_vec());
        el.symmetrize();
        el.sort_dedup();
        Csr::from_edge_list(&el)
    }

    #[test]
    fn closeness_on_path() {
        let g = undirected(3, &[(0, 1), (1, 2)]);
        let c = closeness_centrality(&g);
        // center: distances {1,1} → (2/2)·(2/2) = 1.0
        assert!((c[1] - 1.0).abs() < 1e-12);
        // ends: distances {1,2} → 2/3
        assert!((c[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c[2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_disconnected_uses_wf_correction() {
        // component {0,1} + isolated 2
        let g = undirected(3, &[(0, 1)]);
        let c = closeness_centrality(&g);
        // v0: reached {0,1}, total 1 → (1/2)·(1/1) = 0.5
        assert!((c[0] - 0.5).abs() < 1e-12);
        assert_eq!(c[2], 0.0);
    }

    #[test]
    fn harmonic_on_path() {
        let g = undirected(3, &[(0, 1), (1, 2)]);
        let h = harmonic_closeness_centrality(&g);
        assert!((h[1] - 2.0).abs() < 1e-12); // 1/1 + 1/1
        assert!((h[0] - 1.5).abs() < 1e-12); // 1/1 + 1/2
    }

    #[test]
    fn harmonic_ignores_unreachable() {
        let g = undirected(4, &[(0, 1)]);
        let h = harmonic_closeness_centrality(&g);
        assert_eq!(h[0], 1.0);
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn eccentricity_and_diameter_on_path() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(eccentricity(&g), vec![4, 3, 2, 3, 4]);
        assert_eq!(diameter(&g), 4);
    }

    #[test]
    fn eccentricity_per_component() {
        let g = undirected(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(eccentricity(&g), vec![2, 1, 2, 1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        assert!(closeness_centrality(&g).is_empty());
        assert!(harmonic_closeness_centrality(&g).is_empty());
        assert_eq!(diameter(&g), 0);
        assert_eq!(diameter_estimate_double_sweep(&g, 0), 0);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let g = undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        // starting anywhere, the double sweep finds the true diameter 5
        for start in 0..6u32 {
            assert_eq!(
                diameter_estimate_double_sweep(&g, start),
                5,
                "start {start}"
            );
        }
    }

    #[test]
    fn double_sweep_is_lower_bound() {
        let g = crate::random::connected_undirected(200, 260, 3);
        let exact = diameter(&g);
        let est = diameter_estimate_double_sweep(&g, 0);
        assert!(est <= exact);
        assert!(est >= exact / 2, "double sweep ≥ half the diameter");
    }

    #[test]
    fn single_vertex() {
        let g = Csr::from_edge_list(&EdgeList::new(1));
        assert_eq!(closeness_centrality(&g), vec![0.0]);
        assert_eq!(harmonic_closeness_centrality(&g), vec![0.0]);
        assert_eq!(eccentricity(&g), vec![0]);
    }
}
