//! Maximal independent set via parallel random-priority selection (Luby's
//! algorithm with a fixed hash priority — deterministic for a given seed).
//!
//! Hygra/MESH/HyperX list MIS among their kernels (§V); it is also handy
//! for picking well-spread sources in the benchmark harnesses.

use crate::csr::Csr;
use crate::Vertex;
use nwhy_util::sync::{AtomicU8, Ordering};
use rayon::prelude::*;

const UNDECIDED: u8 = 0;
const IN_SET: u8 = 1;
const OUT: u8 = 2;

/// Mixes a vertex ID with a seed into a 64-bit priority.
#[inline]
fn priority(v: Vertex, seed: u64) -> u64 {
    let mut z = (v as u64)
        .wrapping_add(seed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Computes a maximal independent set of an undirected graph; returns a
/// boolean membership vector. Deterministic for a fixed `seed`.
pub fn maximal_independent_set(g: &Csr, seed: u64) -> Vec<bool> {
    let n = g.num_vertices();
    let state: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let mut undecided: Vec<Vertex> = (0..n as Vertex).collect();
    let mut round_seed = seed;

    while !undecided.is_empty() {
        // Snapshot the state at round start so concurrent winners in this
        // round cannot influence each other's decisions.
        let snapshot: Vec<u8> = state.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        // A vertex joins the set if it is a local priority minimum among
        // undecided neighbors (ties broken by ID).
        undecided.par_iter().for_each(|&v| {
            let pv = priority(v, round_seed);
            let wins = g.neighbors(v).iter().all(|&u| {
                u == v
                    || snapshot[u as usize] != UNDECIDED
                    || priority(u, round_seed) > pv
                    || (priority(u, round_seed) == pv && u > v)
            });
            if wins {
                state[v as usize].store(IN_SET, Ordering::Relaxed);
            }
        });
        // Winners knock out their undecided neighbors.
        undecided.par_iter().for_each(|&v| {
            if state[v as usize].load(Ordering::Relaxed) == IN_SET {
                for &u in g.neighbors(v) {
                    let _ = state[u as usize].compare_exchange(
                        UNDECIDED,
                        OUT,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    );
                }
            }
        });
        undecided.retain(|&v| state[v as usize].load(Ordering::Relaxed) == UNDECIDED);
        round_seed = round_seed.wrapping_add(0xA076_1D64_78BD_642F);
    }

    state
        .into_iter()
        .map(|s| s.into_inner() == IN_SET)
        .collect()
}

/// Checks the MIS invariants: independence (no two members adjacent) and
/// maximality (every non-member has a member neighbor).
pub fn validate_mis(g: &Csr, mis: &[bool]) -> Result<(), String> {
    for (u, nbrs) in g.iter() {
        if mis[u as usize] {
            for &v in nbrs {
                if v != u && mis[v as usize] {
                    return Err(format!("members {u} and {v} are adjacent"));
                }
            }
        } else if !nbrs.iter().any(|&v| mis[v as usize]) {
            return Err(format!("non-member {u} has no member neighbor"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;
    use crate::random::gnm_undirected;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut el = EdgeList::from_edges(n, edges.to_vec());
        el.symmetrize();
        el.sort_dedup();
        Csr::from_edge_list(&el)
    }

    #[test]
    fn isolated_vertices_all_in() {
        let g = Csr::from_edge_list(&EdgeList::new(4));
        let mis = maximal_independent_set(&g, 1);
        assert_eq!(mis, vec![true; 4]);
        validate_mis(&g, &mis).unwrap();
    }

    #[test]
    fn edge_picks_exactly_one() {
        let g = undirected(2, &[(0, 1)]);
        let mis = maximal_independent_set(&g, 1);
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
        validate_mis(&g, &mis).unwrap();
    }

    #[test]
    fn triangle_picks_one() {
        let g = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        let mis = maximal_independent_set(&g, 5);
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
        validate_mis(&g, &mis).unwrap();
    }

    #[test]
    fn deterministic_for_seed() {
        let g = gnm_undirected(100, 300, 3);
        let a = maximal_independent_set(&g, 42);
        let b = maximal_independent_set(&g, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..5 {
            let g = gnm_undirected(150, 400, seed);
            let mis = maximal_independent_set(&g, seed);
            validate_mis(&g, &mis).unwrap();
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        assert!(maximal_independent_set(&g, 0).is_empty());
    }
}
