//! Parallel graph algorithms over [`crate::Csr`].
//!
//! These are the "highly-tuned, parallel graph algorithms in the
//! traditional graph library" that NWHy delegates to once a hypergraph has
//! been projected to a lower-order graph (s-line graph, clique expansion,
//! or adjoin graph).

pub mod betweenness;
pub mod bfs;
pub mod cc;
pub mod closeness;
pub mod kcore;
pub mod ktruss;
pub mod mis;
pub mod pagerank;
pub mod sssp;
pub mod triangles;

pub use betweenness::{betweenness_centrality, betweenness_sampled};
pub use bfs::{bfs_bottom_up, bfs_direction_optimizing, bfs_top_down, BfsResult};
pub use cc::{afforest, cc_label_propagation, component_sizes, num_components, shiloach_vishkin};
pub use closeness::{closeness_centrality, eccentricity, harmonic_closeness_centrality};
pub use kcore::kcore_decomposition;
pub use ktruss::{ktruss_edges, max_truss, truss_numbers};
pub use mis::maximal_independent_set;
pub use pagerank::pagerank;
pub use sssp::{delta_stepping, unweighted_distances};
pub use triangles::triangle_count;
