//! PageRank with the power-iteration pull formulation.
//!
//! Listed among the algorithms hypergraph frameworks provide (§V of the
//! paper: MESH/HyperX implement PageRank); included here so the adjoin and
//! s-line projections can run it unchanged.

use crate::csr::Csr;
use rayon::prelude::*;

/// Options for [`pagerank`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Damping factor (typically 0.85).
    pub damping: f64,
    /// Stop when the L1 change between iterations drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 100,
        }
    }
}

/// Computes PageRank scores (summing to 1.0) on the *pull* direction: each
/// vertex gathers rank from in-neighbors. For the symmetric graphs NWHy
/// produces, in- and out-neighbors coincide, so the input CSR is used
/// directly; for directed graphs pass the transpose.
///
/// Returns `(scores, iterations_used)`.
pub fn pagerank(g: &Csr, opts: PageRankOptions) -> (Vec<f64>, usize) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let out_degree: Vec<usize> = g.degrees();
    let base = (1.0 - opts.damping) / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0f64; n];

    for it in 0..opts.max_iterations {
        // Rank lost to dangling vertices is redistributed uniformly.
        let dangling: f64 = rank
            .par_iter()
            .enumerate()
            .filter(|&(u, _)| out_degree[u] == 0)
            .map(|(_, r)| r)
            .sum();
        let dangling_share = opts.damping * dangling / n as f64;

        next.par_iter_mut().enumerate().for_each(|(v, slot)| {
            let gathered: f64 = g
                .neighbors(v as u32)
                .iter()
                .map(|&u| rank[u as usize] / out_degree[u as usize] as f64)
                .sum();
            *slot = base + dangling_share + opts.damping * gathered;
        });

        let delta: f64 = rank
            .par_iter()
            .zip(next.par_iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < opts.tolerance {
            return (rank, it + 1);
        }
    }
    let iters = opts.max_iterations;
    (rank, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut el = EdgeList::from_edges(n, edges.to_vec());
        el.symmetrize();
        el.sort_dedup();
        Csr::from_edge_list(&el)
    }

    #[test]
    fn sums_to_one() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (pr, _) = pagerank(&g, PageRankOptions::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (pr, _) = pagerank(&g, PageRankOptions::default());
        for &p in &pr {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        let g = undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (pr, _) = pagerank(&g, PageRankOptions::default());
        assert!(pr[0] > pr[1]);
        assert!((pr[1] - pr[4]).abs() < 1e-9, "leaves symmetric");
    }

    #[test]
    fn dangling_vertices_keep_total_mass() {
        // directed-ish: isolated vertex 2 is dangling
        let g = undirected(3, &[(0, 1)]);
        let (pr, _) = pagerank(&g, PageRankOptions::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(pr[2] > 0.0);
    }

    #[test]
    fn converges_quickly_on_small_graph() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let (_, iters) = pagerank(&g, PageRankOptions::default());
        assert!(iters < 100);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        let (pr, iters) = pagerank(&g, PageRankOptions::default());
        assert!(pr.is_empty());
        assert_eq!(iters, 0);
    }
}
