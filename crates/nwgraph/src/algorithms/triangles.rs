//! Triangle counting by sorted-adjacency intersection.
//!
//! Counts each triangle once using the "forward" orientation trick: only
//! edges (u, v) with u < v are expanded, and only common neighbors w > v
//! are counted. Exercises the same sorted-set intersection kernel the
//! s-line-graph Algorithm 2 builds on.

use crate::csr::Csr;
use crate::Vertex;
use rayon::prelude::*;

/// Number of common elements in two sorted slices.
#[inline]
pub fn sorted_intersection_count(a: &[Vertex], b: &[Vertex]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Like [`sorted_intersection_count`] but stops early once `threshold`
/// common elements are found; returns `min(count, threshold)`. This is the
/// short-circuit the set-intersection s-line algorithm uses: it only needs
/// to know whether the overlap reaches `s`.
#[inline]
pub fn sorted_intersection_at_least(a: &[Vertex], b: &[Vertex], threshold: usize) -> bool {
    if threshold == 0 {
        return true;
    }
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                if count >= threshold {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
    }
    false
}

/// [`sorted_intersection_at_least`] that also adds the number of element
/// comparisons performed (merge-loop iterations) to `comparisons`. The
/// instrumented s-line kernels use this variant when observability is on;
/// the tally is a plain `&mut u64` so this crate stays metrics-agnostic.
#[inline]
pub fn sorted_intersection_at_least_counting(
    a: &[Vertex],
    b: &[Vertex],
    threshold: usize,
    comparisons: &mut u64,
) -> bool {
    if threshold == 0 {
        return true;
    }
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        *comparisons += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                if count >= threshold {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
    }
    false
}

/// Exact triangle count of an undirected graph (each triangle counted
/// once).
pub fn triangle_count(g: &Csr) -> u64 {
    (0..g.num_vertices() as Vertex)
        .into_par_iter()
        .map(|u| {
            let nbrs_u = g.neighbors(u);
            // only higher neighbors of u
            let start = nbrs_u.partition_point(|&v| v <= u);
            let mut local = 0u64;
            for &v in &nbrs_u[start..] {
                let nbrs_v = g.neighbors(v);
                // count w adjacent to both u and v with w > v
                let su = nbrs_u.partition_point(|&w| w <= v);
                let sv = nbrs_v.partition_point(|&w| w <= v);
                local += sorted_intersection_count(&nbrs_u[su..], &nbrs_v[sv..]) as u64;
            }
            local
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut el = EdgeList::from_edges(n, edges.to_vec());
        el.symmetrize();
        el.sort_dedup();
        Csr::from_edge_list(&el)
    }

    #[test]
    fn intersection_count_basics() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1, 2]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn intersection_at_least_short_circuits() {
        assert!(sorted_intersection_at_least(&[1, 2, 3], &[1, 9], 1));
        assert!(!sorted_intersection_at_least(&[1, 2, 3], &[4, 5], 1));
        assert!(sorted_intersection_at_least(&[1, 2], &[5, 9], 0));
        assert!(!sorted_intersection_at_least(&[1, 2, 3], &[2, 3], 3));
    }

    #[test]
    fn single_triangle() {
        let g = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn square_has_none() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn complete_graph_count() {
        // K5 has C(5,3) = 10 triangles
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = undirected(5, &edges);
        assert_eq!(triangle_count(&g), 10);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        let g = undirected(4, &[(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        assert_eq!(triangle_count(&g), 0);
    }
}
