//! k-truss decomposition by parallel triangle-support peeling.
//!
//! The k-truss is the largest subgraph in which every edge participates
//! in at least `k − 2` triangles — a cohesion measure one notch finer
//! than k-core, and a standard member of the parallel-graph-kernel
//! canon. On s-line graphs it isolates clusters of hyperedges whose
//! pairwise overlaps are mutually reinforced.

use crate::algorithms::triangles::sorted_intersection_count;
use crate::csr::Csr;
use crate::Vertex;
use nwhy_util::fxhash::FxHashMap;
use rayon::prelude::*;

/// Computes, for every undirected edge `(u, v)` with `u < v`, its *truss
/// number*: the largest `k` such that the edge survives in the k-truss.
/// Isolated edges (no triangles) have truss number 2.
///
/// Input must be a simple symmetric graph.
pub fn truss_numbers(g: &Csr) -> FxHashMap<(Vertex, Vertex), u32> {
    // support[e] = number of triangles through edge e
    let edges: Vec<(Vertex, Vertex)> = g
        .par_iter()
        .flat_map_iter(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
        .collect();
    let mut support: FxHashMap<(Vertex, Vertex), u32> = edges
        .par_iter()
        .map(|&(u, v)| {
            let c = sorted_intersection_count(g.neighbors(u), g.neighbors(v)) as u32;
            ((u, v), c)
        })
        .collect();

    let mut truss: FxHashMap<(Vertex, Vertex), u32> = FxHashMap::default();
    let mut alive: FxHashMap<(Vertex, Vertex), bool> = edges.iter().map(|&e| (e, true)).collect();
    let mut remaining = edges.len();
    let mut k = 2u32;

    let canon = |a: Vertex, b: Vertex| if a < b { (a, b) } else { (b, a) };

    while remaining > 0 {
        // peel all edges with support < k - 2, cascading
        loop {
            let to_remove: Vec<(Vertex, Vertex)> = support
                .iter()
                .filter(|(e, &s)| alive[e] && s < k - 2)
                .map(|(&e, _)| e)
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for &(u, v) in &to_remove {
                alive.insert((u, v), false);
                truss.insert((u, v), k - 1);
                remaining -= 1;
                // decrement support of the other two edges of each
                // triangle through (u, v)
                let (su, sv) = (g.neighbors(u), g.neighbors(v));
                let mut i = 0;
                let mut j = 0;
                while i < su.len() && j < sv.len() {
                    match su[i].cmp(&sv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let w = su[i];
                            let e1 = canon(u, w);
                            let e2 = canon(v, w);
                            if alive.get(&e1) == Some(&true) && alive.get(&e2) == Some(&true) {
                                if let Some(s) = support.get_mut(&e1) {
                                    *s = s.saturating_sub(1);
                                }
                                if let Some(s) = support.get_mut(&e2) {
                                    *s = s.saturating_sub(1);
                                }
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        k += 1;
    }
    // edges never peeled before exhaustion already got their number; any
    // still-alive edges (none, since loop runs to remaining == 0) skipped
    truss
}

/// The maximum truss number in the graph (`0` for an edgeless graph,
/// `2` for a triangle-free one).
pub fn max_truss(g: &Csr) -> u32 {
    truss_numbers(g).values().copied().max().unwrap_or(0)
}

/// The edges of the k-truss subgraph, canonical `(u, v)` with `u < v`.
pub fn ktruss_edges(g: &Csr, k: u32) -> Vec<(Vertex, Vertex)> {
    let mut out: Vec<(Vertex, Vertex)> = truss_numbers(g)
        .into_iter()
        .filter(|&(_, t)| t >= k)
        .map(|(e, _)| e)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut el = EdgeList::from_edges(n, edges.to_vec());
        el.symmetrize();
        el.sort_dedup();
        Csr::from_edge_list(&el)
    }

    #[test]
    fn triangle_is_3_truss() {
        let g = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        let t = truss_numbers(&g);
        assert!(t.values().all(|&k| k == 3), "{t:?}");
        assert_eq!(max_truss(&g), 3);
    }

    #[test]
    fn path_is_2_truss() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = truss_numbers(&g);
        assert!(t.values().all(|&k| k == 2));
        assert!(ktruss_edges(&g, 3).is_empty());
    }

    #[test]
    fn k4_is_4_truss() {
        let g = undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let t = truss_numbers(&g);
        assert!(t.values().all(|&k| k == 4), "{t:?}");
        assert_eq!(ktruss_edges(&g, 4).len(), 6);
    }

    #[test]
    fn k4_with_tail_mixed_truss() {
        // K4 on {0,1,2,3} plus tail 3-4
        let g = undirected(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let t = truss_numbers(&g);
        assert_eq!(t[&(3, 4)], 2);
        assert_eq!(t[&(0, 1)], 4);
        assert_eq!(ktruss_edges(&g, 4).len(), 6);
        assert_eq!(ktruss_edges(&g, 2).len(), 7);
    }

    #[test]
    fn two_triangles_sharing_edge() {
        // triangles (0,1,2) and (1,2,3) share edge (1,2)
        let g = undirected(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let t = truss_numbers(&g);
        // peeling at k=4: every edge has support 1 except (1,2) with 2;
        // removing the support-1 edges drops (1,2) too → all truss 3
        assert!(t.values().all(|&k| k == 3), "{t:?}");
    }

    #[test]
    fn empty_and_edgeless() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        assert_eq!(max_truss(&g), 0);
        let g = Csr::from_edge_list(&EdgeList::new(3));
        assert!(truss_numbers(&g).is_empty());
    }

    #[test]
    fn truss_is_at_most_core_plus_one() {
        // sanity law: truss(e) ≤ min(core(u), core(v)) + 1
        let g = crate::random::gnm_undirected(40, 120, 5);
        let core = crate::algorithms::kcore::kcore_decomposition(&g);
        for ((u, v), t) in truss_numbers(&g) {
            let bound = core[u as usize].min(core[v as usize]) + 1;
            assert!(t <= bound, "edge ({u},{v}) truss {t} > bound {bound}");
        }
    }
}
