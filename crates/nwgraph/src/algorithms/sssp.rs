//! Single-source shortest paths.
//!
//! NWHy's `s_distance`/`s_path` queries reduce to shortest paths on the
//! s-line graph. Unweighted distances come straight from BFS levels; the
//! weighted case uses Δ-stepping (Meyer & Sanders), the standard parallel
//! SSSP used by shared-memory graph frameworks.

use crate::algorithms::bfs::bfs_direction_optimizing;
use crate::csr::Csr;
use crate::{Vertex, INVALID_VERTEX};
use nwhy_util::sync::{AtomicU64, Ordering};
use rayon::prelude::*;
use std::sync::Mutex;

/// Hop distances from `source` (`u32::MAX` ⇒ unreachable). A thin wrapper
/// over direction-optimizing BFS.
pub fn unweighted_distances(g: &Csr, source: Vertex) -> Vec<u32> {
    bfs_direction_optimizing(g, source).levels
}

/// Reconstructs one shortest path `source → dest` from a parent array
/// (as produced by BFS); `None` if `dest` is unreachable.
pub fn path_from_parents(parents: &[Vertex], source: Vertex, dest: Vertex) -> Option<Vec<Vertex>> {
    if parents[dest as usize] == INVALID_VERTEX {
        return None;
    }
    let mut path = vec![dest];
    let mut cur = dest;
    while cur != source {
        cur = parents[cur as usize];
        path.push(cur);
        if path.len() > parents.len() {
            return None; // defensive: malformed parent array
        }
    }
    path.reverse();
    Some(path)
}

/// Atomic f64 min via bit-ordered u64 CAS (non-negative floats order the
/// same as their bit patterns).
#[inline]
fn atomic_min_f64(slot: &AtomicU64, val: f64) -> bool {
    debug_assert!(val >= 0.0);
    let bits = val.to_bits();
    let mut cur = slot.load(Ordering::Relaxed);
    while bits < cur {
        match slot.compare_exchange_weak(cur, bits, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => cur = observed,
        }
    }
    false
}

/// Δ-stepping parallel SSSP over non-negative weights. Returns distances
/// (`f64::INFINITY` ⇒ unreachable).
///
/// `delta` is the bucket width; pass `None` to use a heuristic
/// (average edge weight).
///
/// # Panics
/// Panics if the graph has a negative edge weight or `source` is out of
/// range.
pub fn delta_stepping(g: &Csr, source: Vertex, delta: Option<f64>) -> Vec<f64> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range {n}");

    let delta = delta.unwrap_or_else(|| {
        if g.num_edges() == 0 {
            1.0
        } else {
            let total: f64 = (0..n as Vertex)
                .flat_map(|u| g.weighted_neighbors(u).map(|(_, w)| w))
                .sum();
            (total / g.num_edges() as f64).max(f64::MIN_POSITIVE)
        }
    });
    assert!(delta > 0.0, "delta must be positive");

    let dist: Vec<AtomicU64> = (0..n)
        .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
        .collect();
    dist[source as usize].store(0f64.to_bits(), Ordering::Relaxed);

    // Buckets of vertex IDs; bucket i holds tentative distances in
    // [i·Δ, (i+1)·Δ). A simple Mutex-guarded vec-of-vecs is fine: pushes
    // are amortized rare relative to edge relaxations.
    let buckets: Mutex<Vec<Vec<Vertex>>> = Mutex::new(vec![vec![source]]);

    let bucket_of = |d: f64| (d / delta) as usize;

    let mut current = 0usize;
    loop {
        // Find next non-empty bucket.
        let frontier = {
            let mut b = buckets.lock().unwrap();
            while current < b.len() && b[current].is_empty() {
                current += 1;
            }
            if current >= b.len() {
                break;
            }
            std::mem::take(&mut b[current])
        };

        // Relax all edges of this bucket. Re-insertions into the same
        // bucket are processed in the same outer iteration (light-edge
        // loop folded into re-reading the bucket).
        let reinserted: Vec<Vertex> = frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &u| {
                let du = f64::from_bits(dist[u as usize].load(Ordering::Relaxed));
                // Skip stale entries.
                if bucket_of(du) < current {
                    return acc;
                }
                for (v, w) in g.weighted_neighbors(u) {
                    assert!(w >= 0.0, "negative weight on edge ({u},{v})");
                    let nd = du + w;
                    if atomic_min_f64(&dist[v as usize], nd) {
                        acc.push(v);
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });

        {
            let mut b = buckets.lock().unwrap();
            for v in reinserted {
                let dv = f64::from_bits(dist[v as usize].load(Ordering::Relaxed));
                let idx = bucket_of(dv);
                if idx >= b.len() {
                    b.resize(idx + 1, Vec::new());
                }
                b[idx].push(v);
            }
        }
    }

    dist.into_iter()
        .map(|d| f64::from_bits(d.into_inner()))
        .collect()
}

/// Sequential Dijkstra, used as the test oracle for Δ-stepping.
pub fn dijkstra(g: &Csr, source: Vertex) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f64, Vertex);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("NaN distance")
        }
    }

    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    dist[source as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse(Entry(0.0, source)));
    while let Some(Reverse(Entry(d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in g.weighted_neighbors(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse(Entry(nd, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;
    use crate::random::{connected_undirected, weighted_connected};

    #[test]
    fn unweighted_matches_bfs_levels() {
        let g = connected_undirected(100, 80, 3);
        let d = unweighted_distances(&g, 0);
        let l = bfs_direction_optimizing(&g, 0).levels;
        assert_eq!(d, l);
    }

    #[test]
    fn path_reconstruction() {
        let mut el = EdgeList::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        el.symmetrize();
        let g = Csr::from_edge_list(&el);
        let r = bfs_direction_optimizing(&g, 0);
        let p = path_from_parents(&r.parents, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        assert_eq!(path_from_parents(&r.parents, 0, 0).unwrap(), vec![0]);
    }

    #[test]
    fn path_unreachable_is_none() {
        let g = Csr::from_edge_list(&EdgeList::new(3));
        let r = bfs_direction_optimizing(&g, 0);
        assert!(path_from_parents(&r.parents, 0, 2).is_none());
    }

    #[test]
    fn delta_stepping_tiny_weighted() {
        // 0 -1.0- 1 -1.0- 2, plus a heavy shortcut 0 -5.0- 2
        let el = EdgeList::from_weighted_edges(
            3,
            vec![(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)],
            vec![1.0, 1.0, 1.0, 1.0, 5.0, 5.0],
        );
        let g = Csr::from_edge_list(&el);
        let d = delta_stepping(&g, 0, None);
        assert_eq!(d, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn delta_stepping_unreachable_infinite() {
        let g = Csr::from_edge_list(&EdgeList::new(2));
        let d = delta_stepping(&g, 0, None);
        assert_eq!(d[0], 0.0);
        assert!(d[1].is_infinite());
    }

    #[test]
    fn delta_stepping_matches_dijkstra() {
        for seed in 0..5 {
            let g = weighted_connected(120, 200, seed);
            let want = dijkstra(&g, 0);
            for delta in [None, Some(0.5), Some(2.0), Some(100.0)] {
                let got = delta_stepping(&g, 0, delta);
                for (a, b) in got.iter().zip(&want) {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "seed {seed} delta {delta:?}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_stepping_on_unweighted_graph_counts_hops() {
        let g = connected_undirected(60, 60, 2);
        let got = delta_stepping(&g, 0, None);
        let hops = unweighted_distances(&g, 0);
        for (a, &h) in got.iter().zip(&hops) {
            assert_eq!(*a as u32, h);
        }
    }
}
