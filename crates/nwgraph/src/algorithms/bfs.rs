//! Parallel breadth-first search: top-down, bottom-up, and
//! direction-optimizing (Beamer, Asanović, Patterson — the algorithm behind
//! NWHy's AdjoinBFS).
//!
//! All three variants produce identical level arrays; parents may differ
//! (any parent on a shortest path is valid), which the tests check by
//! validating the parent forest rather than comparing it exactly.

use crate::csr::Csr;
use crate::{Vertex, INVALID_VERTEX};
use nwhy_util::bitmap::AtomicBitmap;
use nwhy_util::sync::{AtomicU32, AtomicUsize, Ordering};
use rayon::prelude::*;

/// The output of a BFS traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// `parents[v]` is the BFS-tree parent of `v`; the source is its own
    /// parent; unreachable vertices hold [`INVALID_VERTEX`].
    pub parents: Vec<Vertex>,
    /// `levels[v]` is the hop distance from the source;
    /// [`INVALID_VERTEX`] for unreachable vertices.
    pub levels: Vec<Vertex>,
}

impl BfsResult {
    /// Number of vertices reached (including the source).
    pub fn num_reached(&self) -> usize {
        self.levels.iter().filter(|&&l| l != INVALID_VERTEX).count()
    }

    /// Largest finite level (0 if only the source was reached).
    pub fn max_level(&self) -> u32 {
        self.levels
            .iter()
            .copied()
            .filter(|&l| l != INVALID_VERTEX)
            .max()
            .unwrap_or(0)
    }
}

fn empty_result(n: usize) -> (Vec<AtomicU32>, Vec<AtomicU32>) {
    let parents: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    (parents, levels)
}

fn finish(parents: Vec<AtomicU32>, levels: Vec<AtomicU32>) -> BfsResult {
    BfsResult {
        parents: parents.into_iter().map(AtomicU32::into_inner).collect(),
        levels: levels.into_iter().map(AtomicU32::into_inner).collect(),
    }
}

/// Top-down parallel BFS: each level expands the sparse frontier, claiming
/// unvisited neighbors with a CAS on the parent slot.
///
/// # Examples
///
/// ```
/// use nwgraph::algorithms::bfs::bfs_top_down;
/// use nwgraph::{Csr, EdgeList};
///
/// let mut el = EdgeList::from_edges(4, vec![(0, 1), (1, 2)]);
/// el.symmetrize();
/// let g = Csr::from_edge_list(&el);
/// let r = bfs_top_down(&g, 0);
/// assert_eq!(r.levels, vec![0, 1, 2, u32::MAX]); // vertex 3 unreachable
/// assert_eq!(r.num_reached(), 3);
/// ```
pub fn bfs_top_down(g: &Csr, source: Vertex) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range {n}");
    let (parents, levels) = empty_result(n);
    parents[source as usize].store(source, Ordering::Relaxed);
    levels[source as usize].store(0, Ordering::Relaxed);

    let mut frontier = vec![source];
    let mut depth: u32 = 0;
    while !frontier.is_empty() {
        depth += 1;
        frontier = top_down_step(g, &frontier, &parents, &levels, depth);
    }
    finish(parents, levels)
}

/// One top-down expansion step; returns the next frontier.
fn top_down_step(
    g: &Csr,
    frontier: &[Vertex],
    parents: &[AtomicU32],
    levels: &[AtomicU32],
    depth: u32,
) -> Vec<Vertex> {
    frontier
        .par_iter()
        .fold(Vec::new, |mut next, &u| {
            for &v in g.neighbors(u) {
                if parents[v as usize].load(Ordering::Relaxed) == INVALID_VERTEX
                    && parents[v as usize]
                        .compare_exchange(INVALID_VERTEX, u, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    levels[v as usize].store(depth, Ordering::Relaxed);
                    next.push(v);
                }
            }
            next
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

/// Bottom-up parallel BFS: each level, every *unvisited* vertex scans its
/// own neighbors looking for a frontier member. Efficient when the
/// frontier is a large fraction of the graph.
///
/// Requires a symmetric (undirected) graph to be equivalent to top-down.
pub fn bfs_bottom_up(g: &Csr, source: Vertex) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range {n}");
    let (parents, levels) = empty_result(n);
    parents[source as usize].store(source, Ordering::Relaxed);
    levels[source as usize].store(0, Ordering::Relaxed);

    let mut current = AtomicBitmap::new(n);
    current.set(source as usize);
    let mut depth: u32 = 0;
    loop {
        depth += 1;
        let (next, advanced) = bottom_up_step(g, &current, &parents, &levels, depth);
        if advanced == 0 {
            break;
        }
        current = next;
    }
    finish(parents, levels)
}

/// One bottom-up sweep; returns the next dense frontier and how many
/// vertices joined it.
fn bottom_up_step(
    g: &Csr,
    current: &AtomicBitmap,
    parents: &[AtomicU32],
    levels: &[AtomicU32],
    depth: u32,
) -> (AtomicBitmap, usize) {
    let n = g.num_vertices();
    let next = AtomicBitmap::new(n);
    let advanced = AtomicUsize::new(0);
    (0..n).into_par_iter().for_each(|v| {
        if parents[v].load(Ordering::Relaxed) != INVALID_VERTEX {
            return;
        }
        for &u in g.neighbors(v as Vertex) {
            if current.get(u as usize) {
                parents[v].store(u, Ordering::Relaxed);
                levels[v].store(depth, Ordering::Relaxed);
                next.set(v);
                advanced.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    });
    (next, advanced.load(Ordering::Relaxed))
}

/// Beamer's α parameter: switch to bottom-up when the frontier's out-edge
/// count exceeds `remaining_edges / ALPHA`.
const ALPHA: usize = 15;
/// Beamer's β parameter: switch back to top-down when the frontier shrinks
/// below `n / BETA`.
const BETA: usize = 18;

/// Direction-optimizing BFS (Beamer et al. 2013): starts top-down, hops to
/// bottom-up when the frontier gets edge-heavy, and returns to top-down as
/// it thins out. This is the algorithm NWHy's AdjoinBFS uses.
///
/// Correct for symmetric (undirected) graphs, which all NWHy projections
/// (adjoin, s-line, clique expansion) are.
pub fn bfs_direction_optimizing(g: &Csr, source: Vertex) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range {n}");
    let (parents, levels) = empty_result(n);
    parents[source as usize].store(source, Ordering::Relaxed);
    levels[source as usize].store(0, Ordering::Relaxed);

    let total_edges = g.num_edges();
    let mut scanned_edges = g.degree(source);
    let mut frontier = vec![source];
    let mut depth: u32 = 0;

    while !frontier.is_empty() {
        // Edges incident to the sparse frontier.
        let frontier_edges: usize = frontier.par_iter().map(|&u| g.degree(u)).sum();
        let remaining = total_edges.saturating_sub(scanned_edges);
        if frontier_edges > remaining / ALPHA && !frontier.is_empty() {
            // Dense phase: convert to bitmap and run bottom-up sweeps until
            // the frontier thins below n/BETA.
            let mut current = AtomicBitmap::new(n);
            for &u in &frontier {
                current.set(u as usize);
            }
            loop {
                depth += 1;
                let (next, advanced) = bottom_up_step(g, &current, &parents, &levels, depth);
                if advanced == 0 {
                    return finish(parents, levels);
                }
                scanned_edges += advanced; // approximation of work done
                let frontier_size = advanced;
                current = next;
                if frontier_size < n / BETA.max(1) {
                    break;
                }
            }
            // Convert dense frontier back to a sparse list.
            frontier = current.iter_ones().map(|v| v as Vertex).collect();
        } else {
            depth += 1;
            scanned_edges += frontier_edges;
            frontier = top_down_step(g, &frontier, &parents, &levels, depth);
        }
    }
    finish(parents, levels)
}

/// Validates that `r` is a legal BFS forest for `g` from `source`:
/// level(source)=0, level(child)=level(parent)+1, every edge spans ≤ 1
/// level, and reachability matches. Shared by the test suites of the BFS
/// variants (including HyperBFS and AdjoinBFS in `nwhy-core`).
pub fn validate_bfs(g: &Csr, source: Vertex, r: &BfsResult) -> Result<(), String> {
    let n = g.num_vertices();
    if r.parents.len() != n || r.levels.len() != n {
        return Err("result length mismatch".into());
    }
    if r.levels[source as usize] != 0 || r.parents[source as usize] != source {
        return Err("source not its own root".into());
    }
    for v in 0..n as Vertex {
        let lvl = r.levels[v as usize];
        let par = r.parents[v as usize];
        if (lvl == INVALID_VERTEX) != (par == INVALID_VERTEX) {
            return Err(format!("vertex {v}: level/parent visited-state disagree"));
        }
        if lvl != INVALID_VERTEX && v != source {
            let plvl = r.levels[par as usize];
            if plvl == INVALID_VERTEX || plvl + 1 != lvl {
                return Err(format!("vertex {v}: level {lvl} but parent level {plvl}"));
            }
            if !g.neighbors(par).contains(&v) {
                return Err(format!("vertex {v}: parent {par} is not a neighbor"));
            }
        }
    }
    // Every edge from a visited vertex must reach a visited vertex within
    // one level (undirected BFS property).
    for (u, nbrs) in g.iter() {
        let lu = r.levels[u as usize];
        if lu == INVALID_VERTEX {
            continue;
        }
        for &v in nbrs {
            let lv = r.levels[v as usize];
            if lv == INVALID_VERTEX {
                return Err(format!("edge ({u},{v}) leaves the visited set"));
            }
            if lv + 1 < lu || lu + 1 < lv {
                return Err(format!("edge ({u},{v}) spans levels {lu}→{lv}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;
    use crate::random::connected_undirected;
    use proptest::prelude::*;

    fn path_graph(n: usize) -> Csr {
        let mut el = EdgeList::new(n);
        for v in 1..n as Vertex {
            el.push(v - 1, v);
        }
        el.symmetrize();
        Csr::from_edge_list(&el)
    }

    #[test]
    fn top_down_on_path() {
        let g = path_graph(5);
        let r = bfs_top_down(&g, 0);
        assert_eq!(r.levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.parents, vec![0, 0, 1, 2, 3]);
        validate_bfs(&g, 0, &r).unwrap();
    }

    #[test]
    fn bottom_up_on_path() {
        let g = path_graph(5);
        let r = bfs_bottom_up(&g, 0);
        assert_eq!(r.levels, vec![0, 1, 2, 3, 4]);
        validate_bfs(&g, 0, &r).unwrap();
    }

    #[test]
    fn direction_optimizing_on_path() {
        let g = path_graph(5);
        let r = bfs_direction_optimizing(&g, 0);
        assert_eq!(r.levels, vec![0, 1, 2, 3, 4]);
        validate_bfs(&g, 0, &r).unwrap();
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.symmetrize();
        let g = Csr::from_edge_list(&el);
        let r = bfs_top_down(&g, 0);
        assert_eq!(r.levels[2], INVALID_VERTEX);
        assert_eq!(r.parents[3], INVALID_VERTEX);
        assert_eq!(r.num_reached(), 2);
    }

    #[test]
    fn single_vertex_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(1));
        for f in [bfs_top_down, bfs_bottom_up, bfs_direction_optimizing] {
            let r = f(&g, 0);
            assert_eq!(r.levels, vec![0]);
            assert_eq!(r.max_level(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn source_out_of_range_panics() {
        let g = Csr::from_edge_list(&EdgeList::new(2));
        bfs_top_down(&g, 5);
    }

    #[test]
    fn star_graph_levels() {
        // hub 0 with 50 leaves — a frontier explosion that triggers the
        // bottom-up switch in the direction-optimizing variant.
        let mut el = EdgeList::new(51);
        for v in 1..=50 {
            el.push(0, v);
        }
        el.symmetrize();
        let g = Csr::from_edge_list(&el);
        for f in [bfs_top_down, bfs_bottom_up, bfs_direction_optimizing] {
            let r = f(&g, 0);
            assert_eq!(r.levels[0], 0);
            assert!((1..=50).all(|v| r.levels[v] == 1));
            assert_eq!(r.max_level(), 1);
        }
    }

    #[test]
    fn variants_agree_on_random_graphs() {
        for seed in 0..5 {
            let g = connected_undirected(300, 400, seed);
            let td = bfs_top_down(&g, 0);
            let bu = bfs_bottom_up(&g, 0);
            let d_o = bfs_direction_optimizing(&g, 0);
            assert_eq!(td.levels, bu.levels, "seed {seed}");
            assert_eq!(td.levels, d_o.levels, "seed {seed}");
            for r in [&td, &bu, &d_o] {
                validate_bfs(&g, 0, r).unwrap();
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_bfs_variants_equal_levels(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..150),
            source in 0u32..30,
        ) {
            let mut el = EdgeList::from_edges(30, edges);
            el.remove_self_loops();
            el.symmetrize();
            el.sort_dedup();
            let g = Csr::from_edge_list(&el);
            let td = bfs_top_down(&g, source);
            let bu = bfs_bottom_up(&g, source);
            let d_o = bfs_direction_optimizing(&g, source);
            prop_assert_eq!(&td.levels, &bu.levels);
            prop_assert_eq!(&td.levels, &d_o.levels);
            validate_bfs(&g, source, &td).map_err(TestCaseError::fail)?;
            validate_bfs(&g, source, &bu).map_err(TestCaseError::fail)?;
            validate_bfs(&g, source, &d_o).map_err(TestCaseError::fail)?;
        }
    }
}
