//! Relabel-by-degree (permute-by-row/column).
//!
//! §III-B.2 of the NWHy paper: relabeling vertices in degree order improves
//! workload distribution and memory locality for skewed graphs, but cannot
//! be applied to an adjoin graph directly because it would intermingle the
//! hyperedge and hypernode ID ranges — the motivation for the queue-based
//! s-line algorithms (Algorithms 1–2), which accept arbitrary ID
//! permutations.
//!
//! A *permutation* here maps `new ID → old ID`; the *inverse* maps
//! `old ID → new ID`.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::Vertex;
use rayon::prelude::*;

/// Sort direction for degree relabeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Highest-degree vertices get the smallest new IDs.
    Descending,
    /// Lowest-degree vertices get the smallest new IDs.
    Ascending,
}

/// Computes the degree permutation of `degrees`: `perm[new] = old`.
/// Ties are broken by old ID, making the permutation deterministic.
pub fn degree_permutation(degrees: &[usize], dir: Direction) -> Vec<Vertex> {
    let mut perm: Vec<Vertex> = (0..degrees.len() as u32).collect();
    match dir {
        Direction::Descending => {
            perm.par_sort_by_key(|&v| (std::cmp::Reverse(degrees[v as usize]), v))
        }
        Direction::Ascending => perm.par_sort_by_key(|&v| (degrees[v as usize], v)),
    }
    perm
}

/// Inverts a permutation: `inv[perm[i]] = i`.
pub fn invert_permutation(perm: &[Vertex]) -> Vec<Vertex> {
    let mut inv = vec![0 as Vertex; perm.len()];
    for (new_id, &old_id) in perm.iter().enumerate() {
        inv[old_id as usize] = new_id as Vertex;
    }
    inv
}

/// Applies `inv` (old → new) to every endpoint of `el`, producing the
/// relabeled edge list.
pub fn relabel_edge_list(el: &EdgeList, inv: &[Vertex]) -> EdgeList {
    assert_eq!(inv.len(), el.num_vertices(), "permutation size mismatch");
    let edges: Vec<(Vertex, Vertex)> = el
        .edges()
        .par_iter()
        .map(|&(u, v)| (inv[u as usize], inv[v as usize]))
        .collect();
    match el.weights() {
        None => EdgeList::from_edges(el.num_vertices(), edges),
        Some(ws) => EdgeList::from_weighted_edges(el.num_vertices(), edges, ws.to_vec()),
    }
}

/// Relabels a square CSR by out-degree; returns the new CSR and the
/// permutation (`perm[new] = old`) needed to map results back.
pub fn relabel_by_degree(g: &Csr, dir: Direction) -> (Csr, Vec<Vertex>) {
    let perm = degree_permutation(&g.degrees(), dir);
    let inv = invert_permutation(&perm);
    let el = relabel_edge_list(&g.to_edge_list(), &inv);
    (Csr::from_edge_list(&el), perm)
}

/// Maps a per-vertex result array computed on relabeled IDs back to the
/// original ID order: `out[old] = result[new]` where `perm[new] = old`.
pub fn unpermute<T: Copy + Send + Sync>(result: &[T], perm: &[Vertex]) -> Vec<T> {
    assert_eq!(result.len(), perm.len(), "result/permutation size mismatch");
    let mut out = vec![result[0]; result.len()];
    for (new_id, &old_id) in perm.iter().enumerate() {
        out[old_id as usize] = result[new_id];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn descending_puts_hubs_first() {
        let degrees = vec![1, 5, 3, 5];
        let perm = degree_permutation(&degrees, Direction::Descending);
        assert_eq!(perm, vec![1, 3, 2, 0]);
    }

    #[test]
    fn ascending_puts_leaves_first() {
        let degrees = vec![1, 5, 3, 5];
        let perm = degree_permutation(&degrees, Direction::Ascending);
        assert_eq!(perm, vec![0, 2, 1, 3]);
    }

    #[test]
    fn invert_roundtrip() {
        let perm = vec![2u32, 0, 3, 1];
        let inv = invert_permutation(&perm);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        assert_eq!(invert_permutation(&inv), perm);
    }

    #[test]
    fn relabel_preserves_structure() {
        // star: 0 is the hub
        let mut el = EdgeList::from_edges(4, vec![(0, 1), (0, 2), (0, 3)]);
        el.symmetrize();
        let g = Csr::from_edge_list(&el);
        let (rg, perm) = relabel_by_degree(&g, Direction::Descending);
        // hub keeps id 0 under descending (it has max degree)
        assert_eq!(perm[0], 0);
        assert_eq!(rg.degree(0), 3);
        assert_eq!(rg.num_edges(), g.num_edges());
        // ascending: hub gets the largest id
        let (rg2, perm2) = relabel_by_degree(&g, Direction::Ascending);
        assert_eq!(perm2[3], 0);
        assert_eq!(rg2.degree(3), 3);
    }

    #[test]
    fn unpermute_restores_original_order() {
        let perm = vec![2u32, 0, 1]; // new0=old2, new1=old0, new2=old1
        let result_new = vec![20, 0, 10];
        assert_eq!(unpermute(&result_new, &perm), vec![0, 10, 20]);
    }

    proptest! {
        #[test]
        fn prop_permutation_is_bijection(degrees in proptest::collection::vec(0usize..50, 1..60)) {
            for dir in [Direction::Ascending, Direction::Descending] {
                let perm = degree_permutation(&degrees, dir);
                let mut sorted = perm.clone();
                sorted.sort_unstable();
                prop_assert_eq!(sorted, (0..degrees.len() as u32).collect::<Vec<_>>());
            }
        }

        #[test]
        fn prop_degree_order_holds(degrees in proptest::collection::vec(0usize..50, 1..60)) {
            let perm = degree_permutation(&degrees, Direction::Descending);
            for w in perm.windows(2) {
                prop_assert!(degrees[w[0] as usize] >= degrees[w[1] as usize]);
            }
            let perm = degree_permutation(&degrees, Direction::Ascending);
            for w in perm.windows(2) {
                prop_assert!(degrees[w[0] as usize] <= degrees[w[1] as usize]);
            }
        }

        #[test]
        fn prop_relabel_preserves_degree_multiset(
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..100)
        ) {
            let el = EdgeList::from_edges(12, edges);
            let g = Csr::from_edge_list(&el);
            let (rg, _) = relabel_by_degree(&g, Direction::Descending);
            let mut d1 = g.degrees();
            let mut d2 = rg.degrees();
            d1.sort_unstable();
            d2.sort_unstable();
            prop_assert_eq!(d1, d2);
        }
    }
}
