//! Neighborhood-aware parallel ranges — the paper's *cyclic neighbor
//! range* adaptor (§III-D).
//!
//! A cyclic range hands workers vertex IDs in strided order; a *cyclic
//! neighbor range* hands them `(vertex, neighborhood)` tuples so kernels
//! that only need the adjacency slice avoid re-indexing the CSR. The
//! same per-neighborhood interface is provided for blocked partitioning,
//! making the partitioning strategy a drop-in parameter for every
//! neighborhood-driven kernel (Listing 4's third variant).

use crate::csr::Csr;
use crate::Vertex;
use nwhy_util::partition::{blocked_ranges, CyclicRange, Strategy};
use rayon::prelude::*;

/// Runs `f(vertex, neighbors)` for every vertex of `g` in parallel under
/// the given partitioning strategy.
pub fn par_for_each_neighborhood<F>(g: &Csr, strategy: Strategy, f: F)
where
    F: Fn(Vertex, &[Vertex]) + Sync + Send,
{
    let n = g.num_vertices();
    match strategy {
        Strategy::Blocked { num_bins: 0 } => {
            (0..n).into_par_iter().for_each(|u| {
                let u = u as Vertex;
                f(u, g.neighbors(u));
            });
        }
        Strategy::Blocked { num_bins } => {
            blocked_ranges(n, num_bins).into_par_iter().for_each(|r| {
                for u in r {
                    let u = u as Vertex;
                    f(u, g.neighbors(u));
                }
            });
        }
        Strategy::Cyclic { .. } => {
            let bins = strategy.bins();
            (0..bins).into_par_iter().for_each(|bin| {
                for u in CyclicRange::new(bin, bins, n) {
                    let u = u as Vertex;
                    f(u, g.neighbors(u));
                }
            });
        }
    }
}

/// Like [`par_for_each_neighborhood`] with a per-worker accumulator
/// (created by `init`, collected and returned) — the pattern the s-line
/// construction kernels use for thread-local edge lists.
pub fn par_neighborhoods_with<A, I, F>(g: &Csr, strategy: Strategy, init: I, f: F) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, Vertex, &[Vertex]) + Sync,
{
    let n = g.num_vertices();
    match strategy {
        Strategy::Blocked { .. } => {
            let bins = strategy.bins();
            blocked_ranges(n, bins)
                .into_par_iter()
                .map(|r| {
                    let mut acc = init();
                    for u in r {
                        let u = u as Vertex;
                        f(&mut acc, u, g.neighbors(u));
                    }
                    acc
                })
                .collect()
        }
        Strategy::Cyclic { .. } => {
            let bins = strategy.bins();
            (0..bins)
                .into_par_iter()
                .map(|bin| {
                    let mut acc = init();
                    for u in CyclicRange::new(bin, bins, n) {
                        let u = u as Vertex;
                        f(&mut acc, u, g.neighbors(u));
                    }
                    acc
                })
                .collect()
        }
    }
}

/// Sequential iterator over `(vertex, neighborhood)` tuples in cyclic
/// order for one bin — the literal `cyclic_neighbor_range` object of
/// Listing 4, for callers that drive the loop themselves.
pub fn cyclic_neighbor_range(
    g: &Csr,
    bin: usize,
    num_bins: usize,
) -> impl Iterator<Item = (Vertex, &[Vertex])> + '_ {
    CyclicRange::new(bin, num_bins, g.num_vertices()).map(move |u| {
        let u = u as Vertex;
        (u, g.neighbors(u))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;
    // lint: test-only counters; plain std atomics keep the test
    // independent of the loom-switched re-export
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn toy() -> Csr {
        let el = EdgeList::from_edges(5, vec![(0, 1), (0, 2), (1, 3), (4, 0)]);
        Csr::from_edge_list(&el)
    }

    #[test]
    fn every_strategy_visits_each_neighborhood_once() {
        let g = toy();
        for strategy in [
            Strategy::AUTO,
            Strategy::Blocked { num_bins: 2 },
            Strategy::Cyclic { num_bins: 3 },
            Strategy::Cyclic { num_bins: 0 },
        ] {
            let visits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
            let degree_sum = AtomicUsize::new(0);
            par_for_each_neighborhood(&g, strategy, |u, nbrs| {
                visits[u as usize].fetch_add(1, Ordering::Relaxed);
                degree_sum.fetch_add(nbrs.len(), Ordering::Relaxed);
            });
            assert!(
                visits.iter().all(|v| v.load(Ordering::Relaxed) == 1),
                "{strategy:?}"
            );
            assert_eq!(degree_sum.load(Ordering::Relaxed), 4, "{strategy:?}");
        }
    }

    #[test]
    fn neighborhoods_match_direct_indexing() {
        let g = toy();
        par_for_each_neighborhood(&g, Strategy::Cyclic { num_bins: 2 }, |u, nbrs| {
            assert_eq!(nbrs, g.neighbors(u));
        });
    }

    #[test]
    fn accumulators_cover_all_vertices() {
        let g = toy();
        for strategy in [
            Strategy::Blocked { num_bins: 2 },
            Strategy::Cyclic { num_bins: 2 },
        ] {
            let accs = par_neighborhoods_with(&g, strategy, Vec::new, |acc, u, _| acc.push(u));
            let mut all: Vec<u32> = accs.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn sequential_cyclic_neighbor_range() {
        let g = toy();
        let items: Vec<(u32, usize)> = cyclic_neighbor_range(&g, 1, 2)
            .map(|(u, nbrs)| (u, nbrs.len()))
            .collect();
        assert_eq!(items, vec![(1, 1), (3, 0)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        par_for_each_neighborhood(&g, Strategy::AUTO, |_, _| panic!("no vertices"));
        assert_eq!(cyclic_neighbor_range(&g, 0, 1).count(), 0);
    }
}
