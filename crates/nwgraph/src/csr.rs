//! Compressed Sparse Row adjacency — the central graph data structure.
//!
//! A [`Csr`] stores, for each source vertex, a contiguous slice of target
//! IDs. It is deliberately *rectangular*: the source and target ID spaces
//! may have different sizes, which is what a hypergraph bi-adjacency needs
//! (incidence matrices are `n × m`, §III-B.1a of the NWHy paper). For an
//! ordinary square graph the two sizes coincide.
//!
//! The structure models the paper's "range of ranges": the outer range is
//! random-access (`index`/[`Csr::neighbors`], [`Csr::iter`]), the inner
//! ranges are the neighbor slices.
//!
//! Construction from an [`EdgeList`] is parallel: a histogram of degrees,
//! a prefix sum, and an atomic-cursor scatter, followed by a per-vertex
//! neighbor sort (sorted adjacency is what the set-intersection s-line
//! algorithms rely on).

use crate::edge_list::EdgeList;
use crate::Vertex;
use nwhy_util::prefix::exclusive_prefix_sum;
use nwhy_util::sync::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use rayon::prelude::*;

/// Rectangular CSR adjacency; see the module docs.
///
/// # Examples
///
/// ```
/// use nwgraph::{Csr, EdgeList};
///
/// let mut el = EdgeList::from_edges(4, vec![(0, 1), (0, 2), (2, 3)]);
/// el.symmetrize();
/// let g = Csr::from_edge_list(&el);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.neighbors(0), &[1, 2]); // sorted
/// assert_eq!(g.degree(2), 2);
/// assert!(g.is_symmetric());
///
/// // the "range of ranges" view
/// for (u, nbrs) in g.iter() {
///     assert_eq!(nbrs.len(), g.degree(u));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    num_targets: usize,
    offsets: Vec<usize>,
    targets: Vec<Vertex>,
    weights: Option<Vec<f64>>,
}

impl Csr {
    /// Builds a CSR from an edge list, treating edges as directed
    /// `source → target` with a square ID space. Neighbor lists are sorted.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Self::build(
            el.num_vertices(),
            el.num_vertices(),
            el.edges(),
            el.weights(),
        )
    }

    /// Builds a rectangular CSR: sources in `0..num_sources`, targets in
    /// `0..num_targets`. Used for bi-adjacency construction.
    ///
    /// # Panics
    /// Panics if any edge endpoint is out of its respective range.
    pub fn from_pairs(
        num_sources: usize,
        num_targets: usize,
        pairs: &[(Vertex, Vertex)],
        weights: Option<&[f64]>,
    ) -> Self {
        Self::build(num_sources, num_targets, pairs, weights)
    }

    fn build(
        num_sources: usize,
        num_targets: usize,
        pairs: &[(Vertex, Vertex)],
        weights: Option<&[f64]>,
    ) -> Self {
        if let Some(ws) = weights {
            assert_eq!(ws.len(), pairs.len(), "weights length mismatch");
        }
        // 1. Histogram of out-degrees.
        let degrees: Vec<AtomicUsize> = (0..num_sources).map(|_| AtomicUsize::new(0)).collect();
        pairs.par_iter().for_each(|&(u, v)| {
            assert!(
                (u as usize) < num_sources,
                "source {u} out of range {num_sources}"
            );
            assert!(
                (v as usize) < num_targets,
                "target {v} out of range {num_targets}"
            );
            degrees[u as usize].fetch_add(1, Ordering::Relaxed);
        });
        let degrees: Vec<usize> = degrees.into_iter().map(AtomicUsize::into_inner).collect();

        // 2. Prefix sum gives slice offsets.
        let offsets = exclusive_prefix_sum(&degrees);
        let m = offsets[num_sources];

        // 3. Scatter with per-vertex atomic cursors.
        let cursors: Vec<AtomicUsize> = offsets[..num_sources]
            .iter()
            .map(|&o| AtomicUsize::new(o))
            .collect();
        let targets: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(0)).collect();
        let wslots: Option<Vec<AtomicU64>> =
            weights.map(|_| (0..m).map(|_| AtomicU64::new(0)).collect());
        pairs.par_iter().enumerate().for_each(|(i, &(u, v))| {
            let pos = cursors[u as usize].fetch_add(1, Ordering::Relaxed);
            targets[pos].store(v, Ordering::Relaxed);
            if let (Some(slots), Some(ws)) = (&wslots, weights) {
                slots[pos].store(ws[i].to_bits(), Ordering::Relaxed);
            }
        });
        let mut targets: Vec<Vertex> = targets.into_iter().map(AtomicU32::into_inner).collect();
        let mut wvec: Option<Vec<f64>> = wslots.map(|slots| {
            slots
                .into_iter()
                .map(|s| f64::from_bits(s.into_inner()))
                .collect()
        });

        // 4. Sort each neighbor slice (targets, with weights following).
        match &mut wvec {
            None => {
                let mut rest: &mut [Vertex] = &mut targets;
                let mut slices = Vec::with_capacity(num_sources);
                let mut prev = 0usize;
                for &o in &offsets[1..] {
                    let (head, tail) = rest.split_at_mut(o - prev);
                    slices.push(head);
                    rest = tail;
                    prev = o;
                }
                slices.into_par_iter().for_each(|s| s.sort_unstable());
            }
            Some(ws) => {
                // Sort target/weight pairs together, per source slice.
                let offsets_ref = &offsets;
                let pairs_per_vertex: Vec<(usize, usize)> = (0..num_sources)
                    .map(|u| (offsets_ref[u], offsets_ref[u + 1]))
                    .collect();
                // Sequential per-slice pair sort (weighted graphs in this
                // workspace are small: SSSP test inputs only).
                for (lo, hi) in pairs_per_vertex {
                    let mut zipped: Vec<(Vertex, f64)> = targets[lo..hi]
                        .iter()
                        .copied()
                        .zip(ws[lo..hi].iter().copied())
                        .collect();
                    zipped.sort_unstable_by_key(|&(t, _)| t);
                    for (k, (t, w)) in zipped.into_iter().enumerate() {
                        targets[lo + k] = t;
                        ws[lo + k] = w;
                    }
                }
            }
        }

        Self {
            num_targets,
            offsets,
            targets,
            weights: wvec,
        }
    }

    /// Assembles a CSR directly from its raw arrays, without checking the
    /// CSR invariants (monotone offsets, in-bounds targets, sorted
    /// neighbor slices, matching weight length).
    ///
    /// This exists for deserialization fast paths and for the validation
    /// tests in `nwhy-core`, which deliberately construct *corrupted*
    /// structures to assert that `Validate` reports the right
    /// [`InvariantViolation`](https://docs.rs/nwhy-core). Prefer
    /// [`Csr::from_edge_list`] / [`Csr::from_pairs`], which establish the
    /// invariants by construction; callers of this function should run
    /// validation themselves before handing the CSR to any kernel.
    ///
    /// # Panics
    /// Panics only on the structurally unrepresentable: an empty
    /// `offsets` (even an empty CSR has `offsets == [0]`).
    pub fn from_raw_parts(
        num_targets: usize,
        offsets: Vec<usize>,
        targets: Vec<Vertex>,
        weights: Option<Vec<f64>>,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        Self {
            num_targets,
            offsets,
            targets,
            weights,
        }
    }

    /// The raw offset array (`num_vertices() + 1` entries, first 0, last
    /// `num_edges()` when well-formed).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated target array.
    #[inline]
    pub fn targets(&self) -> &[Vertex] {
        &self.targets
    }

    /// The raw weight array, if this CSR is weighted.
    #[inline]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Number of source vertices (rows).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Size of the target ID space (columns).
    #[inline]
    pub fn num_targets(&self) -> usize {
        self.num_targets
    }

    /// Total number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: Vertex) -> &[Vertex] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Neighbors of `u` with weights (all `1.0` if unweighted).
    pub fn weighted_neighbors(&self, u: Vertex) -> impl Iterator<Item = (Vertex, f64)> + '_ {
        let u = u as usize;
        let lo = self.offsets[u];
        let hi = self.offsets[u + 1];
        let ws = self.weights.as_deref();
        self.targets[lo..hi]
            .iter()
            .enumerate()
            .map(move |(k, &t)| (t, ws.map_or(1.0, |w| w[lo + k])))
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: Vertex) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// All out-degrees, as a vector.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|u| self.degree(u as Vertex))
            .collect()
    }

    /// Largest out-degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|u| self.degree(u as Vertex))
            .max()
            .unwrap_or(0)
    }

    /// `true` if this CSR stores edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Iterates `(source, neighbor_slice)` for every source vertex — the
    /// "range of ranges" view from Listing 3 of the paper.
    pub fn iter(&self) -> impl Iterator<Item = (Vertex, &[Vertex])> + '_ {
        (0..self.num_vertices()).map(move |u| (u as Vertex, self.neighbors(u as Vertex)))
    }

    /// Parallel iterator over `(source, neighbor_slice)`.
    pub fn par_iter(&self) -> impl IndexedParallelIterator<Item = (Vertex, &[Vertex])> + '_ {
        (0..self.num_vertices())
            .into_par_iter()
            .map(move |u| (u as Vertex, self.neighbors(u as Vertex)))
    }

    /// The transpose: targets become sources. For a bi-adjacency this maps
    /// the hyperedge→hypernode CSR to the hypernode→hyperedge CSR.
    pub fn transpose(&self) -> Csr {
        let rev: Vec<(Vertex, Vertex)> = self
            .par_iter()
            .flat_map_iter(|(u, nbrs)| nbrs.iter().map(move |&v| (v, u)))
            .collect();
        let weights: Option<Vec<f64>> = self.weights.as_ref().map(|_| {
            self.par_iter()
                .flat_map_iter(|(u, _)| self.weighted_neighbors(u).map(|(_, w)| w))
                .collect()
        });
        Csr::from_pairs(
            self.num_targets,
            self.num_vertices(),
            &rev,
            weights.as_deref(),
        )
    }

    /// `true` when every edge `(u, v)` has a matching `(v, u)`. Only
    /// meaningful for square CSRs; used as a sanity check on undirected
    /// constructions like clique expansions and adjoin graphs.
    pub fn is_symmetric(&self) -> bool {
        if self.num_vertices() != self.num_targets {
            return false;
        }
        self.par_iter().all(|(u, nbrs)| {
            nbrs.iter()
                .all(|&v| self.neighbors(v).binary_search(&u).is_ok())
        })
    }

    /// Converts back to an edge list (used by relabeling).
    pub fn to_edge_list(&self) -> EdgeList {
        assert_eq!(
            self.num_vertices(),
            self.num_targets,
            "to_edge_list requires a square CSR"
        );
        let pairs: Vec<(Vertex, Vertex)> = self
            .iter()
            .flat_map(|(u, nbrs)| nbrs.iter().map(move |&v| (u, v)))
            .collect();
        match &self.weights {
            None => EdgeList::from_edges(self.num_vertices(), pairs),
            Some(_) => {
                let ws: Vec<f64> = (0..self.num_vertices())
                    .flat_map(|u| self.weighted_neighbors(u as Vertex).map(|(_, w)| w))
                    .collect();
                EdgeList::from_weighted_edges(self.num_vertices(), pairs, ws)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toy() -> Csr {
        // 0 → {1, 2}, 1 → {2}, 2 → {}, 3 → {0}
        let el = EdgeList::from_edges(4, vec![(0, 2), (0, 1), (1, 2), (3, 0)]);
        Csr::from_edge_list(&el)
    }

    #[test]
    fn basic_shape() {
        let g = toy();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_targets(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]); // sorted
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn degrees_and_max() {
        let g = toy();
        assert_eq!(g.degrees(), vec![2, 1, 0, 1]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0));
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn vertices_without_edges() {
        let g = Csr::from_edge_list(&EdgeList::new(5));
        assert_eq!(g.num_vertices(), 5);
        assert!(g.iter().all(|(_, nbrs)| nbrs.is_empty()));
    }

    #[test]
    fn rectangular_build() {
        // 2 hyperedges over 5 hypernodes.
        let g = Csr::from_pairs(2, 5, &[(0, 4), (0, 1), (1, 2)], None);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_targets(), 5);
        assert_eq!(g.neighbors(0), &[1, 4]);
        assert_eq!(g.neighbors(1), &[2]);
        assert!(!g.is_symmetric()); // rectangular is never symmetric
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        Csr::from_pairs(2, 3, &[(0, 3)], None);
    }

    #[test]
    fn transpose_roundtrip() {
        let g = toy();
        let t = g.transpose();
        assert_eq!(t.num_vertices(), 4);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[3]);
        let back = t.transpose();
        assert_eq!(back, g);
    }

    #[test]
    fn rectangular_transpose_swaps_dims() {
        let g = Csr::from_pairs(2, 5, &[(0, 4), (1, 4)], None);
        let t = g.transpose();
        assert_eq!(t.num_vertices(), 5);
        assert_eq!(t.num_targets(), 2);
        assert_eq!(t.neighbors(4), &[0, 1]);
    }

    #[test]
    fn weighted_neighbors_follow_sort() {
        let el = EdgeList::from_weighted_edges(3, vec![(0, 2), (0, 1)], vec![9.0, 4.0]);
        let g = Csr::from_edge_list(&el);
        let wn: Vec<(u32, f64)> = g.weighted_neighbors(0).collect();
        assert_eq!(wn, vec![(1, 4.0), (2, 9.0)]);
        assert!(g.is_weighted());
    }

    #[test]
    fn unweighted_weighted_neighbors_default_one() {
        let g = toy();
        let wn: Vec<(u32, f64)> = g.weighted_neighbors(0).collect();
        assert_eq!(wn, vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn symmetric_detection() {
        let mut el = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]);
        el.symmetrize();
        let g = Csr::from_edge_list(&el);
        assert!(g.is_symmetric());
        let d = Csr::from_edge_list(&EdgeList::from_edges(3, vec![(0, 1)]));
        assert!(!d.is_symmetric());
    }

    #[test]
    fn to_edge_list_roundtrip() {
        let g = toy();
        let el = g.to_edge_list();
        let g2 = Csr::from_edge_list(&el);
        assert_eq!(g, g2);
    }

    #[test]
    fn weighted_transpose_keeps_weights() {
        let el = EdgeList::from_weighted_edges(3, vec![(0, 2), (1, 2)], vec![5.0, 6.0]);
        let g = Csr::from_edge_list(&el);
        let t = g.transpose();
        let wn: Vec<(u32, f64)> = t.weighted_neighbors(2).collect();
        assert_eq!(wn, vec![(0, 5.0), (1, 6.0)]);
    }

    #[test]
    fn duplicate_edges_are_retained() {
        let el = EdgeList::from_edges(2, vec![(0, 1), (0, 1)]);
        let g = Csr::from_edge_list(&el);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..200)
        ) {
            let el = EdgeList::from_edges(20, edges);
            let g = Csr::from_edge_list(&el);
            prop_assert_eq!(g.transpose().transpose(), g);
        }

        #[test]
        fn prop_edge_count_preserved(
            edges in proptest::collection::vec((0u32..15, 0u32..15), 0..100)
        ) {
            let n = edges.len();
            let el = EdgeList::from_edges(15, edges);
            let g = Csr::from_edge_list(&el);
            prop_assert_eq!(g.num_edges(), n);
            prop_assert_eq!(g.transpose().num_edges(), n);
            prop_assert_eq!(g.degrees().iter().sum::<usize>(), n);
        }

        #[test]
        fn prop_neighbors_sorted(
            edges in proptest::collection::vec((0u32..10, 0u32..10), 0..80)
        ) {
            let el = EdgeList::from_edges(10, edges);
            let g = Csr::from_edge_list(&el);
            for (_, nbrs) in g.iter() {
                prop_assert!(nbrs.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }
}
