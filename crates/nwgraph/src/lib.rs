//! `nwgraph` — a from-scratch parallel graph library.
//!
//! This crate is the Rust analog of NWGraph, the "third-party graph
//! library" the NWHy paper leans on for computing metrics on the
//! lower-order approximations (s-line graphs, clique expansions, adjoin
//! graphs) of a hypergraph. It provides:
//!
//! - [`EdgeList`] — a mutable coordinate-format edge container;
//! - [`Csr`] — compressed sparse row adjacency, the workhorse structure,
//!   exposed as a "range of ranges" (indexable outer range over `&[u32]`
//!   inner neighbor slices), mirroring the paper's C++20 range model;
//! - degree-based relabeling ([`relabel`]) — the permute-by-degree
//!   optimization §III-B.2 discusses;
//! - parallel algorithms ([`algorithms`]): breadth-first search (top-down,
//!   bottom-up, direction-optimizing), connected components (label
//!   propagation, Shiloach–Vishkin, Afforest), single-source shortest
//!   paths, Brandes betweenness centrality, closeness/harmonic/
//!   eccentricity, PageRank, k-core decomposition, maximal independent
//!   set, and triangle counting.
//!
//! Vertices are dense `u32` IDs; [`INVALID_VERTEX`] (`u32::MAX`) marks
//! "no vertex" (unvisited parents, infinite distances).

#![forbid(unsafe_code)]
// lint: this crate is a single flat vertex space — every `i as u32` is an
// index below `num_vertices() ≤ u32::MAX` (IDs come in as u32 and counts
// derive from them), unlike nwhy-core's aliased multi-domain ID spaces
// where the xtask lint pass bans raw casts outright.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

pub mod algorithms;
pub mod csr;
pub mod edge_list;
pub mod neighbor_range;
pub mod random;
pub mod relabel;

pub use csr::Csr;
pub use edge_list::EdgeList;
pub use relabel::{degree_permutation, invert_permutation, Direction};

/// Sentinel for "no vertex": unvisited BFS parents, unreachable distances.
pub const INVALID_VERTEX: u32 = u32::MAX;

/// Vertex identifier type used across the workspace.
pub type Vertex = u32;
