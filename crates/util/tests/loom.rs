//! Loom model tests for the lock-free primitives.
//!
//! Only built under the loom cfg:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p nwhy-util --test loom --release
//! ```
//!
//! Each `loom::model` closure is re-run once per distinct schedule; the
//! vendored loom (see `vendor/loom`) exhaustively enumerates thread
//! interleavings at atomic-operation granularity under sequentially
//! consistent semantics. Models are kept deliberately tiny (2–3 threads,
//! a few atomic ops each) so the schedule space stays in the thousands.
//!
//! `Box::leak` gives the spawned threads `'static` access to the shared
//! structure; the loom run owns the whole process, so the leak is
//! bounded by the number of explored schedules and irrelevant in
//! practice (test-only binary).
#![cfg(loom)]

use nwhy_util::atomics::{atomic_min_u32, cas_u32};
use nwhy_util::bitmap::AtomicBitmap;
use nwhy_util::sync::{AtomicU32, AtomicUsize, Ordering};
use nwhy_util::workq::ChunkedQueue;

/// Two threads race `atomic_min_u32` with different values: the final
/// value must be the minimum of both, and at least the thread carrying
/// the global minimum must report a win (both may win transiently if
/// the larger value lands first).
#[test]
fn loom_atomic_min_two_threads() {
    loom::model(|| {
        let a: &'static AtomicU32 = Box::leak(Box::new(AtomicU32::new(100)));
        let wins: &'static AtomicUsize = Box::leak(Box::new(AtomicUsize::new(0)));

        let t1 = loom::thread::spawn(move || {
            if atomic_min_u32(a, 7) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        let t2 = loom::thread::spawn(move || {
            if atomic_min_u32(a, 3) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();

        assert_eq!(a.load(Ordering::Relaxed), 3, "min must survive the race");
        let w = wins.load(Ordering::Relaxed);
        assert!((1..=2).contains(&w), "between one and two winners, got {w}");
    });
}

/// The CC kernels rely on "exactly one thread claims the slot": two
/// threads CAS the same unvisited slot; exactly one must succeed.
#[test]
fn loom_cas_claims_exactly_once() {
    loom::model(|| {
        let a: &'static AtomicU32 = Box::leak(Box::new(AtomicU32::new(u32::MAX)));
        let wins: &'static AtomicUsize = Box::leak(Box::new(AtomicUsize::new(0)));

        let handles: Vec<_> = (0..2u32)
            .map(|t| {
                loom::thread::spawn(move || {
                    if cas_u32(a, u32::MAX, t) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        assert_eq!(wins.load(Ordering::Relaxed), 1, "exactly one claimant");
        assert!(a.load(Ordering::Relaxed) < 2, "winner's value stored");
    });
}

/// Two threads set the same bit: exactly one may observe the 0→1
/// transition, and the bit must be set afterwards. This is the frontier
/// dedup property direction-optimizing BFS depends on.
#[test]
fn loom_bitmap_set_single_transition() {
    loom::model(|| {
        let bm: &'static AtomicBitmap = Box::leak(Box::new(AtomicBitmap::new(64)));
        let wins: &'static AtomicUsize = Box::leak(Box::new(AtomicUsize::new(0)));

        let t1 = loom::thread::spawn(move || {
            if bm.set(5) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        let t2 = loom::thread::spawn(move || {
            if bm.set(5) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();

        assert!(bm.get(5));
        assert_eq!(wins.load(Ordering::Relaxed), 1, "one 0→1 transition");
    });
}

/// Two threads set different bits of the same word: both transitions
/// must be observed (the Relaxed fast-path peek must not eat a win).
#[test]
fn loom_bitmap_set_distinct_bits_same_word() {
    loom::model(|| {
        let bm: &'static AtomicBitmap = Box::leak(Box::new(AtomicBitmap::new(64)));

        let t1 = loom::thread::spawn(move || bm.set(3));
        let t2 = loom::thread::spawn(move || bm.set(40));
        let w1 = t1.join().unwrap();
        let w2 = t2.join().unwrap();

        assert!(w1 && w2, "distinct bits: both setters must win");
        assert!(bm.get(3) && bm.get(40));
    });
}

/// A set bit publishes the setter's prior write: if the reader sees the
/// bit, it must also see the data written before `set` (AcqRel/Acquire
/// pairing — the BFS "frontier bit implies parent visible" contract).
#[test]
fn loom_bitmap_set_publishes_prior_write() {
    loom::model(|| {
        let bm: &'static AtomicBitmap = Box::leak(Box::new(AtomicBitmap::new(64)));
        let data: &'static AtomicU32 = Box::leak(Box::new(AtomicU32::new(0)));

        let writer = loom::thread::spawn(move || {
            data.store(42, Ordering::Relaxed);
            bm.set(0);
        });
        let reader = loom::thread::spawn(move || {
            if bm.get(0) {
                assert_eq!(
                    data.load(Ordering::Relaxed),
                    42,
                    "bit visible but prior write missing"
                );
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

/// Two threads race two steal attempts each on a two-item queue with
/// chunk 1: four attempts are enough to drain it under any schedule, so
/// every item must be handed out exactly once, and the cursor must stay
/// bounded afterwards (the regression the fast-path/CAS-cap fix
/// addresses). Stolen values come back through `join` rather than a
/// shared atomic to keep the schedule space small.
#[test]
fn loom_chunked_queue_steal_exactly_once() {
    loom::model(|| {
        static ITEMS: [u32; 2] = [10, 20];
        let q: &'static ChunkedQueue<'static, u32> =
            Box::leak(Box::new(ChunkedQueue::new(&ITEMS, 1)));

        let handles: Vec<_> = (0..2)
            .map(|_| {
                loom::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..2 {
                        if let Some(chunk) = q.steal() {
                            got.extend_from_slice(chunk);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();

        assert_eq!(all, vec![10, 20], "each item handed out exactly once");
        assert!(q.steal().is_none(), "drained queue must stay drained");
        // With the fast-path + CAS-cap fix the cursor always lands on
        // exactly `len` (at most one overshoot per drain, and its cap
        // CAS cannot lose here). The old unconditional fetch_add ends
        // at ≥ len + 1 in every schedule, so this catches the bug.
        assert_eq!(q.cursor(), ITEMS.len(), "cursor escaped bound");
    });
}
