//! A concurrent bitmap.
//!
//! Direction-optimizing BFS (Beamer et al.) represents the *dense* frontier
//! as a bitmap so the bottom-up sweep can test membership in O(1) without
//! locking. Multiple threads set bits concurrently during the top-down →
//! bottom-up conversion.
//!
//! Orderings follow the policy documented in [`crate::atomics`]: setting
//! a bit is a *claim* (`Relaxed` fast-path peek, `AcqRel` on the winning
//! RMW), and a reader that observes the bit acquires the setter's prior
//! writes (`Acquire` load) — in BFS, seeing a frontier bit must imply
//! seeing the level/parent data written before it was set.

use crate::sync::{AtomicU64, Ordering};

const BITS: usize = 64;

/// A fixed-size bitmap whose bits can be set/tested concurrently.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates a bitmap with `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(BITS);
        let mut words = Vec::with_capacity(n_words);
        words.resize_with(n_words, || AtomicU64::new(0));
        Self { words, len }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`. Returns `true` if this call changed it from 0 to 1.
    ///
    /// Mirrors the CAS-loop ordering policy of [`crate::atomics`]: a
    /// `Relaxed` fast-path load skips the RMW when the bit is already
    /// set (the common case in bottom-up BFS sweeps, where no ordering
    /// is needed just to *look*), and the winning `fetch_or` is
    /// `AcqRel` so claiming a bit publishes the setter's prior writes.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % BITS);
        let word = &self.words[i / BITS];
        if word.load(Ordering::Relaxed) & mask != 0 {
            return false;
        }
        let prev = word.fetch_or(mask, Ordering::AcqRel);
        prev & mask == 0
    }

    /// Tests bit `i`.
    ///
    /// `Acquire`: observing a set bit happens-after the `AcqRel`
    /// `fetch_or` that set it, so the setter's earlier writes (levels,
    /// parents) are visible to this reader.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % BITS);
        self.words[i / BITS].load(Ordering::Acquire) & mask != 0
    }

    /// Clears all bits. Requires exclusive access, so it is not racy.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = AtomicU64::new(0);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut bits = w.load(Ordering::Acquire);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * BITS + tz)
                }
            })
        })
    }

    /// Swaps contents with another bitmap of the same length.
    ///
    /// BFS ping-pongs between the current and next dense frontier; a swap
    /// avoids reallocating each level.
    pub fn swap(&mut self, other: &mut Self) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        std::mem::swap(&mut self.words, &mut other.words);
    }
}

/// A plain single-owner bitset over packed `u64` words — the worker-local
/// membership mask behind the s-line *bitset* overlap path.
///
/// Unlike [`AtomicBitmap`] there is no concurrency story at all: each
/// worker owns one `WordBitset`, loads a hyperedge's members into it,
/// probes candidates word-at-a-time (`AND` + `count_ones`, which LLVM
/// autovectorizes), and then clears exactly the words it touched. The
/// clear-by-members discipline keeps per-row cost proportional to the
/// row, not the universe, so the buffer is reusable across millions of
/// rows without a full rezero.
#[derive(Debug, Default, Clone)]
pub struct WordBitset {
    words: Vec<u64>,
}

impl WordBitset {
    /// An empty bitset; call [`WordBitset::ensure_bits`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the backing storage to address at least `bits` bits.
    /// Existing bits are preserved; new words start clear.
    pub fn ensure_bits(&mut self, bits: usize) {
        let n_words = bits.div_ceil(BITS);
        if self.words.len() < n_words {
            self.words.resize(n_words, 0);
        }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len() * BITS
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity(), "bit {i} beyond {}", self.capacity());
        self.words[i / BITS] |= 1u64 << (i % BITS);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity(), "bit {i} beyond {}", self.capacity());
        self.words[i / BITS] & (1u64 << (i % BITS)) != 0
    }

    /// The raw word holding bits `[64w, 64w + 64)` — the probe surface
    /// for masked `AND`+popcount sweeps.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Zeroes every word containing one of `members` (callers pass the
    /// same index list they inserted). Idempotent per word, so duplicate
    /// or same-word members cost nothing extra.
    #[inline]
    pub fn clear_members(&mut self, members: impl IntoIterator<Item = usize>) {
        for i in members {
            self.words[i / BITS] = 0;
        }
    }

    /// Total set bits (test/debug surface; the hot path never calls it).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl Clone for AtomicBitmap {
    fn clone(&self) -> Self {
        let words = self
            .words
            .iter()
            .map(|w| AtomicU64::new(w.load(Ordering::Acquire)))
            .collect();
        Self {
            words,
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let bm = AtomicBitmap::new(100);
        assert!(!bm.get(42));
        assert!(bm.set(42));
        assert!(bm.get(42));
        // second set reports no change
        assert!(!bm.set(42));
    }

    #[test]
    fn boundary_bits() {
        let bm = AtomicBitmap::new(129);
        for i in [0, 63, 64, 127, 128] {
            assert!(bm.set(i));
            assert!(bm.get(i));
        }
        assert_eq!(bm.count_ones(), 5);
    }

    #[test]
    fn empty_bitmap() {
        let bm = AtomicBitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.iter_ones().count(), 0);
    }

    #[test]
    fn iter_ones_in_order() {
        let bm = AtomicBitmap::new(200);
        for i in [3, 64, 65, 130, 199] {
            bm.set(i);
        }
        let ones: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 130, 199]);
    }

    #[test]
    fn clear_resets() {
        let mut bm = AtomicBitmap::new(70);
        bm.set(1);
        bm.set(69);
        bm.clear();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn swap_exchanges_contents() {
        let mut a = AtomicBitmap::new(64);
        let mut b = AtomicBitmap::new(64);
        a.set(1);
        b.set(2);
        a.swap(&mut b);
        assert!(a.get(2) && !a.get(1));
        assert!(b.get(1) && !b.get(2));
    }

    #[test]
    fn concurrent_sets_count_exactly_once() {
        let bm = AtomicBitmap::new(1 << 12);
        // lint: deliberately std — this model-free test also runs
        // under the `--cfg loom` CI job, outside loom::model
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let bm = &bm;
                let winners = &winners;
                s.spawn(move || {
                    for i in 0..bm.len() {
                        if bm.set(i) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // every bit must have exactly one winning setter
        assert_eq!(winners.load(Ordering::Relaxed), 1 << 12);
        assert_eq!(bm.count_ones(), 1 << 12);
    }

    #[test]
    fn clone_preserves_bits() {
        let bm = AtomicBitmap::new(65);
        bm.set(0);
        bm.set(64);
        let c = bm.clone();
        assert!(c.get(0) && c.get(64));
        assert_eq!(c.count_ones(), 2);
    }

    #[test]
    fn exactly_one_word() {
        // len == 64 is the off-by-one magnet: exactly one word, no spill.
        let bm = AtomicBitmap::new(64);
        assert!(bm.set(0));
        assert!(bm.set(63));
        assert_eq!(bm.count_ones(), 2);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 63]);
    }

    #[test]
    fn word_bitset_insert_probe_clear_cycle() {
        let mut bs = WordBitset::new();
        bs.ensure_bits(200);
        let members = [3usize, 63, 64, 127, 128, 199];
        for &i in &members {
            bs.insert(i);
        }
        for &i in &members {
            assert!(bs.contains(i));
        }
        assert!(!bs.contains(62));
        assert_eq!(bs.count_ones(), members.len());
        // word-level probe: bits 63 and 64 straddle the first boundary
        assert_eq!((bs.word(0) & (1 << 63)).count_ones(), 1);
        assert_eq!((bs.word(1) & 1).count_ones(), 1);
        // clearing by member list rezeros only touched words — and leaves
        // the bitset fully reusable
        bs.clear_members(members.iter().copied());
        assert_eq!(bs.count_ones(), 0);
        bs.insert(5);
        assert_eq!(bs.count_ones(), 1);
    }

    #[test]
    fn word_bitset_ensure_grows_and_preserves() {
        let mut bs = WordBitset::new();
        assert_eq!(bs.capacity(), 0);
        bs.ensure_bits(10);
        bs.insert(9);
        bs.ensure_bits(1000);
        assert!(bs.capacity() >= 1000);
        assert!(bs.contains(9), "growth must preserve existing bits");
        // shrinking requests are no-ops
        bs.ensure_bits(1);
        assert!(bs.contains(9));
    }

    #[test]
    fn word_bitset_same_word_members_clear_once() {
        let mut bs = WordBitset::new();
        bs.ensure_bits(64);
        bs.insert(1);
        bs.insert(2);
        bs.insert(3);
        bs.clear_members([1usize]); // same word as 2 and 3
        assert_eq!(bs.count_ones(), 0, "clear zeroes the whole touched word");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;
        use rayon::prelude::*;

        proptest! {
            // Lengths straddling word boundaries: 0, 1..64, exactly 64,
            // 65..128, and non-multiples beyond. Every in-range index
            // must set exactly once and read back set.
            #[test]
            fn prop_set_get_roundtrip_any_len(len in 0usize..200) {
                let bm = AtomicBitmap::new(len);
                prop_assert_eq!(bm.len(), len);
                prop_assert_eq!(bm.is_empty(), len == 0);
                for i in 0..len {
                    prop_assert!(!bm.get(i));
                    prop_assert!(bm.set(i));
                    prop_assert!(!bm.set(i));
                    prop_assert!(bm.get(i));
                }
                prop_assert_eq!(bm.count_ones(), len);
                prop_assert_eq!(bm.iter_ones().count(), len);
            }

            // iter_ones must report exactly the set indices, in order,
            // regardless of where len falls relative to the word size.
            #[test]
            fn prop_iter_ones_matches_sets(
                len in 1usize..300,
                stride in 1usize..17,
            ) {
                let bm = AtomicBitmap::new(len);
                let expect: Vec<usize> = (0..len).step_by(stride).collect();
                for &i in &expect {
                    bm.set(i);
                }
                prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), expect);
            }

            // Concurrent set/test through rayon: every bit gains exactly
            // one winning setter even under contention, and a concurrent
            // reader never observes a bit that was not set.
            #[test]
            fn prop_concurrent_set_test_exactly_once(
                len in 1usize..=256,
                threads in 2usize..=8,
            ) {
                let bm = AtomicBitmap::new(len);
                let wins: usize = (0..threads)
                    .into_par_iter()
                    .map(|_| (0..len).filter(|&i| bm.set(i)).count())
                    .sum();
                prop_assert_eq!(wins, len);
                prop_assert!((0..len).into_par_iter().all(|i| bm.get(i)));
                prop_assert_eq!(bm.count_ones(), len);
            }
        }
    }
}
