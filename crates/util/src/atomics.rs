//! Compare-and-swap helpers used by the parallel graph kernels.
//!
//! Label-propagation connected components, Afforest, and BFS all rely on
//! "write the smaller value, tell me whether I won" primitives. These are
//! expressed here as CAS loops over the standard atomic integer types, plus
//! an [`AtomicF64`] for accumulating floating-point centrality scores.
//!
//! # Ordering policy
//!
//! Every CAS loop in this module uses the same ordering triple, and the
//! rest of the crate ([`crate::bitmap`], [`crate::workq`]) aligns with
//! it:
//!
//! - **`Relaxed` initial load.** The first read only seeds the CAS
//!   loop; a stale value costs at most one extra CAS iteration and can
//!   never produce a wrong result, because the CAS itself revalidates
//!   against the current value. No synchronization is needed to *look*.
//! - **`AcqRel` on CAS success.** A successful update is the moment a
//!   thread *wins* a slot (a smaller component label, a BFS parent, a
//!   frontier bit). The `Release` half publishes everything the winner
//!   wrote before claiming (e.g. the level/parent arrays filled in
//!   before the frontier bit is set); the `Acquire` half means the
//!   winner also observes whatever the previous holder published. The
//!   kernels use the returned `bool` to decide whether to enqueue or
//!   process a vertex, so the claim must be a synchronization point.
//! - **`Relaxed` on CAS failure.** A failed CAS only tells the loop
//!   "someone else moved the value, reread it"; the reread is revalidated
//!   by the next CAS attempt exactly like the initial load, so the
//!   failure ordering needs no barrier.
//!
//! This is deliberately *not* `SeqCst` anywhere: none of the kernels
//! need a single total order over unrelated atomics, only the
//! happens-before edge from a winning writer to the readers of its
//! claim. The loom models in `tests/loom.rs` exhaustively check the
//! interleaving behavior, and the nightly ThreadSanitizer CI job checks
//! the ordering choices on real hardware.
//!
//! Under `RUSTFLAGS="--cfg loom"` the atomic types switch to the loom
//! model checker's instrumented versions (see [`crate::sync`]).

use crate::sync::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Atomically set `a = min(a, val)`.
///
/// Returns `true` if the stored value was lowered (i.e. this call "won"),
/// which the CC kernels use to decide whether to re-enqueue a vertex.
/// Orderings follow the [module policy](self): `Relaxed` seed load,
/// `AcqRel` success, `Relaxed` failure.
#[inline]
pub fn atomic_min_u32(a: &AtomicU32, val: u32) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while val < cur {
        match a.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => cur = observed,
        }
    }
    false
}

/// Atomically set `a = max(a, val)`. Returns `true` if the value was raised.
#[inline]
pub fn atomic_max_u32(a: &AtomicU32, val: u32) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while val > cur {
        match a.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => cur = observed,
        }
    }
    false
}

/// Atomically set `a = min(a, val)` for `usize` values.
#[inline]
pub fn atomic_min_usize(a: &AtomicUsize, val: usize) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while val < cur {
        match a.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => cur = observed,
        }
    }
    false
}

/// A single CAS attempt replacing `expected` with `desired`.
///
/// This mirrors the `compare_and_swap` idiom used in BFS parent claiming:
/// exactly one thread may move a parent slot from "unvisited" to a real
/// parent ID. `AcqRel` on success is what makes the claim a
/// synchronization point (the winner's earlier writes become visible to
/// whoever later reads the slot); failure is `Relaxed` per the
/// [module policy](self).
#[inline]
pub fn cas_u32(a: &AtomicU32, expected: u32, desired: u32) -> bool {
    a.compare_exchange(expected, desired, Ordering::AcqRel, Ordering::Relaxed)
        .is_ok()
}

/// An `f64` with atomic fetch-add, built on `AtomicU64` bit transmutes.
///
/// Used by the parallel Brandes betweenness-centrality accumulation phase,
/// where multiple DAG predecessors add dependency contributions to the same
/// vertex concurrently.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates a new atomic holding `value`.
    #[inline]
    pub fn new(value: f64) -> Self {
        Self {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Stores `value`, unconditionally.
    #[inline]
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta` and returns the previous value.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(prev) => return f64::from_bits(prev),
                Err(observed) => cur = observed,
            }
        }
    }
}

impl Clone for AtomicF64 {
    fn clone(&self) -> Self {
        Self::new(self.load())
    }
}

impl From<f64> for AtomicF64 {
    fn from(v: f64) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // lint: deliberately std, not crate::sync — these model-free tests
    // also run under the `--cfg loom` CI job, outside loom::model
    use std::sync::atomic::AtomicU32;

    #[test]
    fn min_lowers_value() {
        let a = AtomicU32::new(10);
        assert!(atomic_min_u32(&a, 3));
        assert_eq!(a.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn min_keeps_smaller_existing_value() {
        let a = AtomicU32::new(2);
        assert!(!atomic_min_u32(&a, 5));
        assert_eq!(a.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn min_is_noop_on_equal() {
        let a = AtomicU32::new(7);
        assert!(!atomic_min_u32(&a, 7));
        assert_eq!(a.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn max_raises_value() {
        let a = AtomicU32::new(1);
        assert!(atomic_max_u32(&a, 9));
        assert_eq!(a.load(Ordering::Relaxed), 9);
        assert!(!atomic_max_u32(&a, 4));
    }

    #[test]
    fn min_usize_behaves_like_u32_variant() {
        let a = AtomicUsize::new(100);
        assert!(atomic_min_usize(&a, 1));
        assert!(!atomic_min_usize(&a, 50));
        assert_eq!(a.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cas_claims_exactly_once() {
        let a = AtomicU32::new(u32::MAX);
        assert!(cas_u32(&a, u32::MAX, 5));
        assert!(!cas_u32(&a, u32::MAX, 6));
        assert_eq!(a.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn atomic_min_under_contention() {
        let a = AtomicU32::new(u32::MAX);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let a = &a;
                s.spawn(move || {
                    for i in 0..1000 {
                        atomic_min_u32(a, t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn atomic_f64_fetch_add_accumulates() {
        let a = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = &a;
                s.spawn(move || {
                    for _ in 0..1000 {
                        a.fetch_add(0.5);
                    }
                });
            }
        });
        assert!((a.load() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn atomic_f64_store_load_roundtrip() {
        let a = AtomicF64::new(1.25);
        assert_eq!(a.load(), 1.25);
        a.store(-3.5);
        assert_eq!(a.load(), -3.5);
        let b = a.clone();
        assert_eq!(b.load(), -3.5);
    }
}
