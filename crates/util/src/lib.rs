//! Shared low-level utilities for the `nwhy-rs` workspace.
//!
//! This crate is the parallel substrate underneath `nwgraph` and
//! `nwhy-core`. It plays the role that oneTBB plus a handful of in-house
//! helpers play in the original C++ NWHy framework:
//!
//! - [`atomics`] — compare-and-swap min/max helpers and an atomic `f64`,
//!   used by label-propagation and Afforest connected components.
//! - [`bitmap`] — a concurrent bitmap used as the dense frontier in
//!   direction-optimizing BFS.
//! - [`fxhash`] — a fast, non-cryptographic hasher (FxHash-style) used for
//!   the hashmap-based s-line-graph counting algorithms.
//! - [`prefix`] — parallel exclusive prefix sums, the backbone of CSR
//!   construction.
//! - [`partition`] — the paper's work-partitioning strategies (§III-D):
//!   *blocked range*, *cyclic range*, and *cyclic neighbor range*.
//! - [`pool`] — helpers for running a closure on a Rayon pool with an exact
//!   thread count (used by the strong-scaling harnesses).
//! - [`timer`] — wall-clock timing and simple summary statistics for the
//!   benchmark harnesses.
//! - [`sync`] — the `cfg(loom)` switch point: the concurrency primitives
//!   import their atomic types from here so the loom model checker can
//!   replace them under `RUSTFLAGS="--cfg loom"` (see `tests/loom.rs`).
//! - [`workq`] — a chunked self-scheduling work queue (guided-dynamic
//!   style) for the queue-based s-line-graph algorithms.
//!
//! The whole workspace forbids `unsafe`; the lock-free pieces here are
//! checked by loom models (`tests/loom.rs`), Miri, and a nightly
//! ThreadSanitizer CI job instead (see DESIGN.md, "Concurrency model &
//! invariants").

#![forbid(unsafe_code)]

pub mod atomics;
pub mod bitmap;
pub mod fxhash;
pub mod partition;
pub mod pool;
pub mod prefix;
pub mod sync;
pub mod timer;
pub mod workq;

pub use atomics::{atomic_max_u32, atomic_min_u32, atomic_min_usize, AtomicF64};
pub use bitmap::AtomicBitmap;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use partition::{blocked_ranges, cyclic_indices, CyclicRange};
pub use pool::with_threads;
pub use prefix::{exclusive_prefix_sum, exclusive_prefix_sum_in_place};
pub use timer::{median, Stats, Timer};
pub use workq::ChunkedQueue;
