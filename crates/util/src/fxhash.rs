//! A fast, non-cryptographic hash (the rustc "Fx" multiply-xor hash).
//!
//! The hashmap-based s-line-graph construction algorithms (NWHy §III-C.3,
//! Algorithm 1) hash hyperedge IDs — small dense integers — millions of
//! times per run. SipHash's HashDoS protection is wasted there, so we ship
//! the same polynomial hash rustc uses, implemented in-tree to keep the
//! dependency set to the approved list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-xor hasher. Deterministic (no random state).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&12345u32), hash_of(&12345u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinct_small_ints_hash_differently() {
        // Not a collision guarantee in general, but for the dense small-ID
        // regime the line-graph code operates in, the first 10k IDs must be
        // collision-free for the hash to be useful.
        let mut seen = HashSet::new();
        for i in 0..10_000u32 {
            assert!(seen.insert(hash_of(&i)), "collision at {i}");
        }
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Writing 9 bytes exercises both the 8-byte chunk and remainder path.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a, h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a, h3.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(7, 49);
        assert_eq!(m.get(&7), Some(&49));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(1));
        assert!(!s.insert(1));
    }
}
