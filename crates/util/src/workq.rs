//! A chunked dynamic work queue.
//!
//! The paper's Algorithms 1–2 are "work queue-based": hyperedge IDs (or
//! pairs) are enqueued up front and workers drain the queue. Static
//! partitioning (blocked/cyclic) fixes each worker's share when the loop
//! starts; the [`ChunkedQueue`] here instead hands out fixed-size chunks
//! through an atomic cursor, so a worker that drew cheap items simply
//! comes back for more — self-scheduling in the classic
//! guided/chunked-dynamic style, and the finest-grained answer to the
//! skewed-degree imbalance §III-D discusses.

use crate::sync::{AtomicUsize, Ordering};

/// A slice-backed queue handing out contiguous chunks atomically.
#[derive(Debug)]
pub struct ChunkedQueue<'a, T> {
    items: &'a [T],
    cursor: AtomicUsize,
    chunk: usize,
}

impl<'a, T> ChunkedQueue<'a, T> {
    /// Wraps `items` with the given chunk size (`0` is treated as 1).
    pub fn new(items: &'a [T], chunk: usize) -> Self {
        Self {
            items,
            cursor: AtomicUsize::new(0),
            chunk: chunk.max(1),
        }
    }

    /// Chunk size chosen so that roughly `4 × workers` chunks exist per
    /// worker (a common guided-scheduling default), at least 1.
    pub fn with_auto_chunk(items: &'a [T], workers: usize) -> Self {
        let target_chunks = workers.max(1) * 16;
        Self::new(items, items.len().div_ceil(target_chunks).max(1))
    }

    /// Total number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the queue wraps no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured chunk size. `len().div_ceil(chunk_size())` is the
    /// number of successful steals a full drain performs — the quantity
    /// the instrumented queue kernels report.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Atomically takes the next chunk; `None` once drained.
    ///
    /// The cursor stays bounded after the queue drains. A bare
    /// `fetch_add` would keep growing by `chunk` on every post-drain
    /// call — harmless for one drain, but a queue polled in a loop
    /// (BFS levels retry steal until `None`) would march the cursor
    /// toward `usize::MAX` and eventually wrap, handing out chunks
    /// again. Two guards prevent that: a `Relaxed` fast-path load skips
    /// the RMW entirely once the cursor is past the end (the common
    /// post-drain case), and the thread that overshoots tries once to
    /// CAS the cursor back down to `len`. All orderings are `Relaxed`
    /// per the [`crate::atomics`] policy: the cursor only partitions
    /// index space, it never publishes data — the `&[T]` items were
    /// written before the queue was built and are frozen for its
    /// lifetime, so the borrow itself is the synchronization.
    pub fn steal(&self) -> Option<&'a [T]> {
        let len = self.items.len();
        if self.cursor.load(Ordering::Relaxed) >= len {
            return None;
        }
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= len {
            // We overshot: undo our own increment if nobody else has
            // moved the cursor since. If the CAS fails another thread
            // either overshot too (its own cap attempt follows) or a
            // racing fast-path already saw a bounded value; one
            // winning cap per drain is enough to keep it bounded.
            let _ = self.cursor.compare_exchange(
                start + self.chunk,
                len,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            return None;
        }
        Some(&self.items[start..(start + self.chunk).min(len)])
    }

    /// Current cursor position (diagnostic; racy by nature).
    ///
    /// After a full drain this is at most `len() + chunk` — bounded —
    /// which the regression tests assert.
    pub fn cursor(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Drains the queue with `workers` rayon tasks, each repeatedly
    /// stealing chunks and folding items into a worker-local accumulator;
    /// returns all accumulators.
    ///
    /// Not available under `cfg(loom)`: the loom models drive [`steal`]
    /// (self::ChunkedQueue::steal) directly with model-checked threads
    /// rather than through rayon's scheduler.
    #[cfg(not(loom))]
    pub fn drain_with<A, I, F>(&self, workers: usize, init: I, f: F) -> Vec<A>
    where
        T: Sync,
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, &T) + Sync,
    {
        use rayon::prelude::*;
        (0..workers.max(1))
            .into_par_iter()
            .map(|_| {
                let mut acc = init();
                while let Some(chunk) = self.steal() {
                    for item in chunk {
                        f(&mut acc, item);
                    }
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_covers_everything_once() {
        let items: Vec<u32> = (0..103).collect();
        let q = ChunkedQueue::new(&items, 10);
        let mut seen = Vec::new();
        while let Some(c) = q.steal() {
            seen.extend_from_slice(c);
        }
        assert_eq!(seen, items);
        assert!(q.steal().is_none());
    }

    #[test]
    fn zero_chunk_treated_as_one() {
        let items = [1, 2, 3];
        let q = ChunkedQueue::new(&items, 0);
        assert_eq!(q.steal(), Some(&items[0..1]));
    }

    #[test]
    fn auto_chunk_is_positive() {
        let items: Vec<u32> = (0..5).collect();
        let q = ChunkedQueue::with_auto_chunk(&items, 8);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 5);
        let mut n = 0;
        while let Some(c) = q.steal() {
            n += c.len();
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn concurrent_steal_partitions() {
        let items: Vec<u32> = (0..10_000).collect();
        let q = ChunkedQueue::new(&items, 7);
        let sums: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let mut sum = 0u64;
                        while let Some(c) = q.steal() {
                            sum += c.iter().map(|&x| x as u64).sum::<u64>();
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: u64 = sums.iter().sum();
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn drain_with_collects_accumulators() {
        let items: Vec<u32> = (0..1000).collect();
        let q = ChunkedQueue::new(&items, 13);
        let accs = q.drain_with(4, Vec::new, |acc: &mut Vec<u32>, &x| acc.push(x));
        let mut all: Vec<u32> = accs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn empty_queue() {
        let items: Vec<u32> = Vec::new();
        let q = ChunkedQueue::new(&items, 4);
        assert!(q.is_empty());
        assert!(q.steal().is_none());
        let accs = q.drain_with(3, || 0u32, |acc, &x| *acc += x);
        assert_eq!(accs.iter().sum::<u32>(), 0);
    }

    #[test]
    fn cursor_stays_bounded_after_drain() {
        // Regression: steal() used to fetch_add unconditionally, so a
        // drained queue polled N more times grew its cursor by N*chunk.
        let items: Vec<u32> = (0..10).collect();
        let q = ChunkedQueue::new(&items, 3);
        while q.steal().is_some() {}
        let after_drain = q.cursor();
        for _ in 0..10_000 {
            assert!(q.steal().is_none());
        }
        assert_eq!(q.cursor(), after_drain, "cursor grew on post-drain polls");
        assert!(after_drain <= items.len() + 3);
    }

    #[test]
    fn cursor_bounded_under_concurrent_post_drain_polls() {
        let items: Vec<u32> = (0..100).collect();
        let q = ChunkedQueue::new(&items, 7);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let q = &q;
                s.spawn(move || {
                    // drain plus many extra polls racing with other threads
                    for _ in 0..5_000 {
                        let _ = q.steal();
                    }
                });
            }
        });
        // Worst case: every thread overshoots once before any cap lands,
        // but no poll after the first observed-drained load adds anything.
        assert!(
            q.cursor() <= items.len() + 8 * 7,
            "cursor {} escaped bound",
            q.cursor()
        );
    }
}
