//! A chunked dynamic work queue.
//!
//! The paper's Algorithms 1–2 are "work queue-based": hyperedge IDs (or
//! pairs) are enqueued up front and workers drain the queue. Static
//! partitioning (blocked/cyclic) fixes each worker's share when the loop
//! starts; the [`ChunkedQueue`] here instead hands out fixed-size chunks
//! through an atomic cursor, so a worker that drew cheap items simply
//! comes back for more — self-scheduling in the classic
//! guided/chunked-dynamic style, and the finest-grained answer to the
//! skewed-degree imbalance §III-D discusses.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A slice-backed queue handing out contiguous chunks atomically.
#[derive(Debug)]
pub struct ChunkedQueue<'a, T> {
    items: &'a [T],
    cursor: AtomicUsize,
    chunk: usize,
}

impl<'a, T> ChunkedQueue<'a, T> {
    /// Wraps `items` with the given chunk size (`0` is treated as 1).
    pub fn new(items: &'a [T], chunk: usize) -> Self {
        Self {
            items,
            cursor: AtomicUsize::new(0),
            chunk: chunk.max(1),
        }
    }

    /// Chunk size chosen so that roughly `4 × workers` chunks exist per
    /// worker (a common guided-scheduling default), at least 1.
    pub fn with_auto_chunk(items: &'a [T], workers: usize) -> Self {
        let target_chunks = workers.max(1) * 16;
        Self::new(items, items.len().div_ceil(target_chunks).max(1))
    }

    /// Total number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the queue wraps no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Atomically takes the next chunk; `None` once drained.
    pub fn steal(&self) -> Option<&'a [T]> {
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.items.len() {
            return None;
        }
        let end = (start + self.chunk).min(self.items.len());
        Some(&self.items[start..end])
    }

    /// Drains the queue with `workers` rayon tasks, each repeatedly
    /// stealing chunks and folding items into a worker-local accumulator;
    /// returns all accumulators.
    pub fn drain_with<A, I, F>(&self, workers: usize, init: I, f: F) -> Vec<A>
    where
        T: Sync,
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, &T) + Sync,
    {
        use rayon::prelude::*;
        (0..workers.max(1))
            .into_par_iter()
            .map(|_| {
                let mut acc = init();
                while let Some(chunk) = self.steal() {
                    for item in chunk {
                        f(&mut acc, item);
                    }
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_covers_everything_once() {
        let items: Vec<u32> = (0..103).collect();
        let q = ChunkedQueue::new(&items, 10);
        let mut seen = Vec::new();
        while let Some(c) = q.steal() {
            seen.extend_from_slice(c);
        }
        assert_eq!(seen, items);
        assert!(q.steal().is_none());
    }

    #[test]
    fn zero_chunk_treated_as_one() {
        let items = [1, 2, 3];
        let q = ChunkedQueue::new(&items, 0);
        assert_eq!(q.steal(), Some(&items[0..1]));
    }

    #[test]
    fn auto_chunk_is_positive() {
        let items: Vec<u32> = (0..5).collect();
        let q = ChunkedQueue::with_auto_chunk(&items, 8);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 5);
        let mut n = 0;
        while let Some(c) = q.steal() {
            n += c.len();
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn concurrent_steal_partitions() {
        let items: Vec<u32> = (0..10_000).collect();
        let q = ChunkedQueue::new(&items, 7);
        let sums: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let mut sum = 0u64;
                        while let Some(c) = q.steal() {
                            sum += c.iter().map(|&x| x as u64).sum::<u64>();
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: u64 = sums.iter().sum();
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn drain_with_collects_accumulators() {
        let items: Vec<u32> = (0..1000).collect();
        let q = ChunkedQueue::new(&items, 13);
        let accs = q.drain_with(4, Vec::new, |acc: &mut Vec<u32>, &x| acc.push(x));
        let mut all: Vec<u32> = accs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn empty_queue() {
        let items: Vec<u32> = Vec::new();
        let q = ChunkedQueue::new(&items, 4);
        assert!(q.is_empty());
        assert!(q.steal().is_none());
        let accs = q.drain_with(3, || 0u32, |acc, &x| *acc += x);
        assert_eq!(accs.iter().sum::<u32>(), 0);
    }
}
