//! Work-partitioning strategies (NWHy §III-D).
//!
//! The paper parallelizes its kernels with oneTBB `parallel_for` over three
//! kinds of ranges:
//!
//! - **blocked range** — contiguous ID chunks, one chunk per task (TBB's
//!   built-in `blocked_range`);
//! - **cyclic range** — with stride equal to the bin count `nb`, bin 0
//!   processes IDs `0, nb, 2·nb, …`, bin 1 processes `1, 1+nb, …`, etc.,
//!   which de-clusters skewed degree distributions (especially after
//!   relabel-by-degree);
//! - **cyclic neighbor range** — cyclic, but yielding `(id, neighborhood)`
//!   tuples; the graph-aware version lives in `nwgraph` on top of
//!   [`cyclic_indices`].
//!
//! Rayon's work-stealing scheduler plays the role of TBB's; each bin/block
//! becomes one stealable task.

use rayon::prelude::*;
use std::ops::Range;

/// How a `[0, n)` iteration space is split into parallel tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Contiguous chunks; `0` bins means "let rayon decide" (auto
    /// partitioner analog).
    Blocked { num_bins: usize },
    /// Strided assignment with `num_bins` bins (`0` = one bin per thread).
    Cyclic { num_bins: usize },
}

impl Strategy {
    /// Blocked with rayon-chosen granularity.
    pub const AUTO: Strategy = Strategy::Blocked { num_bins: 0 };

    /// Resolves `num_bins == 0` to a concrete bin count.
    pub fn bins(&self) -> usize {
        let requested = match self {
            Strategy::Blocked { num_bins } | Strategy::Cyclic { num_bins } => *num_bins,
        };
        if requested == 0 {
            (rayon::current_num_threads() * 4).max(1)
        } else {
            requested
        }
    }
}

/// Splits `0..n` into at most `n_blocks` contiguous ranges of near-equal
/// length. Empty ranges are omitted.
pub fn blocked_ranges(n: usize, n_blocks: usize) -> Vec<Range<usize>> {
    if n == 0 || n_blocks == 0 {
        return Vec::new();
    }
    let block = n.div_ceil(n_blocks);
    (0..n)
        .step_by(block)
        .map(|start| start..(start + block).min(n))
        .collect()
}

/// The indices owned by `bin` under cyclic partitioning of `0..n` with
/// `num_bins` bins: `bin, bin + num_bins, bin + 2·num_bins, …`.
#[derive(Debug, Clone)]
pub struct CyclicRange {
    next: usize,
    n: usize,
    stride: usize,
}

impl CyclicRange {
    /// Creates the cyclic range for `bin` of `num_bins` over `0..n`.
    ///
    /// # Panics
    /// Panics if `num_bins == 0` or `bin >= num_bins`.
    pub fn new(bin: usize, num_bins: usize, n: usize) -> Self {
        assert!(num_bins > 0, "num_bins must be positive");
        assert!(bin < num_bins, "bin {bin} out of range {num_bins}");
        Self {
            next: bin,
            n,
            stride: num_bins,
        }
    }
}

impl Iterator for CyclicRange {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.next >= self.n {
            return None;
        }
        let cur = self.next;
        self.next += self.stride;
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = if self.next >= self.n {
            0
        } else {
            (self.n - self.next).div_ceil(self.stride)
        };
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for CyclicRange {}

/// Returns an iterator over all `num_bins` cyclic bins of `0..n`.
pub fn cyclic_indices(n: usize, num_bins: usize) -> impl Iterator<Item = CyclicRange> {
    (0..num_bins.max(1)).map(move |bin| CyclicRange::new(bin, num_bins.max(1), n))
}

/// Runs `f(i)` for every `i in 0..n` in parallel under `strategy`.
///
/// This is the Rust analog of Listing 4's `tbb::parallel_for` calls: blocked
/// chunks or cyclic bins become rayon tasks, and rayon's work stealing
/// rebalances stragglers exactly as TBB's scheduler does in the paper.
pub fn par_for_each_index<F>(n: usize, strategy: Strategy, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    match strategy {
        Strategy::Blocked { num_bins: 0 } => {
            (0..n).into_par_iter().for_each(f);
        }
        Strategy::Blocked { num_bins } => {
            blocked_ranges(n, num_bins).into_par_iter().for_each(|r| {
                for i in r {
                    f(i);
                }
            });
        }
        Strategy::Cyclic { num_bins } => {
            let bins = if num_bins == 0 {
                Strategy::Cyclic { num_bins }.bins()
            } else {
                num_bins
            };
            (0..bins).into_par_iter().for_each(|bin| {
                for i in CyclicRange::new(bin, bins, n) {
                    f(i);
                }
            });
        }
    }
}

/// Like [`par_for_each_index`], but hands each task a per-bin accumulator
/// created by `init`, and returns all accumulators. This is the pattern
/// Algorithms 1–2 use for per-thread edge lists `L_t(H)`.
pub fn par_for_each_index_with<A, I, F>(n: usize, strategy: Strategy, init: I, f: F) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
{
    match strategy {
        Strategy::Blocked { .. } => {
            let bins = strategy.bins();
            blocked_ranges(n, bins)
                .into_par_iter()
                .map(|r| {
                    let mut acc = init();
                    for i in r {
                        f(&mut acc, i);
                    }
                    acc
                })
                .collect()
        }
        Strategy::Cyclic { .. } => {
            let bins = strategy.bins();
            (0..bins)
                .into_par_iter()
                .map(|bin| {
                    let mut acc = init();
                    for i in CyclicRange::new(bin, bins, n) {
                        f(&mut acc, i);
                    }
                    acc
                })
                .collect()
        }
    }
}

/// Per-bin workload report for a partitioning strategy over items whose
/// costs are given by `cost`: returns `(max_bin, mean_bin, imbalance)`
/// where `imbalance = max / mean` (1.0 = perfectly balanced). This is the
/// §III-D diagnosis tool: blocked partitioning of a degree-sorted
/// skewed graph shows large imbalance, cyclic shows ~1.
pub fn imbalance_report(costs: &[usize], strategy: Strategy) -> (usize, f64, f64) {
    let bins = strategy.bins();
    let mut bin_cost = vec![0usize; bins];
    match strategy {
        Strategy::Blocked { .. } => {
            for (b, r) in blocked_ranges(costs.len(), bins).into_iter().enumerate() {
                bin_cost[b] = r.map(|i| costs[i]).sum();
            }
        }
        Strategy::Cyclic { .. } => {
            for (b, slot) in bin_cost.iter_mut().enumerate() {
                *slot = CyclicRange::new(b, bins, costs.len())
                    .map(|i| costs[i])
                    .sum();
            }
        }
    }
    let max = bin_cost.iter().copied().max().unwrap_or(0);
    let total: usize = bin_cost.iter().sum();
    let mean = total as f64 / bins as f64;
    let imbalance = if mean == 0.0 { 1.0 } else { max as f64 / mean };
    (max, mean, imbalance)
}

#[cfg(test)]
mod tests {
    use super::*;
    // lint: deliberately std, not crate::sync — these model-free tests
    // also run under the `--cfg loom` CI job, outside loom::model
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn blocked_ranges_cover_without_overlap() {
        let ranges = blocked_ranges(10, 3);
        let all: Vec<usize> = ranges.iter().cloned().flatten().collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_ranges_more_blocks_than_items() {
        let ranges = blocked_ranges(2, 8);
        let all: Vec<usize> = ranges.iter().cloned().flatten().collect();
        assert_eq!(all, vec![0, 1]);
    }

    #[test]
    fn blocked_ranges_empty() {
        assert!(blocked_ranges(0, 4).is_empty());
        assert!(blocked_ranges(5, 0).is_empty());
    }

    #[test]
    fn cyclic_range_strides_correctly() {
        let idx: Vec<usize> = CyclicRange::new(1, 3, 10).collect();
        assert_eq!(idx, vec![1, 4, 7]);
    }

    #[test]
    fn cyclic_range_size_hint_is_exact() {
        for n in 0..20 {
            for bins in 1..5 {
                for b in 0..bins {
                    let r = CyclicRange::new(b, bins, n);
                    assert_eq!(r.len(), r.clone().count(), "n={n} bins={bins} b={b}");
                }
            }
        }
    }

    #[test]
    fn cyclic_bins_partition_the_space() {
        let n = 23;
        let bins = 4;
        let mut seen = vec![0u32; n];
        for r in cyclic_indices(n, bins) {
            for i in r {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cyclic_rejects_bad_bin() {
        let _ = CyclicRange::new(3, 3, 10);
    }

    fn visits_all(strategy: Strategy) {
        let n = 1000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_each_index(n, strategy, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_blocked_auto_visits_each_once() {
        visits_all(Strategy::AUTO);
    }

    #[test]
    fn par_blocked_visits_each_once() {
        visits_all(Strategy::Blocked { num_bins: 7 });
    }

    #[test]
    fn par_cyclic_visits_each_once() {
        visits_all(Strategy::Cyclic { num_bins: 5 });
    }

    #[test]
    fn par_cyclic_zero_bins_defaults() {
        visits_all(Strategy::Cyclic { num_bins: 0 });
    }

    #[test]
    fn imbalance_blocked_on_sorted_skew() {
        // costs sorted descending: blocked gives all heavy items to bin 0
        let costs: Vec<usize> = (0..100).map(|i| 100 - i).collect();
        let blocked = imbalance_report(&costs, Strategy::Blocked { num_bins: 4 });
        let cyclic = imbalance_report(&costs, Strategy::Cyclic { num_bins: 4 });
        assert!(blocked.2 > 1.3, "blocked imbalance {}", blocked.2);
        assert!(cyclic.2 < 1.05, "cyclic imbalance {}", cyclic.2);
    }

    #[test]
    fn imbalance_uniform_costs_balanced() {
        let costs = vec![5usize; 64];
        for s in [
            Strategy::Blocked { num_bins: 4 },
            Strategy::Cyclic { num_bins: 4 },
        ] {
            let (_, _, imb) = imbalance_report(&costs, s);
            assert!((imb - 1.0).abs() < 1e-9, "{s:?}");
        }
    }

    #[test]
    fn imbalance_empty_costs() {
        let (max, mean, imb) = imbalance_report(&[], Strategy::Cyclic { num_bins: 3 });
        assert_eq!(max, 0);
        assert_eq!(mean, 0.0);
        assert_eq!(imb, 1.0);
    }

    #[test]
    fn with_accumulators_collects_everything() {
        for strategy in [
            Strategy::Blocked { num_bins: 3 },
            Strategy::Cyclic { num_bins: 3 },
        ] {
            let accs = par_for_each_index_with(100, strategy, Vec::new, |acc, i| acc.push(i));
            let mut all: Vec<usize> = accs.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }

    mod props {
        use super::*;
        // not the prelude: proptest's `Strategy` trait would shadow ours
        use proptest::{prop_assert, prop_assert_eq, proptest};

        proptest! {
            // Both partitioners must form an exact partition of 0..n for
            // any (n, bins), including n == 0, n < bins, and n == bins.
            #[test]
            fn prop_blocked_ranges_partition(n in 0usize..500, bins in 1usize..20) {
                let ranges = blocked_ranges(n, bins);
                prop_assert!(ranges.len() <= bins);
                let all: Vec<usize> = ranges.iter().cloned().flatten().collect();
                prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
            }

            #[test]
            fn prop_cyclic_bins_partition(n in 0usize..500, bins in 1usize..20) {
                let mut seen = vec![0u32; n];
                for r in cyclic_indices(n, bins) {
                    for i in r {
                        seen[i] += 1;
                    }
                }
                prop_assert!(seen.iter().all(|&c| c == 1));
            }

            // Visit-exactly-once must hold under real parallel execution
            // for every strategy and edge-shaped n (0, 1, == bins, etc.).
            #[test]
            fn prop_par_for_each_visits_once(n in 0usize..300, bins in 0usize..9) {
                for strategy in [
                    Strategy::Blocked { num_bins: bins },
                    Strategy::Cyclic { num_bins: bins },
                ] {
                    let counts: Vec<AtomicUsize> =
                        (0..n).map(|_| AtomicUsize::new(0)).collect();
                    par_for_each_index(n, strategy, |i| {
                        counts[i].fetch_add(1, Ordering::Relaxed);
                    });
                    prop_assert!(
                        counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                        "strategy {strategy:?} n {n}"
                    );
                }
            }

            #[test]
            fn prop_accumulators_lose_nothing(n in 0usize..300, bins in 1usize..9) {
                for strategy in [
                    Strategy::Blocked { num_bins: bins },
                    Strategy::Cyclic { num_bins: bins },
                ] {
                    let accs =
                        par_for_each_index_with(n, strategy, Vec::new, |acc, i| acc.push(i));
                    let mut all: Vec<usize> = accs.into_iter().flatten().collect();
                    all.sort_unstable();
                    prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
                }
            }
        }
    }
}
