//! `cfg(loom)`-switched atomic types for the concurrency primitives.
//!
//! The lock-free kernels ([`crate::atomics`], [`crate::bitmap`],
//! [`crate::workq`]) import their atomic types from here instead of
//! `std::sync::atomic`. Under a normal build these are exactly the std
//! types (zero cost); under `RUSTFLAGS="--cfg loom"` they swap to the
//! loom model checker's instrumented atomics, whose every operation is
//! a schedule point, so the loom tests in `tests/loom.rs` can
//! exhaustively explore the primitives' interleavings:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p nwhy-util --test loom --release
//! ```

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};

#[cfg(not(loom))]
// lint: the one sanctioned std::sync::atomic import — every other module
// routes through this re-export (enforced by `cargo xtask lint`).
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
