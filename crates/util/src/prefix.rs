//! Parallel exclusive prefix sums.
//!
//! CSR construction — the central data-structure build in both NWGraph and
//! NWHy — is "histogram, scan, scatter". The scan here is a classic
//! two-pass blocked parallel exclusive prefix sum: per-block sums are
//! computed in parallel, scanned sequentially (the block count is tiny),
//! and then each block is rescanned in parallel with its offset.

use rayon::prelude::*;

/// Minimum input size before the parallel path is worth its overhead.
const PAR_THRESHOLD: usize = 1 << 15;

/// Returns the exclusive prefix sum of `values` with a trailing total,
/// i.e. an array of length `values.len() + 1` where `out[0] == 0` and
/// `out[i] == values[..i].sum()`. This is exactly the CSR `indices_` array
/// when `values` are vertex degrees.
pub fn exclusive_prefix_sum(values: &[usize]) -> Vec<usize> {
    let n = values.len();
    let mut out = vec![0usize; n + 1];
    if n < PAR_THRESHOLD {
        let mut acc = 0usize;
        for (i, &v) in values.iter().enumerate() {
            out[i] = acc;
            acc += v;
        }
        out[n] = acc;
        return out;
    }

    let n_blocks = rayon::current_num_threads().max(1) * 4;
    let block = n.div_ceil(n_blocks);
    let mut block_sums: Vec<usize> = values
        .par_chunks(block)
        .map(|c| c.iter().sum::<usize>())
        .collect();
    // Sequential scan over ~4*threads entries.
    let mut acc = 0usize;
    for s in &mut block_sums {
        let v = *s;
        *s = acc;
        acc += v;
    }
    let total = acc;

    // Rescan each block with its offset, writing into `out[i..i+len]`.
    out[..n]
        .par_chunks_mut(block)
        .zip(values.par_chunks(block))
        .zip(block_sums.par_iter())
        .for_each(|((out_chunk, val_chunk), &offset)| {
            let mut acc = offset;
            for (o, &v) in out_chunk.iter_mut().zip(val_chunk) {
                *o = acc;
                acc += v;
            }
        });
    out[n] = total;
    out
}

/// In-place exclusive prefix sum over `values`; returns the total.
///
/// After the call, `values[i]` holds the sum of the original
/// `values[..i]`. Used when the degree array can be reused as the CSR
/// offset array.
pub fn exclusive_prefix_sum_in_place(values: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for v in values.iter_mut() {
        let cur = *v;
        *v = acc;
        acc += cur;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input() {
        assert_eq!(exclusive_prefix_sum(&[]), vec![0]);
    }

    #[test]
    fn small_known_case() {
        assert_eq!(
            exclusive_prefix_sum(&[3, 1, 4, 1, 5]),
            vec![0, 3, 4, 8, 9, 14]
        );
    }

    #[test]
    fn in_place_matches_allocating_version() {
        let vals = vec![2usize, 0, 7, 1];
        let expect = exclusive_prefix_sum(&vals);
        let mut v = vals.clone();
        let total = exclusive_prefix_sum_in_place(&mut v);
        assert_eq!(total, 10);
        assert_eq!(&expect[..4], &v[..]);
    }

    #[test]
    fn large_input_uses_parallel_path_and_is_correct() {
        let n = PAR_THRESHOLD * 3 + 17;
        let vals: Vec<usize> = (0..n).map(|i| i % 7).collect();
        let got = exclusive_prefix_sum(&vals);
        let mut acc = 0usize;
        for i in 0..n {
            assert_eq!(got[i], acc, "mismatch at {i}");
            acc += vals[i];
        }
        assert_eq!(got[n], acc);
    }

    proptest! {
        #[test]
        fn prop_matches_sequential(vals in proptest::collection::vec(0usize..100, 0..2000)) {
            let got = exclusive_prefix_sum(&vals);
            prop_assert_eq!(got.len(), vals.len() + 1);
            let mut acc = 0usize;
            for (i, v) in vals.iter().enumerate() {
                prop_assert_eq!(got[i], acc);
                acc += v;
            }
            prop_assert_eq!(got[vals.len()], acc);
        }

        #[test]
        fn prop_monotone_nondecreasing(vals in proptest::collection::vec(0usize..1000, 0..500)) {
            let got = exclusive_prefix_sum(&vals);
            for w in got.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        // Boundary lengths around the sequential/parallel switch: the two
        // code paths must agree exactly at n = PAR_THRESHOLD ± small.
        #[test]
        fn prop_threshold_boundary_agrees(delta in 0usize..4, seed in 0usize..100) {
            for n in [
                PAR_THRESHOLD.saturating_sub(delta + 1),
                PAR_THRESHOLD + delta,
            ] {
                let vals: Vec<usize> = (0..n).map(|i| (i + seed) % 11).collect();
                let par = exclusive_prefix_sum(&vals);
                let mut seq = vals.clone();
                let total = exclusive_prefix_sum_in_place(&mut seq);
                prop_assert_eq!(&par[..n], &seq[..]);
                prop_assert_eq!(par[n], total);
            }
        }

        #[test]
        fn prop_in_place_total_matches_sum(
            vals in proptest::collection::vec(0usize..50, 0..300),
        ) {
            let expect_total: usize = vals.iter().sum();
            let mut v = vals.clone();
            let total = exclusive_prefix_sum_in_place(&mut v);
            prop_assert_eq!(total, expect_total);
            if !vals.is_empty() {
                prop_assert_eq!(v[0], 0);
            }
        }
    }
}
