//! Wall-clock timing and summary statistics for the benchmark harnesses.

use std::time::{Duration, Instant};

/// A simple wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new timer.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Elapsed milliseconds as `f64`.
    pub fn millis(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

/// Times `f`, returning `(result, seconds)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Timer::start();
    let r = f();
    (r, t.seconds())
}

/// Runs `f` `trials` times and returns the per-trial seconds.
pub fn time_trials<R>(trials: usize, mut f: impl FnMut() -> R) -> Vec<f64> {
    (0..trials)
        .map(|_| {
            let t = Timer::start();
            let r = f();
            std::hint::black_box(r);
            t.seconds()
        })
        .collect()
}

/// Median of a sample (average of middle two for even lengths).
///
/// # Panics
/// Panics on an empty sample.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of empty sample");
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

/// Summary statistics over a sample of runtimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (see [`median`]).
    pub median: f64,
    /// Number of observations.
    pub n: usize,
}

impl Stats {
    /// Computes statistics over `samples`.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "stats of empty sample");
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Self {
            min,
            max,
            mean,
            median: median(samples),
            n: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_something() {
        let t = Timer::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.millis() >= 4.0);
        assert!(t.seconds() > 0.0);
    }

    #[test]
    fn time_returns_result() {
        let (v, secs) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn time_trials_counts() {
        let runs = time_trials(5, || 1 + 1);
        assert_eq!(runs.len(), 5);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        median(&[]);
    }

    #[test]
    fn stats_summary() {
        let s = Stats::of(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.n, 4);
    }
}
