//! Thread-pool helpers for the strong-scaling harnesses.
//!
//! The paper's Figures 7–8 sweep thread counts while holding the input
//! fixed. [`with_threads`] runs a closure inside a dedicated Rayon pool of
//! exactly `n` threads so every `par_iter`/`par_for_each_index` inside it is
//! bounded by that count.

use rayon::ThreadPoolBuilder;

/// Runs `f` on a fresh Rayon pool with exactly `n` worker threads and
/// returns its result. `n == 0` is treated as 1.
pub fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = ThreadPoolBuilder::new()
        .num_threads(n.max(1))
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// The maximum thread count the scaling experiments should sweep to on this
/// host: the number of available CPUs (as rayon detects it), at least 1.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Powers of two `1, 2, 4, …` up to and including `max` (and `max` itself
/// if it is not a power of two) — the thread counts Figures 7–8 sweep.
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut out = Vec::new();
    let mut t = 1;
    while t <= max {
        out.push(t);
        t *= 2;
    }
    if *out.last().unwrap() != max {
        out.push(max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_threads_limits_pool_size() {
        let seen = with_threads(2, rayon::current_num_threads);
        assert_eq!(seen, 2);
    }

    #[test]
    fn with_threads_zero_means_one() {
        let seen = with_threads(0, rayon::current_num_threads);
        assert_eq!(seen, 1);
    }

    #[test]
    fn with_threads_runs_parallel_work() {
        let sum: u64 = with_threads(3, || (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn thread_sweep_shapes() {
        assert_eq!(thread_sweep(1), vec![1]);
        assert_eq!(thread_sweep(4), vec![1, 2, 4]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_sweep(0), vec![1]);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
