//! Rectangular incidence-matrix operations (§III-B.1a).
//!
//! "Many of the hypergraph algorithms are operated on the incidence
//! matrix of a hypergraph … incidence matrices are generally rectangular
//! (n hypernodes × m hyperedges) … hence hypergraph libraries need to
//! support rectangular matrices efficiently."
//!
//! The bi-adjacency CSR pair *is* the sparse incidence matrix `B` (and
//! its transpose), so the two fundamental rectangular products come for
//! free:
//!
//! - `y = Bᵀ·x` — gather node values into hyperedges
//!   ([`edge_gather`]): `y[e] = Σ_{v ∈ e} x[v]`;
//! - `y = B·x` — scatter hyperedge values onto hypernodes
//!   ([`node_gather`]): `y[v] = Σ_{e ∋ v} x[e]`.
//!
//! Chained, they give the classic two-step hypergraph diffusion
//! `x ← B·(Bᵀ·x)` used by spectral methods and hypergraph random walks.

use crate::hypergraph::Hypergraph;
use crate::ids;
use rayon::prelude::*;

/// `y[e] = Σ_{v ∈ e} x[v]` — one rectangular SpMV with the incidence
/// matrix transposed (hyperedges gather from their member nodes).
/// Weighted hypergraphs use the incidence weights as matrix values.
///
/// # Panics
/// Panics if `x.len() != h.num_hypernodes()`.
pub fn edge_gather(h: &Hypergraph, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        h.num_hypernodes(),
        "x must have one entry per hypernode"
    );
    (0..ids::from_usize(h.num_hyperedges()))
        .into_par_iter()
        .map(|e| {
            h.edges()
                .weighted_neighbors(e)
                .map(|(v, w)| w * x[v as usize])
                .sum()
        })
        .collect()
}

/// `y[v] = Σ_{e ∋ v} x[e]` — the dual rectangular SpMV (hypernodes
/// gather from their incident hyperedges).
///
/// # Panics
/// Panics if `x.len() != h.num_hyperedges()`.
pub fn node_gather(h: &Hypergraph, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        h.num_hyperedges(),
        "x must have one entry per hyperedge"
    );
    (0..ids::from_usize(h.num_hypernodes()))
        .into_par_iter()
        .map(|v| {
            h.nodes()
                .weighted_neighbors(v)
                .map(|(e, w)| w * x[e as usize])
                .sum()
        })
        .collect()
}

/// One step of the degree-normalized two-phase hypergraph random walk
/// (Zhou/Huang/Schölkopf-style): node mass spreads uniformly to incident
/// hyperedges, then uniformly to their members. Rows with zero degree
/// keep their mass.
pub fn diffusion_step(h: &Hypergraph, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        h.num_hypernodes(),
        "x must have one entry per hypernode"
    );
    // node → edge, normalized by node degree
    let edge_mass: Vec<f64> = (0..ids::from_usize(h.num_hyperedges()))
        .into_par_iter()
        .map(|e| {
            h.edge_members(e)
                .iter()
                .map(|&v| {
                    let d = h.node_degree(v);
                    if d == 0 {
                        0.0
                    } else {
                        x[v as usize] / d as f64
                    }
                })
                .sum()
        })
        .collect();
    // edge → node, normalized by edge size; stuck mass stays put
    (0..ids::from_usize(h.num_hypernodes()))
        .into_par_iter()
        .map(|v| {
            if h.node_degree(v) == 0 {
                return x[v as usize];
            }
            h.node_memberships(v)
                .iter()
                .map(|&e| {
                    let d = h.edge_degree(e);
                    if d == 0 {
                        0.0
                    } else {
                        edge_mass[e as usize] / d as f64
                    }
                })
                .sum()
        })
        .collect()
}

/// Dominant singular value of the incidence matrix `B` (equivalently,
/// the spectral radius of the adjoin adjacency `[[0, Bᵀ],[B, 0]]` is
/// ±σ₁), computed by alternating power iteration `x ← Bᵀ·(B·x)`.
/// Returns `(sigma1, node_vector)` — the vector is the dominant right
/// singular vector over hypernodes, normalized to unit 2-norm.
///
/// Converges when σ estimates change by < `tol` or after `max_iter`
/// rounds; returns `(0.0, zeros)` for empty/edgeless hypergraphs.
pub fn dominant_singular(h: &Hypergraph, tol: f64, max_iter: usize) -> (f64, Vec<f64>) {
    let nv = h.num_hypernodes();
    if nv == 0 || h.num_incidences() == 0 {
        return (0.0, vec![0.0; nv]);
    }
    // deterministic non-degenerate start
    let mut x: Vec<f64> = (0..nv).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let norm = |v: &[f64]| v.iter().map(|a| a * a).sum::<f64>().sqrt();
    let n0 = norm(&x);
    x.iter_mut().for_each(|a| *a /= n0);

    let mut sigma = 0.0f64;
    for _ in 0..max_iter.max(1) {
        let y = edge_gather(h, &x); // y = Bᵀ? (edges gather) — y in edge space
        let z = node_gather(h, &y); // z = B·y — back to node space
        let zn = norm(&z);
        if zn == 0.0 {
            return (0.0, vec![0.0; nv]);
        }
        let new_sigma = zn.sqrt(); // z = BᵀB x ⇒ ‖z‖ ≈ σ² for unit x
        x = z.into_iter().map(|a| a / zn).collect();
        if (new_sigma - sigma).abs() < tol {
            return (new_sigma, x);
        }
        sigma = new_sigma;
    }
    (sigma, x)
}

/// The hypergraph-degree identity `1ᵀ·B·1 = Σ d(v) = Σ |e|`: total
/// incidence count computed three ways (diagnostic helper used by tests
/// and the bench harness sanity checks).
pub fn incidence_checksum(h: &Hypergraph) -> (f64, f64, usize) {
    let by_edges = edge_gather(h, &vec![1.0; h.num_hypernodes()])
        .iter()
        .sum::<f64>();
    let by_nodes = node_gather(h, &vec![1.0; h.num_hyperedges()])
        .iter()
        .sum::<f64>();
    (by_edges, by_nodes, h.num_incidences())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;

    #[test]
    fn edge_gather_with_ones_gives_edge_sizes() {
        let h = paper_hypergraph();
        let sizes = edge_gather(&h, &[1.0; 9]);
        assert_eq!(sizes, vec![4.0, 4.0, 5.0, 5.0]);
    }

    #[test]
    fn node_gather_with_ones_gives_node_degrees() {
        let h = paper_hypergraph();
        let degs = node_gather(&h, &[1.0; 4]);
        let want: Vec<f64> = (0..9u32).map(|v| h.node_degree(v) as f64).collect();
        assert_eq!(degs, want);
    }

    #[test]
    fn checksum_three_ways_agree() {
        let h = paper_hypergraph();
        let (a, b, c) = incidence_checksum(&h);
        assert_eq!(a, 18.0);
        assert_eq!(b, 18.0);
        assert_eq!(c, 18);
    }

    #[test]
    fn gathers_respect_indicator_vectors() {
        let h = paper_hypergraph();
        // indicator of node 3 → count of hyperedges containing it per edge
        let mut x = vec![0.0; 9];
        x[3] = 1.0;
        let y = edge_gather(&h, &x);
        assert_eq!(y, vec![1.0, 1.0, 0.0, 1.0]); // node 3 ∈ e0, e1, e3
    }

    #[test]
    fn diffusion_conserves_mass_on_isolated_free_hypergraph() {
        let h = paper_hypergraph(); // every node is in some hyperedge
        let n = h.num_hypernodes();
        let x = vec![1.0 / n as f64; n];
        let y = diffusion_step(&h, &x);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn diffusion_keeps_isolated_mass_in_place() {
        let bel = crate::biedgelist::BiEdgeList::from_incidences(1, 3, vec![(0, 0), (0, 1)]);
        let h = crate::hypergraph::Hypergraph::from_biedgelist(&bel);
        let x = vec![0.2, 0.3, 0.5];
        let y = diffusion_step(&h, &x);
        assert_eq!(y[2], 0.5, "isolated node keeps its mass");
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_incidences_scale_products() {
        let bel = crate::biedgelist::BiEdgeList::from_weighted_incidences(
            1,
            2,
            vec![(0, 0), (0, 1)],
            vec![2.0, 3.0],
        );
        let h = crate::hypergraph::Hypergraph::from_biedgelist(&bel);
        let y = edge_gather(&h, &[1.0, 1.0]);
        assert_eq!(y, vec![5.0]);
        let z = node_gather(&h, &[1.0]);
        assert_eq!(z, vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "one entry per hypernode")]
    fn wrong_length_rejected() {
        let h = paper_hypergraph();
        edge_gather(&h, &[1.0]);
    }

    #[test]
    fn singular_value_of_single_edge_is_sqrt_size() {
        // B is a 1-column matrix of k ones: σ₁ = √k
        let h = crate::hypergraph::Hypergraph::from_memberships(&[vec![0, 1, 2, 3]]);
        let (sigma, vecr) = dominant_singular(&h, 1e-12, 200);
        assert!((sigma - 2.0).abs() < 1e-6, "{sigma}");
        // singular vector is uniform over the 4 member nodes
        for w in vecr.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn singular_value_bounds() {
        let h = paper_hypergraph();
        let (sigma, vecr) = dominant_singular(&h, 1e-12, 500);
        // σ₁² is bounded by max column sum × max row sum of BᵀB, and at
        // least the largest column norm (√|e|max = √5)
        assert!(sigma >= 5f64.sqrt() - 1e-9, "{sigma}");
        assert!(sigma <= 18f64, "{sigma}");
        // unit vector
        let norm: f64 = vecr.iter().map(|a| a * a).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        // residual check: ‖BᵀB x − σ² x‖ small
        let bx = edge_gather(&h, &vecr);
        let btbx = node_gather(&h, &bx);
        let res: f64 = btbx
            .iter()
            .zip(&vecr)
            .map(|(a, b)| (a - sigma * sigma * b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-4, "residual {res}");
    }

    #[test]
    fn singular_value_empty_cases() {
        let h = crate::hypergraph::Hypergraph::from_memberships(&[]);
        assert_eq!(dominant_singular(&h, 1e-9, 10).0, 0.0);
        let h = crate::hypergraph::Hypergraph::from_memberships(&[vec![], vec![]]);
        assert_eq!(dominant_singular(&h, 1e-9, 10).0, 0.0);
    }
}
