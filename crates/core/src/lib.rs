//! `nwhy-core` — the NWHy hypergraph analytics framework, in Rust.
//!
//! This crate implements the primary contribution of *NWHy: A Framework
//! for Hypergraph Analytics* (Liu, Firoz, Gebremedhin, Lumsdaine, IPDPS
//! 2022): data structures for four hypergraph representations and a suite
//! of parallel algorithms for exact and approximate hypergraph metrics.
//!
//! # Representations (§III-B)
//!
//! 1. **Bi-adjacency** ([`Hypergraph`]) — two *mutually indexed* CSR
//!    structures: hyperedges → incident hypernodes and hypernodes →
//!    incident hyperedges. Built from a [`BiEdgeList`].
//! 2. **Adjoin graph** ([`AdjoinGraph`]) — the paper's single-index-set
//!    representation: hyperedges take IDs `[0, n_e)`, hypernodes take IDs
//!    `[n_e, n_e + n_v)`, and the result is an ordinary symmetric graph
//!    any graph algorithm can process (range-aware splitting maps results
//!    back).
//! 3. **Clique expansion** ([`clique::clique_expansion`]) — each hyperedge
//!    becomes a clique over its hypernodes.
//! 4. **s-line graphs** ([`slinegraph`]) — hyperedges become vertices;
//!    `{e, f}` is an edge iff `|e ∩ f| ≥ s`. Seven construction algorithms
//!    are provided, including the paper's two new queue-based ones
//!    (Algorithms 1 and 2). All of them are generic over the
//!    [`repr::HyperAdjacency`] trait and are driven through the fluent
//!    [`SLineBuilder`] pipeline.
//!
//! # Algorithms (§III-C)
//!
//! - Exact, on the bi-adjacency: [`mod@algorithms::hyper_bfs`],
//!   [`mod@algorithms::hyper_cc`].
//! - Exact, on the adjoin graph: [`mod@algorithms::adjoin_bfs`],
//!   [`mod@algorithms::adjoin_cc`].
//! - [`mod@algorithms::toplex`] — maximal hyperedges (Algorithm 3).
//! - Approximate, via s-line graphs: [`smetrics::SLineGraph`] exposes the
//!   s-metric queries of the paper's Python API (Listing 5).

//!
//! # Invariant validation
//!
//! Every representation implements [`validate::Validate`]; the checked
//! builders run it automatically under `debug_assertions` or the
//! `validate` cargo feature, and the `nwhy check` CLI subcommand runs
//! it on demand. See the [`validate`] module docs.

#![forbid(unsafe_code)]

pub mod adjoin;
pub mod algorithms;
pub mod biedgelist;
pub mod clique;
pub mod fixtures;
pub mod hypergraph;
// The typed-domain and builder modules also satisfy the pedantic
// `must_use_candidate` bar: every value-returning accessor is annotated.
#[deny(clippy::must_use_candidate)]
pub mod ids;
pub mod matrix;
pub mod ops;
pub mod repr;
pub mod slinegraph;
pub mod smetrics;
pub mod transform;
pub mod validate;

pub use adjoin::AdjoinGraph;
pub use biedgelist::BiEdgeList;
pub use hypergraph::{Hypergraph, HypergraphStats};
pub use ids::{AdjoinId, HyperedgeId, HypernodeId, LocalId, Overlap, Relabeling};
pub use repr::{DualView, HyperAdjacency, RelabeledView};
pub use slinegraph::{Algorithm, BuildOptions, OverlapPath, OverlapPolicy, Relabel, SLineBuilder};
pub use smetrics::SLineGraph;
pub use validate::{InvariantViolation, SLineOutput, Validate};

/// Hyperedge/hypernode identifier type (dense `u32`, matching `nwgraph`).
pub type Id = u32;
