//! The bi-adjacency hypergraph representation (§III-B.1).
//!
//! A [`Hypergraph`] owns *two separate but mutually indexed* CSR
//! structures — exactly the paper's `biadjacency<0>` (hyperedges) and
//! `biadjacency<1>` (hypernodes). The hyperedge CSR maps each hyperedge to
//! its incident hypernodes; the hypernode CSR is its exact transpose.
//! Because the two index sets are separate, the incidence matrix may be
//! rectangular — [`nwgraph::Csr`] supports that natively.

use crate::biedgelist::BiEdgeList;
use crate::ids;
use crate::Id;
use nwgraph::Csr;

/// A hypergraph stored as mutually indexed bi-adjacency CSRs.
///
/// # Examples
///
/// ```
/// use nwhy_core::Hypergraph;
///
/// // three hyperedges over five hypernodes
/// let h = Hypergraph::from_memberships(&[
///     vec![0, 1, 2],
///     vec![2, 3],
///     vec![3, 4],
/// ]);
/// assert_eq!(h.num_hyperedges(), 3);
/// assert_eq!(h.num_hypernodes(), 5);
/// assert_eq!(h.edge_members(0), &[0, 1, 2]);
/// assert_eq!(h.node_memberships(3), &[1, 2]); // node 3 ∈ e1, e2
/// assert_eq!(h.dual().edge_members(3), &[1, 2]); // dual swaps roles
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hypergraph {
    /// Hyperedge → incident hypernodes (`biadjacency<0>`).
    edges: Csr,
    /// Hypernode → incident hyperedges (`biadjacency<1>`).
    nodes: Csr,
}

impl Hypergraph {
    /// Builds both bi-adjacencies from a [`BiEdgeList`] — the Rust
    /// equivalent of Listing 2's
    /// `biadjacency<0> hyperedges(bi_el); biadjacency<1> hypernodes(bi_el);`.
    pub fn from_biedgelist(bel: &BiEdgeList) -> Self {
        let edges = Csr::from_pairs(
            bel.num_hyperedges(),
            bel.num_hypernodes(),
            bel.incidences(),
            bel.weights(),
        );
        let nodes = edges.transpose();
        let h = Self { edges, nodes };
        crate::validate::debug_validate(&h, "Hypergraph::from_biedgelist");
        h
    }

    /// Assembles a hypergraph from two pre-built bi-adjacencies without
    /// checking that they are mutual transposes.
    ///
    /// This is the deserialization/testing back door: the
    /// [`Validate`](crate::validate::Validate) tests use it to build
    /// deliberately corrupted hypergraphs. Run
    /// [`validate`](crate::validate::Validate::validate) before handing
    /// the result to any algorithm; prefer
    /// [`Hypergraph::from_biedgelist`], which establishes the mutual
    /// indexing by construction.
    pub fn from_raw_parts(edges: Csr, nodes: Csr) -> Self {
        Self { edges, nodes }
    }

    /// Builds from per-hyperedge membership lists.
    pub fn from_memberships(memberships: &[Vec<Id>]) -> Self {
        Self::from_biedgelist(&BiEdgeList::from_memberships(memberships))
    }

    /// Number of hyperedges.
    #[inline]
    pub fn num_hyperedges(&self) -> usize {
        self.edges.num_vertices()
    }

    /// Number of hypernodes.
    #[inline]
    pub fn num_hypernodes(&self) -> usize {
        self.nodes.num_vertices()
    }

    /// Number of incidences (nonzeros of the incidence matrix).
    #[inline]
    pub fn num_incidences(&self) -> usize {
        self.edges.num_edges()
    }

    /// The hyperedge bi-adjacency: hyperedge → sorted incident hypernodes.
    #[inline]
    pub fn edges(&self) -> &Csr {
        &self.edges
    }

    /// The hypernode bi-adjacency: hypernode → sorted incident hyperedges.
    #[inline]
    pub fn nodes(&self) -> &Csr {
        &self.nodes
    }

    /// Hypernodes incident to hyperedge `e` (sorted).
    #[inline]
    pub fn edge_members(&self, e: Id) -> &[Id] {
        self.edges.neighbors(e)
    }

    /// Hyperedges incident to hypernode `v` (sorted).
    #[inline]
    pub fn node_memberships(&self, v: Id) -> &[Id] {
        self.nodes.neighbors(v)
    }

    /// Size (cardinality) of hyperedge `e`.
    #[inline]
    pub fn edge_degree(&self, e: Id) -> usize {
        self.edges.degree(e)
    }

    /// Number of hyperedges containing hypernode `v`.
    #[inline]
    pub fn node_degree(&self, v: Id) -> usize {
        self.nodes.degree(v)
    }

    /// `true` if the incidences carry weights (Listing 5's `weight`
    /// array). Weighted incidences are available through
    /// `edges().weighted_neighbors(e)` / `nodes().weighted_neighbors(v)`.
    pub fn is_weighted(&self) -> bool {
        self.edges.is_weighted()
    }

    /// The dual hypergraph `H*`: hyperedges and hypernodes swap roles
    /// (transpose of the incidence matrix, §II-C).
    pub fn dual(&self) -> Hypergraph {
        Hypergraph {
            edges: self.nodes.clone(),
            nodes: self.edges.clone(),
        }
    }

    /// Log2-binned histogram of hyperedge sizes: `hist[k]` counts
    /// hyperedges with size in `[2^(k-1)+1 … 2^k]` (`hist[0]` counts
    /// empty and singleton… see [`log2_histogram`]). Used by the bench
    /// harness to verify twin skew against the Table I rows.
    pub fn edge_size_histogram(&self) -> Vec<usize> {
        log2_histogram((0..ids::from_usize(self.num_hyperedges())).map(|e| self.edge_degree(e)))
    }

    /// Log2-binned histogram of hypernode degrees (see
    /// [`log2_histogram`]).
    pub fn node_degree_histogram(&self) -> Vec<usize> {
        log2_histogram((0..ids::from_usize(self.num_hypernodes())).map(|v| self.node_degree(v)))
    }

    /// Summary statistics in the shape of the paper's Table I.
    pub fn stats(&self) -> HypergraphStats {
        let nv = self.num_hypernodes();
        let ne = self.num_hyperedges();
        let inc = self.num_incidences();
        HypergraphStats {
            num_hypernodes: nv,
            num_hyperedges: ne,
            num_incidences: inc,
            avg_node_degree: if nv == 0 { 0.0 } else { inc as f64 / nv as f64 },
            avg_edge_degree: if ne == 0 { 0.0 } else { inc as f64 / ne as f64 },
            max_node_degree: self.nodes.max_degree(),
            max_edge_degree: self.edges.max_degree(),
        }
    }
}

/// Log2-binned histogram: bin 0 counts zeros, bin `k ≥ 1` counts values
/// `d` with `2^(k-1) ≤ d < 2^k`. Trailing empty bins are trimmed. The
/// standard way to eyeball a skewed degree distribution.
pub fn log2_histogram(values: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for d in values {
        let bin = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        if bin >= hist.len() {
            hist.resize(bin + 1, 0);
        }
        hist[bin] += 1;
    }
    while hist.last() == Some(&0) {
        hist.pop();
    }
    hist
}

/// The dataset-characteristics row of Table I: sizes, average degrees
/// (`d̄_v`, `d̄_e`) and maximum degrees (`Δ_v`, `Δ_e`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypergraphStats {
    /// |V| — number of hypernodes.
    pub num_hypernodes: usize,
    /// |E| — number of hyperedges.
    pub num_hyperedges: usize,
    /// Number of incidence pairs.
    pub num_incidences: usize,
    /// Average hypernode degree `d̄_v`.
    pub avg_node_degree: f64,
    /// Average hyperedge size `d̄_e`.
    pub avg_edge_degree: f64,
    /// Maximum hypernode degree `Δ_v`.
    pub max_node_degree: usize,
    /// Maximum hyperedge size `Δ_e`.
    pub max_edge_degree: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;
    use proptest::prelude::*;

    #[test]
    fn mutual_indexing_holds_on_fixture() {
        let h = paper_hypergraph();
        assert_eq!(h.num_hyperedges(), 4);
        assert_eq!(h.num_hypernodes(), 9);
        // every (e, v) incidence appears in both directions
        for e in 0..ids::from_usize(h.num_hyperedges()) {
            for &v in h.edge_members(e) {
                assert!(
                    h.node_memberships(v).contains(&e),
                    "({e},{v}) missing in nodes"
                );
            }
        }
        for v in 0..ids::from_usize(h.num_hypernodes()) {
            for &e in h.node_memberships(v) {
                assert!(h.edge_members(e).contains(&v), "({e},{v}) missing in edges");
            }
        }
    }

    #[test]
    fn fixture_member_sets() {
        let h = paper_hypergraph();
        assert_eq!(h.edge_members(0), &[0, 1, 2, 3]);
        assert_eq!(h.edge_members(1), &[3, 4, 5, 6]);
        assert_eq!(h.edge_members(2), &[4, 5, 6, 7, 8]);
        assert_eq!(h.edge_members(3), &[0, 2, 3, 5, 8]);
        assert_eq!(h.edge_degree(2), 5);
        assert_eq!(h.node_degree(3), 3); // in e0, e1, e3
    }

    #[test]
    fn dual_swaps_roles() {
        let h = paper_hypergraph();
        let d = h.dual();
        assert_eq!(d.num_hyperedges(), h.num_hypernodes());
        assert_eq!(d.num_hypernodes(), h.num_hyperedges());
        assert_eq!(d.edge_members(3), h.node_memberships(3));
        assert_eq!(d.dual(), h);
    }

    #[test]
    fn stats_match_fixture() {
        let h = paper_hypergraph();
        let s = h.stats();
        assert_eq!(s.num_hyperedges, 4);
        assert_eq!(s.num_hypernodes, 9);
        assert_eq!(s.num_incidences, 18);
        assert_eq!(s.max_edge_degree, 5);
        assert_eq!(s.max_node_degree, 3);
        assert!((s.avg_edge_degree - 4.5).abs() < 1e-12);
        assert!((s.avg_node_degree - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_memberships(&[]);
        assert_eq!(h.num_hyperedges(), 0);
        assert_eq!(h.num_hypernodes(), 0);
        let s = h.stats();
        assert_eq!(s.avg_edge_degree, 0.0);
        assert_eq!(s.avg_node_degree, 0.0);
    }

    #[test]
    fn hyperedges_with_empty_members() {
        // a hyperedge joining nothing is legal (degenerate set)
        let h = Hypergraph::from_memberships(&[vec![], vec![0]]);
        assert_eq!(h.num_hyperedges(), 2);
        assert_eq!(h.edge_degree(0), 0);
        assert_eq!(h.edge_degree(1), 1);
    }

    #[test]
    fn log2_histogram_bins_correctly() {
        // values: 0, 1, 2, 3, 4, 8 → bins 0,1,2,2,3,4
        let hist = log2_histogram([0usize, 1, 2, 3, 4, 8].into_iter());
        assert_eq!(hist, vec![1, 1, 2, 1, 1]);
        assert!(log2_histogram(std::iter::empty()).is_empty());
    }

    #[test]
    fn fixture_histograms() {
        let h = paper_hypergraph();
        // sizes 4,4,5,5 → all in bin 3 ([4,7])
        assert_eq!(h.edge_size_histogram(), vec![0, 0, 0, 4]);
        // node degrees: 2,1,2,3,2,3,2,1,2 → bin1: two 1s; bin2: five 2s+two 3s
        assert_eq!(h.node_degree_histogram(), vec![0, 2, 7]);
        let total: usize = h.node_degree_histogram().iter().sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn isolated_hypernodes_preserved() {
        // hypernode 4 appears in no hyperedge but is in the ID space
        let bel = BiEdgeList::from_incidences(1, 5, vec![(0, 0), (0, 1)]);
        let h = Hypergraph::from_biedgelist(&bel);
        assert_eq!(h.num_hypernodes(), 5);
        assert_eq!(h.node_degree(4), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_bidirectional_incidence(
            pairs in proptest::collection::vec((0u32..10, 0u32..15), 0..120)
        ) {
            let mut bel = BiEdgeList::from_incidences(10, 15, pairs);
            bel.sort_dedup();
            let h = Hypergraph::from_biedgelist(&bel);
            // edge CSR and node CSR are exact transposes
            let total_e: usize = (0..10u32).map(|e| h.edge_degree(e)).sum();
            let total_v: usize = (0..15u32).map(|v| h.node_degree(v)).sum();
            prop_assert_eq!(total_e, total_v);
            prop_assert_eq!(total_e, bel.num_incidences());
            for e in 0..10u32 {
                for &v in h.edge_members(e) {
                    prop_assert!(h.node_memberships(v).contains(&e));
                }
            }
        }

        #[test]
        fn prop_dual_involution(
            pairs in proptest::collection::vec((0u32..8, 0u32..8), 0..60)
        ) {
            let mut bel = BiEdgeList::from_incidences(8, 8, pairs);
            bel.sort_dedup();
            let h = Hypergraph::from_biedgelist(&bel);
            prop_assert_eq!(h.dual().dual(), h);
        }
    }
}
