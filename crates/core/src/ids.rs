//! Typed index domains: compile-time ID-space safety for every
//! representation.
//!
//! NWHy's representations deliberately juggle several ID spaces. The
//! bi-adjacency keeps hyperedges and hypernodes in two index sets
//! (§III-B.1); the adjoin graph concatenates them into one shared set —
//! hyperedges keep `[0, n_e)`, hypernodes shift to `[n_e, n_e + n_v)`
//! (§III-B.2); degree relabeling permutes the hyperedge space into a
//! *local* working space (§III-D). Modeling all of them as one
//! `pub type Id = u32` lets a hypernode ID flow silently into a slot
//! that expects an adjoin ID. This module makes that confusion
//! unrepresentable:
//!
//! ```text
//!   HyperedgeId  ──[AdjoinId::from_edge]──────────►  AdjoinId
//!   HypernodeId  ──[AdjoinId::from_node(v, ne)]───►  AdjoinId  (shift +ne)
//!   AdjoinId     ──[adjoin_to_node(a, ne)]────────►  HypernodeId (shift −ne)
//!   AdjoinId     ──[adjoin_to_edge(a, ne)]────────►  HyperedgeId (identity)
//!   HyperedgeId  ──[Relabeling::to_local]─────────►  LocalId
//!   LocalId      ──[Relabeling::to_global]────────►  HyperedgeId
//! ```
//!
//! Each domain is a `#[repr(transparent)]` wrapper over the storage word
//! [`Id`]; crossing domains *must* go through the conversion functions
//! above — they are the only place in the workspace where the `± n_e`
//! offset arithmetic may appear (`cargo xtask lint` denies it anywhere
//! else). Bulk storage (CSR offset/index arrays, neighbor slices) stays
//! `&[Id]`: the workspace forbids `unsafe`, so there is no transmuting a
//! `&[Id]` into a `&[HyperedgeId]` — instead the raw word is lifted into
//! a domain exactly at the point where code starts treating it as an ID,
//! via `XxxId::new` / [`HyperAdjacency::global_edge`]
//! (`crate::repr::HyperAdjacency::global_edge`).
//!
//! The deliberately-boring casts `Id ↔ usize` (loop counters, slice
//! indexing) are funneled through [`from_usize`]/[`to_usize`] and the
//! per-domain `idx()` accessors so every remaining `as` cast in the ID
//! modules is audited here.

use crate::Id;

/// The overlap weight carried by weighted s-line edges: `|e ∩ f|`. An
/// ordinary count, *not* an ID — kept distinct so weighted triples
/// `(Id, Id, Overlap)` don't read as three IDs.
pub type Overlap = u32;

/// Lifts a `usize` index into the `Id` storage word.
///
/// # Panics
/// Panics (in debug builds) if `n` does not fit in the 32-bit ID space.
#[inline]
#[must_use]
// lint: this IS the audited Id↔usize funnel — the one sanctioned narrowing
#[allow(clippy::cast_possible_truncation)]
pub fn from_usize(n: usize) -> Id {
    debug_assert!(n <= u32::MAX as usize, "index {n} overflows the Id space"); // lint: audited Id↔usize funnel
    n as Id // lint: audited Id↔usize funnel
}

/// Widens an `Id` storage word into a `usize` index.
#[inline]
#[must_use]
pub const fn to_usize(i: Id) -> usize {
    i as usize // lint: audited Id↔usize funnel
}

macro_rules! id_domain {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(transparent)]
        pub struct $name(Id);

        impl $name {
            /// Wraps a raw storage word as an ID of this domain. The
            /// caller asserts the word really belongs to the domain —
            /// this is the typed analogue of reading an `Id` out of a
            /// CSR slice.
            #[inline]
            #[must_use]
            pub const fn new(raw: Id) -> Self {
                Self(raw)
            }

            /// Lifts a `usize` loop index into this domain.
            ///
            /// # Panics
            /// Panics (in debug builds) on 32-bit overflow.
            #[inline]
            #[must_use]
            pub fn from_index(i: usize) -> Self {
                Self(from_usize(i))
            }

            /// The raw storage word (for writing into `Id` storage).
            #[inline]
            #[must_use]
            pub const fn raw(self) -> Id {
                self.0
            }

            /// The whitelisted slice-index accessor.
            #[inline]
            #[must_use]
            pub const fn idx(self) -> usize {
                to_usize(self.0)
            }
        }

        impl From<Id> for $name {
            #[inline]
            fn from(raw: Id) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for Id {
            #[inline]
            fn from(id: $name) -> Id {
                id.0
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_domain! {
    /// A hyperedge in the global (original) hyperedge space `[0, n_e)`.
    HyperedgeId
}

id_domain! {
    /// A hypernode in the global hypernode space `[0, n_v)`.
    HypernodeId
}

id_domain! {
    /// A vertex of the adjoin graph's single shared index set
    /// `[0, n_e + n_v)`: hyperedges first, hypernodes shifted by `n_e`.
    AdjoinId
}

id_domain! {
    /// A hyperedge in a *relabeled* (permuted) working space — what the
    /// kernels iterate under a `RelabeledView`. Meaningless outside the
    /// [`Relabeling`] that created it.
    LocalId
}

impl AdjoinId {
    /// Embeds a hyperedge into the shared index set (identity on the
    /// raw word: hyperedges keep `[0, n_e)`).
    #[inline]
    #[must_use]
    pub const fn from_edge(e: HyperedgeId) -> Self {
        Self(e.raw())
    }

    /// Embeds a hypernode into the shared index set: the single owner
    /// of the `+ n_e` offset.
    ///
    /// # Panics
    /// Panics (in debug builds) if the shifted ID overflows `u32`.
    #[inline]
    #[must_use]
    pub fn from_node(v: HypernodeId, num_hyperedges: usize) -> Self {
        Self::from_index(v.idx() + num_hyperedges)
    }

    /// `true` if this adjoin ID denotes a hyperedge (`< n_e`).
    #[inline]
    #[must_use]
    pub fn is_edge(self, num_hyperedges: usize) -> bool {
        self.idx() < num_hyperedges
    }
}

/// Recovers the hypernode from an adjoin ID in the node partition: the
/// single owner of the `- n_e` offset.
///
/// # Panics
/// Panics (in debug builds) if `a` lies in the hyperedge partition.
#[inline]
#[must_use]
pub fn adjoin_to_node(a: AdjoinId, num_hyperedges: usize) -> HypernodeId {
    debug_assert!(
        !a.is_edge(num_hyperedges),
        "adjoin ID {a} is a hyperedge, not a hypernode"
    );
    HypernodeId::from_index(a.idx() - num_hyperedges)
}

/// Recovers the hyperedge from an adjoin ID in the edge partition
/// (identity on the raw word).
///
/// # Panics
/// Panics (in debug builds) if `a` lies in the hypernode partition.
#[inline]
#[must_use]
pub fn adjoin_to_edge(a: AdjoinId, num_hyperedges: usize) -> HyperedgeId {
    debug_assert!(
        a.is_edge(num_hyperedges),
        "adjoin ID {a} is a hypernode, not a hyperedge"
    );
    HyperedgeId::new(a.raw())
}

/// A bijection between the global hyperedge space and a permuted local
/// working space: `perm[local] = global`, `inv[global] = local`. This is
/// the owned, validated form of the slice pair a
/// [`RelabeledView`](crate::repr::RelabeledView) borrows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    /// `perm[local] = global`.
    perm: Vec<Id>,
    /// `inv[global] = local`.
    inv: Vec<Id>,
}

impl Relabeling {
    /// Builds a relabeling from `perm[local] = global`, computing the
    /// inverse.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    #[must_use]
    pub fn from_permutation(perm: Vec<Id>) -> Self {
        let inv = nwgraph::invert_permutation(&perm);
        Self::from_parts(perm, inv)
    }

    /// Builds a relabeling from a permutation and its precomputed
    /// inverse.
    ///
    /// # Panics
    /// Panics if the two are not inverse bijections of each other.
    #[must_use]
    pub fn from_parts(perm: Vec<Id>, inv: Vec<Id>) -> Self {
        assert_eq!(perm.len(), inv.len(), "perm/inv size mismatch");
        for (local, &global) in perm.iter().enumerate() {
            assert_eq!(
                to_usize(inv[to_usize(global)]),
                local,
                "inv is not the inverse of perm at local {local}"
            );
        }
        Self { perm, inv }
    }

    /// Number of hyperedges in the relabeled space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` for the empty relabeling.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Global → local.
    #[inline]
    #[must_use]
    pub fn to_local(&self, e: HyperedgeId) -> LocalId {
        LocalId::new(self.inv[e.idx()])
    }

    /// Local → global.
    #[inline]
    #[must_use]
    pub fn to_global(&self, l: LocalId) -> HyperedgeId {
        HyperedgeId::new(self.perm[l.idx()])
    }

    /// The raw `perm[local] = global` slice (for zero-copy views).
    #[must_use]
    pub fn perm(&self) -> &[Id] {
        &self.perm
    }

    /// The raw `inv[global] = local` slice (for zero-copy views).
    #[must_use]
    pub fn inv(&self) -> &[Id] {
        &self.inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjoin_embeddings_partition_the_shared_set() {
        let ne = 4;
        let e = HyperedgeId::new(3);
        let v = HypernodeId::new(0);
        let ae = AdjoinId::from_edge(e);
        let av = AdjoinId::from_node(v, ne);
        assert_eq!(ae.raw(), 3);
        assert_eq!(av.raw(), 4);
        assert!(ae.is_edge(ne));
        assert!(!av.is_edge(ne));
        assert_eq!(adjoin_to_edge(ae, ne), e);
        assert_eq!(adjoin_to_node(av, ne), v);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "is a hyperedge")]
    fn adjoin_to_node_rejects_edge_partition() {
        let _ = adjoin_to_node(AdjoinId::new(1), 4);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "is a hypernode")]
    fn adjoin_to_edge_rejects_node_partition() {
        let _ = adjoin_to_edge(AdjoinId::new(7), 4);
    }

    #[test]
    fn relabeling_round_trips() {
        let r = Relabeling::from_permutation(vec![2, 0, 1]);
        for g in 0..3u32 {
            let e = HyperedgeId::new(g);
            assert_eq!(r.to_global(r.to_local(e)), e);
        }
        assert_eq!(r.to_local(HyperedgeId::new(2)), LocalId::new(0));
        assert_eq!(r.to_global(LocalId::new(0)), HyperedgeId::new(2));
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "not the inverse")]
    fn relabeling_rejects_mismatched_inverse() {
        let _ = Relabeling::from_parts(vec![2, 0, 1], vec![0, 1, 2]);
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(HyperedgeId::new(1) < HyperedgeId::new(2));
        assert_eq!(LocalId::from_index(5).to_string(), "5");
        assert_eq!(Id::from(HypernodeId::new(9)), 9);
        assert_eq!(HyperedgeId::from(4u32).idx(), 4);
    }
}
