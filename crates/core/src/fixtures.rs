//! Shared test fixtures.
//!
//! [`paper_hypergraph`] is the workspace-wide stand-in for the paper's
//! Figure 1 example: 4 hyperedges over 9 hypernodes (the adjoin graph of
//! Figure 3 therefore has IDs 0–3 for hyperedges and 4–12 for hypernodes).
//! Its pairwise overlaps are chosen so the three s-line graphs of Figure 5
//! are all distinct:
//!
//! | pair      | overlap            | size |
//! |-----------|--------------------|------|
//! | e0 ∩ e1   | {3}                | 1    |
//! | e0 ∩ e2   | ∅                  | 0    |
//! | e0 ∩ e3   | {0, 2, 3}          | 3    |
//! | e1 ∩ e2   | {4, 5, 6}          | 3    |
//! | e1 ∩ e3   | {3, 5}             | 2    |
//! | e2 ∩ e3   | {5, 8}             | 2    |
//!
//! giving line-graph edge sets
//! `s=1: {01, 03, 12, 13, 23}` · `s=2: {03, 12, 13, 23}` · `s=3: {03, 12}`
//! and `s=4: ∅`.

use crate::hypergraph::Hypergraph;
use crate::Id;

/// Membership lists of the Figure 1 stand-in (see module docs).
pub fn paper_memberships() -> Vec<Vec<Id>> {
    vec![
        vec![0, 1, 2, 3],
        vec![3, 4, 5, 6],
        vec![4, 5, 6, 7, 8],
        vec![0, 2, 3, 5, 8],
    ]
}

/// The Figure 1 stand-in hypergraph: 4 hyperedges, 9 hypernodes.
pub fn paper_hypergraph() -> Hypergraph {
    Hypergraph::from_memberships(&paper_memberships())
}

/// The expected s-line graph edge sets of [`paper_hypergraph`], as
/// canonical `(i, j)` pairs with `i < j`, for `s` = 1..=4.
pub fn paper_slinegraph_edges(s: usize) -> Vec<(Id, Id)> {
    match s {
        0 | 1 => vec![(0, 1), (0, 3), (1, 2), (1, 3), (2, 3)],
        2 => vec![(0, 3), (1, 2), (1, 3), (2, 3)],
        3 => vec![(0, 3), (1, 2)],
        _ => vec![],
    }
}

/// A small hypergraph with nested hyperedges for toplex tests:
/// `t0 = {0,1,2,3}` ⊋ `t1 = {1,2}` ⊋ `t2 = {2}`, plus `t3 = {3,4}`
/// (overlapping but not nested) and `t4 = {1,2}` (duplicate of `t1`).
pub fn nested_hypergraph() -> Hypergraph {
    Hypergraph::from_memberships(&[
        vec![0, 1, 2, 3],
        vec![1, 2],
        vec![2],
        vec![3, 4],
        vec![1, 2],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_overlap_table_is_accurate() {
        let ms = paper_memberships();
        let overlap = |a: &Vec<Id>, b: &Vec<Id>| a.iter().filter(|x| b.contains(x)).count();
        assert_eq!(overlap(&ms[0], &ms[1]), 1);
        assert_eq!(overlap(&ms[0], &ms[2]), 0);
        assert_eq!(overlap(&ms[0], &ms[3]), 3);
        assert_eq!(overlap(&ms[1], &ms[2]), 3);
        assert_eq!(overlap(&ms[1], &ms[3]), 2);
        assert_eq!(overlap(&ms[2], &ms[3]), 2);
    }

    #[test]
    fn expected_line_graphs_are_monotone_in_s() {
        for s in 1..4 {
            let larger = paper_slinegraph_edges(s);
            let smaller = paper_slinegraph_edges(s + 1);
            for e in &smaller {
                assert!(larger.contains(e), "E_{} ⊄ E_{}", s + 1, s);
            }
        }
    }
}
