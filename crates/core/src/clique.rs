//! Clique-expansion graphs (§III-B.3).
//!
//! The clique expansion replaces each hyperedge with a clique over its
//! incident hypernodes. The result is a plain graph over the *hypernode*
//! ID space on which any graph algorithm runs — at the cost of losing the
//! inclusion structure and a potentially quadratic blow-up in size (both
//! drawbacks the paper calls out).
//!
//! The clique expansion equals the 1-line graph of the dual hypergraph
//! (equivalently, the 1-clique graph); [`clique_expansion_via_dual`]
//! computes it that way and the tests cross-validate the two paths.

use crate::hypergraph::Hypergraph;
use crate::ids;
use crate::Id;
use nwgraph::{Csr, EdgeList};
use nwhy_util::fxhash::FxHashSet;
use rayon::prelude::*;

/// Builds the clique-expansion graph of `h`: an undirected simple graph on
/// the hypernodes where `u ~ w` iff some hyperedge contains both.
pub fn clique_expansion(h: &Hypergraph) -> Csr {
    let nv = h.num_hypernodes();
    // Emit each within-hyperedge pair once per hyperedge, dedup globally.
    let mut pairs: Vec<(Id, Id)> = h
        .edges()
        .par_iter()
        .fold(Vec::new, |mut acc, (_, members)| {
            for (i, &u) in members.iter().enumerate() {
                for &w in &members[i + 1..] {
                    // members are sorted, so u < w already
                    acc.push((u, w));
                }
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    pairs.par_sort_unstable();
    pairs.dedup();
    let mut el = EdgeList::from_edges(nv, pairs);
    el.symmetrize();
    Csr::from_edge_list(&el)
}

/// The same graph, computed as the 1-line graph of the dual hypergraph —
/// the identity the paper states in §III-B.4 ("the 1-line graph of the
/// dual hypergraph is the clique-expansion graph"). The dual is a
/// zero-copy [`crate::repr::DualView`]; nothing is materialized.
pub fn clique_expansion_via_dual(h: &Hypergraph) -> Csr {
    let dual = crate::repr::DualView::new(h);
    let pairs = crate::slinegraph::SLineBuilder::new(&dual).s(1).edges();
    let mut el = EdgeList::from_edges(h.num_hypernodes(), pairs);
    el.symmetrize();
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

/// Counts the number of graph edges the clique expansion of `h` would
/// have *before* deduplication — the Σ C(|e|, 2) memory-blow-up figure
/// that motivates s-line graphs.
pub fn clique_expansion_work(h: &Hypergraph) -> usize {
    (0..ids::from_usize(h.num_hyperedges()))
        .into_par_iter()
        .map(|e| {
            let d = h.edge_degree(e);
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Validates that `g` is exactly the clique expansion of `h`
/// (test/diagnostic helper): `u ~ w` iff they co-occur in a hyperedge.
pub fn validate_clique_expansion(h: &Hypergraph, g: &Csr) -> Result<(), String> {
    if g.num_vertices() != h.num_hypernodes() {
        return Err("vertex count mismatch".into());
    }
    // forward: every co-occurring pair is an edge
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        let members = h.edge_members(e);
        for (i, &u) in members.iter().enumerate() {
            for &w in &members[i + 1..] {
                if g.neighbors(u).binary_search(&w).is_err() {
                    return Err(format!("missing clique edge ({u},{w}) from hyperedge {e}"));
                }
            }
        }
    }
    // backward: every edge is justified by some hyperedge
    for (u, nbrs) in g.iter() {
        let edges_of_u: FxHashSet<Id> = h.node_memberships(u).iter().copied().collect();
        for &w in nbrs {
            let shares = h.node_memberships(w).iter().any(|e| edges_of_u.contains(e));
            if !shares {
                return Err(format!("edge ({u},{w}) has no witnessing hyperedge"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;

    #[test]
    fn fixture_clique_expansion_is_valid() {
        let h = paper_hypergraph();
        let g = clique_expansion(&h);
        assert!(g.is_symmetric());
        validate_clique_expansion(&h, &g).unwrap();
    }

    #[test]
    fn matches_dual_one_line_graph() {
        let h = paper_hypergraph();
        let direct = clique_expansion(&h);
        let via_dual = clique_expansion_via_dual(&h);
        assert_eq!(direct, via_dual);
    }

    #[test]
    fn single_hyperedge_gives_complete_graph() {
        let h = Hypergraph::from_memberships(&[vec![0, 1, 2, 3]]);
        let g = clique_expansion(&h);
        for u in 0..4u32 {
            assert_eq!(g.degree(u), 3);
        }
    }

    #[test]
    fn disjoint_hyperedges_give_disjoint_cliques() {
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![2, 3, 4]]);
        let g = clique_expansion(&h);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[3, 4]);
        assert_eq!(g.num_edges(), 2 * (1 + 3));
    }

    #[test]
    fn overlapping_hyperedges_dedup_shared_pairs() {
        // pair (1,2) appears in both hyperedges but once in the expansion
        let h = Hypergraph::from_memberships(&[vec![0, 1, 2], vec![1, 2, 3]]);
        let g = clique_expansion(&h);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.num_edges(), 2 * 5);
    }

    #[test]
    fn work_counts_pre_dedup_pairs() {
        let h = Hypergraph::from_memberships(&[vec![0, 1, 2], vec![1, 2, 3]]);
        assert_eq!(clique_expansion_work(&h), 3 + 3);
        let h = paper_hypergraph();
        // sizes 4,4,5,5 → 6+6+10+10
        assert_eq!(clique_expansion_work(&h), 32);
    }

    #[test]
    fn empty_and_singleton_edges() {
        let h = Hypergraph::from_memberships(&[vec![], vec![0]]);
        let g = clique_expansion(&h);
        assert_eq!(g.num_edges(), 0);
        validate_clique_expansion(&h, &g).unwrap();
    }
}
