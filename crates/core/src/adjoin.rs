//! The adjoin graph: a hypergraph in a single shared index set (§III-B.2).
//!
//! The paper's novel representation: re-index the two disjoint partitions
//! of the bipartite form into one ID space — hyperedges keep `[0, n_e)`,
//! hypernodes shift to `[n_e, n_e + n_v)` — and store the result as an
//! ordinary symmetric CSR graph with adjacency matrix
//!
//! ```text
//!         ⎛ 0    Bᵗ ⎞
//!   A_G = ⎜         ⎟
//!         ⎝ B    0  ⎠
//! ```
//!
//! where `B` is the incidence matrix of `H`. Any graph algorithm can then
//! compute hypergraph metrics, provided it is *range-aware*: results are
//! split back into a hyperedge part and a hypernode part afterwards
//! ([`AdjoinGraph::split_result`]).

use crate::hypergraph::Hypergraph;
use crate::ids::{adjoin_to_node, AdjoinId, HyperedgeId, HypernodeId};
use crate::Id;
use nwgraph::{Csr, EdgeList};
use rayon::prelude::*;

/// A hypergraph adjoined into one index set, backed by a square symmetric
/// CSR.
///
/// # Examples
///
/// ```
/// use nwhy_core::{AdjoinGraph, Hypergraph};
///
/// use nwhy_core::ids::{AdjoinId, HypernodeId};
///
/// let h = Hypergraph::from_memberships(&[vec![0, 1], vec![1, 2]]);
/// let a = AdjoinGraph::from_hypergraph(&h);
/// // hyperedges keep IDs 0..2; hypernodes shift to 2..5
/// assert_eq!(a.num_vertices(), 5);
/// assert!(a.is_hyperedge(AdjoinId::new(1)));
/// assert_eq!(a.hypernode_id(HypernodeId::new(0)), AdjoinId::new(2));
/// // any graph algorithm runs on a.graph(); split results afterwards
/// let labels = nwgraph::algorithms::cc::afforest(a.graph());
/// let (edge_labels, node_labels) = a.split_result(&labels);
/// assert_eq!(edge_labels.len(), 2);
/// assert_eq!(node_labels.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdjoinGraph {
    graph: Csr,
    num_hyperedges: usize,
    num_hypernodes: usize,
}

impl AdjoinGraph {
    /// Adjoins the bi-adjacency of `h` into a single-index graph.
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        let ne = h.num_hyperedges();
        let nv = h.num_hypernodes();
        let n = ne + nv;
        // Both directions of every incidence; the hypernode → shared-set
        // shift is owned by `AdjoinId::from_node`, never inlined here.
        let pairs: Vec<(Id, Id)> = h
            .edges()
            .par_iter()
            .flat_map_iter(|(e, members)| {
                members.iter().flat_map(move |&v| {
                    let av = AdjoinId::from_node(HypernodeId::new(v), ne).raw();
                    [(e, av), (av, e)]
                })
            })
            .collect();
        let el = EdgeList::from_edges(n, pairs);
        let a = Self {
            graph: Csr::from_edge_list(&el),
            num_hyperedges: ne,
            num_hypernodes: nv,
        };
        crate::validate::debug_validate(&a, "AdjoinGraph::from_hypergraph");
        a
    }

    /// Builds directly from a pre-adjoined edge list (as read by
    /// `graph_reader_adjoin` in Listing 2). `num_hyperedges` +
    /// `num_hypernodes` must equal the edge list's vertex count, and every
    /// edge must cross the partition boundary.
    ///
    /// # Panics
    /// Panics if the sizes disagree or an edge stays within one partition.
    pub fn from_adjoin_edge_list(
        el: &EdgeList,
        num_hyperedges: usize,
        num_hypernodes: usize,
    ) -> Self {
        assert_eq!(
            el.num_vertices(),
            num_hyperedges + num_hypernodes,
            "vertex space must be n_e + n_v"
        );
        for &(u, v) in el.edges() {
            let cross = AdjoinId::new(u).is_edge(num_hyperedges)
                != AdjoinId::new(v).is_edge(num_hyperedges);
            assert!(cross, "edge ({u},{v}) does not cross the adjoin partition");
        }
        let mut el = el.clone();
        el.symmetrize();
        el.sort_dedup();
        let a = Self {
            graph: Csr::from_edge_list(&el),
            num_hyperedges,
            num_hypernodes,
        };
        crate::validate::debug_validate(&a, "AdjoinGraph::from_adjoin_edge_list");
        a
    }

    /// Assembles an adjoin graph from a pre-built CSR and partition
    /// sizes without checking bipartiteness, symmetry, or the vertex
    /// count.
    ///
    /// The [`Validate`](crate::validate::Validate) tests use this to
    /// build deliberately corrupted adjoin graphs; run
    /// [`validate`](crate::validate::Validate::validate) before handing
    /// the result to any algorithm. Prefer the checked constructors
    /// above.
    pub fn from_raw_parts(graph: Csr, num_hyperedges: usize, num_hypernodes: usize) -> Self {
        Self {
            graph,
            num_hyperedges,
            num_hypernodes,
        }
    }

    /// The underlying plain graph.
    #[inline]
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Number of hyperedges (`IDs [0, n_e)`).
    #[inline]
    pub fn num_hyperedges(&self) -> usize {
        self.num_hyperedges
    }

    /// Number of hypernodes (`IDs [n_e, n_e + n_v)`).
    #[inline]
    pub fn num_hypernodes(&self) -> usize {
        self.num_hypernodes
    }

    /// Total vertices in the shared index set.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_hyperedges + self.num_hypernodes
    }

    /// `true` if the adjoin ID denotes a hyperedge.
    #[inline]
    #[must_use]
    pub fn is_hyperedge(&self, id: AdjoinId) -> bool {
        id.is_edge(self.num_hyperedges)
    }

    /// Maps a hyperedge into the shared index set (identity embedding).
    #[inline]
    #[must_use]
    pub fn hyperedge_id(&self, e: HyperedgeId) -> AdjoinId {
        debug_assert!(e.idx() < self.num_hyperedges);
        AdjoinId::from_edge(e)
    }

    /// Maps a hypernode into the shared index set (shift by `n_e`,
    /// owned by [`AdjoinId::from_node`]).
    #[inline]
    #[must_use]
    pub fn hypernode_id(&self, v: HypernodeId) -> AdjoinId {
        debug_assert!(v.idx() < self.num_hypernodes);
        AdjoinId::from_node(v, self.num_hyperedges)
    }

    /// Recovers the hypernode from an adjoin ID in the node partition.
    ///
    /// # Panics
    /// Panics (in debug builds) if `id` denotes a hyperedge.
    #[inline]
    #[must_use]
    pub fn to_hypernode(&self, id: AdjoinId) -> HypernodeId {
        adjoin_to_node(id, self.num_hyperedges)
    }

    /// Splits a per-vertex result computed on the adjoin graph back into
    /// `(hyperedge_part, hypernode_part)` — the paper's "split the
    /// resultant array" step.
    pub fn split_result<T: Clone>(&self, result: &[T]) -> (Vec<T>, Vec<T>) {
        assert_eq!(result.len(), self.num_vertices(), "result length mismatch");
        (
            result[..self.num_hyperedges].to_vec(),
            result[self.num_hyperedges..].to_vec(),
        )
    }

    /// Recovers the bi-adjacency [`Hypergraph`] (inverse of
    /// [`AdjoinGraph::from_hypergraph`]).
    pub fn to_hypergraph(&self) -> Hypergraph {
        let ne = self.num_hyperedges;
        let pairs: Vec<(Id, Id)> = (0..crate::ids::from_usize(ne))
            .flat_map(|e| {
                self.graph
                    .neighbors(e)
                    .iter()
                    .map(move |&v| (e, adjoin_to_node(AdjoinId::new(v), ne).raw()))
            })
            .collect();
        let bel = crate::biedgelist::BiEdgeList::from_incidences(ne, self.num_hypernodes, pairs);
        Hypergraph::from_biedgelist(&bel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;
    use proptest::prelude::*;

    #[test]
    fn fixture_adjoin_layout_matches_figure3() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        // Figure 3: hyperedges 0–3, hypernodes 4–12.
        assert_eq!(a.num_vertices(), 13);
        assert!(a.is_hyperedge(AdjoinId::new(3)));
        assert!(!a.is_hyperedge(AdjoinId::new(4)));
        assert_eq!(a.hypernode_id(HypernodeId::new(0)), AdjoinId::new(4));
        assert_eq!(a.hyperedge_id(HyperedgeId::new(2)), AdjoinId::new(2));
        assert_eq!(a.to_hypernode(AdjoinId::new(4)), HypernodeId::new(0));
    }

    #[test]
    fn corrupted_offset_is_caught_by_validate() {
        // Regression for the once-inlined `v + ne` incidence shift: build
        // the adjoin CSR with an off-by-one offset (as a buggy duplicate
        // of `AdjoinId::from_node` would) and check `Validate` flags it.
        use crate::validate::Validate;
        let h = paper_hypergraph();
        let ne = h.num_hyperedges();
        let bad_shift = ne - 1; // buggy: one short of the real boundary
        let pairs: Vec<(Id, Id)> = h
            .edges()
            .iter()
            .flat_map(|(e, members)| {
                members.iter().flat_map(move |&v| {
                    let av = AdjoinId::from_node(HypernodeId::new(v), bad_shift).raw();
                    [(e, av), (av, e)]
                })
            })
            .collect();
        let el = EdgeList::from_edges(ne + h.num_hypernodes(), pairs);
        let a = AdjoinGraph::from_raw_parts(Csr::from_edge_list(&el), ne, h.num_hypernodes());
        assert!(
            a.validate().is_err(),
            "corrupted adjoin offset must not validate cleanly"
        );
    }

    #[test]
    fn adjoin_is_symmetric_and_bipartite() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        assert!(a.graph().is_symmetric());
        // no edge within a partition
        for (u, nbrs) in a.graph().iter() {
            for &v in nbrs {
                assert_ne!(
                    a.is_hyperedge(AdjoinId::new(u)),
                    a.is_hyperedge(AdjoinId::new(v)),
                    "edge ({u},{v}) intra-part"
                );
            }
        }
    }

    #[test]
    fn neighborhoods_are_shifted_biadjacency() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        for e in 0..4u32 {
            let want: Vec<u32> = h.edge_members(e).iter().map(|&v| v + 4).collect();
            assert_eq!(a.graph().neighbors(e), &want[..]);
        }
        for v in 0..9u32 {
            assert_eq!(a.graph().neighbors(v + 4), h.node_memberships(v));
        }
    }

    #[test]
    fn split_result_partitions() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        let result: Vec<u32> = (0..13).collect();
        let (e_part, v_part) = a.split_result(&result);
        assert_eq!(e_part, vec![0, 1, 2, 3]);
        assert_eq!(v_part, (4..13).collect::<Vec<_>>());
    }

    #[test]
    fn roundtrip_to_hypergraph() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        assert_eq!(a.to_hypergraph(), h);
    }

    #[test]
    fn from_adjoin_edge_list_accepts_one_direction() {
        // only (edge → node) arcs given; constructor symmetrizes
        let el = EdgeList::from_edges(3, vec![(0, 1), (0, 2)]);
        let a = AdjoinGraph::from_adjoin_edge_list(&el, 1, 2);
        assert!(a.graph().is_symmetric());
        assert_eq!(a.graph().neighbors(0), &[1, 2]);
        assert_eq!(a.to_hypergraph().edge_members(0), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "does not cross")]
    fn from_adjoin_edge_list_rejects_intra_part_edge() {
        let el = EdgeList::from_edges(4, vec![(0, 1)]); // both hyperedges
        AdjoinGraph::from_adjoin_edge_list(&el, 2, 2);
    }

    #[test]
    fn empty_hypergraph_adjoin() {
        let h = Hypergraph::from_memberships(&[]);
        let a = AdjoinGraph::from_hypergraph(&h);
        assert_eq!(a.num_vertices(), 0);
        let (e, v) = a.split_result::<u32>(&[]);
        assert!(e.is_empty() && v.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_adjoin_roundtrip(
            pairs in proptest::collection::vec((0u32..6, 0u32..9), 0..50)
        ) {
            let mut bel = crate::biedgelist::BiEdgeList::from_incidences(6, 9, pairs);
            bel.sort_dedup();
            let h = Hypergraph::from_biedgelist(&bel);
            let a = AdjoinGraph::from_hypergraph(&h);
            prop_assert!(a.graph().is_symmetric());
            prop_assert_eq!(a.to_hypergraph(), h);
            prop_assert_eq!(a.graph().num_edges(), 2 * bel.num_incidences());
        }
    }
}
