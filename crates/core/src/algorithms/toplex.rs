//! Toplex computation — Algorithm 3 of the paper (§III-C.4).
//!
//! A *toplex* is a maximal hyperedge: `e` is a toplex iff no other
//! hyperedge `f ⊋ e`. Duplicate hyperedges (equal as sets) are collapsed
//! to the representative with the smallest ID, matching the antichain
//! semantics of Algorithm 3 (which keeps the first of two equal sets it
//! compares).
//!
//! The paper's pseudocode races on its shared `Ě` set; the parallel
//! implementation here uses an equivalent, race-free formulation: `e` is
//! dominated iff some hyperedge `f` contains *all* of `e`'s members
//! (`|e ∩ f| = |e|`) and `f` is "bigger" (`|f| > |e|`, or `|f| = |e|` with
//! `f < e` for the duplicate tie-break). Containment candidates are
//! discovered through the bipartite indirection and counted with a
//! hashmap, so the work per hyperedge is proportional to the incidences
//! it can actually touch — the same cost structure as Algorithm 3's
//! subset probes.

use crate::hypergraph::Hypergraph;
use crate::ids;
use crate::Id;
use nwhy_util::fxhash::FxHashMap;
use rayon::prelude::*;

/// Returns the toplex hyperedge IDs of `h`, in increasing order.
///
/// Hyperedges with no members are dominated by any non-empty hyperedge
/// (∅ ⊆ anything); an empty hyperedge is a toplex only in a hypergraph
/// where *all* hyperedges are empty (then only the smallest ID survives).
///
/// # Examples
///
/// ```
/// use nwhy_core::{algorithms::toplex::toplexes, Hypergraph};
///
/// let h = Hypergraph::from_memberships(&[
///     vec![0, 1, 2],  // maximal
///     vec![1, 2],     // ⊂ e0
///     vec![2, 3],     // maximal (3 escapes e0)
/// ]);
/// assert_eq!(toplexes(&h), vec![0, 2]);
/// ```
pub fn toplexes(h: &Hypergraph) -> Vec<Id> {
    let _span = nwhy_obs::span("algo.toplex");
    let ne = h.num_hyperedges();
    if ne == 0 {
        return Vec::new();
    }
    let any_nonempty = (0..ids::from_usize(ne)).any(|e| h.edge_degree(e) > 0);

    (0..ids::from_usize(ne))
        .into_par_iter()
        .filter(|&e| {
            let members = h.edge_members(e);
            if members.is_empty() {
                // ∅ is dominated by any non-empty hyperedge; among
                // all-empty hypergraphs keep the smallest ID.
                return !any_nonempty && (0..e).all(|f| h.edge_degree(f) > 0);
            }
            let de = members.len();
            // Count overlap with every hyperedge sharing a member.
            let mut counts: FxHashMap<Id, usize> = FxHashMap::default();
            for &v in members {
                for &f in h.node_memberships(v) {
                    if f != e {
                        *counts.entry(f).or_insert(0) += 1;
                    }
                }
            }
            !counts.iter().any(|(&f, &overlap)| {
                overlap == de && {
                    let df = h.edge_degree(f);
                    df > de || (df == de && f < e)
                }
            })
        })
        .collect()
}

/// Direct transcription of Algorithm 3 run sequentially — the oracle for
/// the parallel version. Quadratic; test/diagnostic use only.
pub fn toplexes_sequential(h: &Hypergraph) -> Vec<Id> {
    let _span = nwhy_obs::span("algo.toplex.sequential");
    let is_subset = |a: &[Id], b: &[Id]| -> bool {
        // both sorted
        let mut j = 0;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j >= b.len() || b[j] != x {
                return false;
            }
        }
        true
    };
    let mut maximal: Vec<Id> = Vec::new();
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        let me = h.edge_members(e);
        let mut flag = true;
        maximal.retain(|&f| {
            let mf = h.edge_members(f);
            if flag && is_subset(me, mf) {
                flag = false; // e ⊆ f, drop e
            }
            // keep f unless strictly f ⊂ e (equal sets keep the earlier f)
            !(flag && is_subset(mf, me) && mf.len() < me.len())
        });
        if flag {
            maximal.push(e);
        }
    }
    maximal.sort_unstable();
    maximal
}

/// Checks the toplex invariants: the returned set is an antichain under
/// set inclusion (after collapsing duplicates) and every hyperedge is
/// contained in some toplex.
// lint: obs: validation oracle for tests and `nwhy-cli check`, not a serving kernel
pub fn validate_toplexes(h: &Hypergraph, toplexes: &[Id]) -> Result<(), String> {
    let contains = |sup: &[Id], sub: &[Id]| sub.iter().all(|x| sup.binary_search(x).is_ok());
    for (i, &a) in toplexes.iter().enumerate() {
        for &b in &toplexes[i + 1..] {
            let ma = h.edge_members(a);
            let mb = h.edge_members(b);
            if contains(ma, mb) || contains(mb, ma) {
                return Err(format!("toplexes {a} and {b} are nested/duplicate"));
            }
        }
    }
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        let me = h.edge_members(e);
        if !toplexes.iter().any(|&t| contains(h.edge_members(t), me)) {
            return Err(format!("hyperedge {e} not covered by any toplex"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{nested_hypergraph, paper_hypergraph};
    use proptest::prelude::*;

    #[test]
    fn nested_fixture() {
        // t0={0,1,2,3} ⊇ t1={1,2} ⊇ t2={2}; t3={3,4}; t4={1,2} dup of t1
        let h = nested_hypergraph();
        let t = toplexes(&h);
        assert_eq!(t, vec![0, 3]);
        validate_toplexes(&h, &t).unwrap();
    }

    #[test]
    fn paper_fixture_all_maximal() {
        let h = paper_hypergraph();
        let t = toplexes(&h);
        assert_eq!(t, vec![0, 1, 2, 3]); // no containments in the fixture
        validate_toplexes(&h, &t).unwrap();
    }

    #[test]
    fn duplicates_keep_smallest_id() {
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![0, 1], vec![0, 1]]);
        assert_eq!(toplexes(&h), vec![0]);
    }

    #[test]
    fn empty_hyperedges() {
        let h = Hypergraph::from_memberships(&[vec![], vec![0], vec![]]);
        assert_eq!(toplexes(&h), vec![1]);
        // all-empty: smallest ID is the lone toplex
        let h = Hypergraph::from_memberships(&[vec![], vec![]]);
        assert_eq!(toplexes(&h), vec![0]);
    }

    #[test]
    fn no_hyperedges() {
        let h = Hypergraph::from_memberships(&[]);
        assert!(toplexes(&h).is_empty());
    }

    #[test]
    fn chain_of_inclusions() {
        let h =
            Hypergraph::from_memberships(&[vec![0], vec![0, 1], vec![0, 1, 2], vec![0, 1, 2, 3]]);
        assert_eq!(toplexes(&h), vec![3]);
    }

    #[test]
    fn sequential_matches_parallel_on_fixtures() {
        for h in [paper_hypergraph(), nested_hypergraph()] {
            assert_eq!(toplexes(&h), toplexes_sequential(&h));
        }
    }

    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..10, 0..6), 0..12)
            .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_parallel_equals_sequential(ms in arb_memberships()) {
            let h = Hypergraph::from_memberships(&ms);
            prop_assert_eq!(toplexes(&h), toplexes_sequential(&h));
        }

        #[test]
        fn prop_invariants_hold(ms in arb_memberships()) {
            let h = Hypergraph::from_memberships(&ms);
            let t = toplexes(&h);
            validate_toplexes(&h, &t).map_err(TestCaseError::fail)?;
        }
    }
}
