//! HyperCC — connected components on the bi-adjacency representation via
//! minimum-label propagation (§III-C.1; Orzan / Yan et al.).
//!
//! A hyperedge and a hypernode are connected when incident; two
//! hypernodes are connected when they share a hyperedge. Labels live in a
//! combined space (`hyperedge e ↦ e`, `hypernode v ↦ n_e + v`) so every
//! initial label is distinct; rounds of parallel min-exchange across the
//! incidence lists converge to per-component minima. Because hyperedge IDs
//! sit below hypernode IDs, every final label is the smallest *hyperedge*
//! ID of the component (or the node's own shifted ID for isolated
//! hypernodes).

use crate::hypergraph::Hypergraph;
use crate::ids::{self, AdjoinId, HypernodeId};
use crate::Id;
use nwhy_util::atomics::atomic_min_u32;
use nwhy_util::sync::{AtomicBool, AtomicU32, Ordering};
use rayon::prelude::*;

/// Component labels for both index sets. Two entities (of either kind)
/// are in the same hypergraph component iff their labels are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperCcResult {
    /// Label per hyperedge.
    pub edge_labels: Vec<Id>,
    /// Label per hypernode.
    pub node_labels: Vec<Id>,
}

impl HyperCcResult {
    /// Number of distinct components with at least one hyperedge or
    /// hypernode.
    pub fn num_components(&self) -> usize {
        let mut all: Vec<Id> = self
            .edge_labels
            .iter()
            .chain(self.node_labels.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

/// Label-propagation HyperCC.
pub fn hyper_cc(h: &Hypergraph) -> HyperCcResult {
    let _span = nwhy_obs::span("algo.hyper_cc");
    let ne = h.num_hyperedges();
    let nv = h.num_hypernodes();
    let edge_labels: Vec<AtomicU32> = (0..ids::from_usize(ne)).map(AtomicU32::new).collect();
    let node_labels: Vec<AtomicU32> = (0..ids::from_usize(nv))
        .map(|v| AtomicU32::new(AdjoinId::from_node(HypernodeId::new(v), ne).raw()))
        .collect();

    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        // Push hyperedge labels to incident hypernodes and pull back —
        // one round touches every incidence twice, the two-index-set
        // bookkeeping the paper describes.
        (0..ne).into_par_iter().for_each(|e| {
            let le = edge_labels[e].load(Ordering::Relaxed);
            for &v in h.edge_members(ids::from_usize(e)) {
                if atomic_min_u32(&node_labels[v as usize], le) {
                    changed.store(true, Ordering::Relaxed);
                }
                let lv = node_labels[v as usize].load(Ordering::Relaxed);
                if atomic_min_u32(&edge_labels[e], lv) {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
    }

    HyperCcResult {
        edge_labels: edge_labels.into_iter().map(AtomicU32::into_inner).collect(),
        node_labels: node_labels.into_iter().map(AtomicU32::into_inner).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;
    use crate::hypergraph::Hypergraph;
    use proptest::prelude::*;

    #[test]
    fn fixture_is_one_component() {
        let h = paper_hypergraph();
        let r = hyper_cc(&h);
        assert!(r.edge_labels.iter().all(|&l| l == 0));
        assert!(r.node_labels.iter().all(|&l| l == 0));
        assert_eq!(r.num_components(), 1);
    }

    #[test]
    fn two_components_split_cleanly() {
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![1, 2], vec![3, 4]]);
        let r = hyper_cc(&h);
        assert_eq!(r.edge_labels[0], r.edge_labels[1]);
        assert_ne!(r.edge_labels[0], r.edge_labels[2]);
        assert_eq!(r.node_labels[0], r.node_labels[2]);
        assert_eq!(r.node_labels[3], r.edge_labels[2]);
        assert_eq!(r.num_components(), 2);
    }

    #[test]
    fn isolated_hypernode_is_own_component() {
        // node 2 in the ID space but no incidences
        let bel = crate::biedgelist::BiEdgeList::from_incidences(1, 3, vec![(0, 0), (0, 1)]);
        let h = Hypergraph::from_biedgelist(&bel);
        let r = hyper_cc(&h);
        assert_eq!(r.node_labels[2], 1 + 2); // ne + v
        assert_eq!(r.num_components(), 2);
    }

    #[test]
    fn empty_hyperedge_is_own_component() {
        let h = Hypergraph::from_memberships(&[vec![], vec![0, 1]]);
        let r = hyper_cc(&h);
        assert_ne!(r.edge_labels[0], r.edge_labels[1]);
        assert_eq!(r.num_components(), 2);
    }

    #[test]
    fn labels_are_component_minimum_hyperedge() {
        let h = Hypergraph::from_memberships(&[vec![0], vec![0, 1], vec![2], vec![2, 3]]);
        let r = hyper_cc(&h);
        // component {e0,e1,v0,v1} labeled 0; {e2,e3,v2,v3} labeled 2
        assert_eq!(r.edge_labels, vec![0, 0, 2, 2]);
        assert_eq!(r.node_labels, vec![0, 0, 2, 2]);
    }

    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..15, 0..5), 0..10)
            .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    /// Oracle: sequential DFS over the bipartite structure.
    fn dfs_components(h: &Hypergraph) -> (Vec<Id>, Vec<Id>) {
        let ne = h.num_hyperedges();
        let nv = h.num_hypernodes();
        let mut el = vec![u32::MAX; ne];
        let mut nl = vec![u32::MAX; nv];
        let mut next_label = 0;
        for start in 0..ne {
            if el[start] != u32::MAX {
                continue;
            }
            let label = next_label;
            next_label += 1;
            let mut stack = vec![(true, ids::from_usize(start))];
            el[start] = label;
            while let Some((is_edge, x)) = stack.pop() {
                if is_edge {
                    for &v in h.edge_members(x) {
                        if nl[v as usize] == u32::MAX {
                            nl[v as usize] = label;
                            stack.push((false, v));
                        }
                    }
                } else {
                    for &e in h.node_memberships(x) {
                        if el[e as usize] == u32::MAX {
                            el[e as usize] = label;
                            stack.push((true, e));
                        }
                    }
                }
            }
        }
        for label in nl.iter_mut() {
            if *label == u32::MAX {
                *label = next_label;
                next_label += 1;
            }
        }
        (el, nl)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_matches_dfs_partition(ms in arb_memberships()) {
            let h = Hypergraph::from_memberships(&ms);
            let r = hyper_cc(&h);
            let (el, nl) = dfs_components(&h);
            // same partition: pairwise equality must agree
            let ne = h.num_hyperedges();
            for a in 0..ne {
                for b in 0..ne {
                    prop_assert_eq!(
                        r.edge_labels[a] == r.edge_labels[b],
                        el[a] == el[b],
                        "edges {} {}", a, b
                    );
                }
                #[allow(clippy::needless_range_loop)] // lint: parallel indexing of two arrays
                for v in 0..h.num_hypernodes() {
                    prop_assert_eq!(
                        r.edge_labels[a] == r.node_labels[v],
                        el[a] == nl[v],
                        "edge {} node {}", a, v
                    );
                }
            }
        }
    }
}
