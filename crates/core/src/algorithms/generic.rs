//! Representation-generic HyperBFS / HyperCC.
//!
//! [`hyper_bfs`](super::hyper_bfs) and [`hyper_cc`](super::hyper_cc) are
//! specialized to the in-memory bi-adjacency [`Hypergraph`]
//! (`crate::Hypergraph`) — they walk the two CSRs directly. The variants
//! here take any [`HyperAdjacency`], which is what lets the same
//! traversals run on the adjoin graph, on zero-copy views, and on the
//! compressed on-disk backend (`nwhy-store`) without decompressing the
//! whole structure first.
//!
//! Results use the same output structs as the concrete algorithms, with
//! per-hypernode arrays indexed by *dense hypernode index* (`[0, n_v)`,
//! via [`HyperAdjacency::node_index`]) so they are comparable across
//! representations. Levels and labels are deterministic; BFS parents are
//! subject to the usual CAS races, exactly as in the concrete variants.

use super::hyper_bfs::HyperBfsResult;
use super::hyper_cc::HyperCcResult;
use crate::repr::HyperAdjacency;
use crate::{ids, Id};
use nwgraph::INVALID_VERTEX;
use nwhy_util::atomics::atomic_min_u32;
use nwhy_util::sync::{AtomicBool, AtomicU32, Ordering};
use rayon::prelude::*;

/// Top-down HyperBFS from a source hyperedge (working ID), over any
/// representation.
///
/// Matches [`super::hyper_bfs_top_down`] on levels and reach counts for
/// any representation whose hypernode handles are the identity embedding
/// (bi-adjacency, compressed); for adjoin graphs the node arrays are
/// reported per dense index, so they are comparable too.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn hyper_bfs_generic<A: HyperAdjacency + ?Sized>(h: &A, source: Id) -> HyperBfsResult {
    hyper_bfs_generic_ctx(h, source, None)
}

/// [`hyper_bfs_generic`] attributed to a request: when `ctx` is `Some`,
/// it is entered for the traversal's duration so the span (and any
/// counter flush on this thread) tags its flight events with the
/// request id.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn hyper_bfs_generic_ctx<A: HyperAdjacency + ?Sized>(
    h: &A,
    source: Id,
    ctx: Option<nwhy_obs::RequestCtx>,
) -> HyperBfsResult {
    let _ctx = ctx.map(nwhy_obs::RequestCtx::enter);
    let _span = nwhy_obs::span("algo.hyper_bfs.generic");
    let ne = h.num_hyperedges();
    let nv = h.num_hypernodes();
    assert!(
        ids::to_usize(source) < ne,
        "source hyperedge {source} out of range {ne}"
    );
    let edge_levels: Vec<AtomicU32> = (0..ne).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    let node_levels: Vec<AtomicU32> = (0..nv).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    let edge_parents: Vec<AtomicU32> = (0..ne).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    let node_parents: Vec<AtomicU32> = (0..nv).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    edge_levels[ids::to_usize(source)].store(0, Ordering::Relaxed);
    edge_parents[ids::to_usize(source)].store(source, Ordering::Relaxed);

    let mut edge_frontier = vec![source];
    let mut depth = 0u32;
    while !edge_frontier.is_empty() {
        // hyperedges → hypernodes
        depth += 1;
        let node_frontier: Vec<usize> = edge_frontier
            .par_iter()
            .fold(Vec::new, |mut next, &e| {
                for &handle in h.edge_neighbors(e).iter() {
                    let t = h.node_index(handle);
                    if node_parents[t].load(Ordering::Relaxed) == INVALID_VERTEX
                        && node_parents[t]
                            .compare_exchange(
                                INVALID_VERTEX,
                                e,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        node_levels[t].store(depth, Ordering::Relaxed);
                        next.push(t);
                    }
                }
                next
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        if node_frontier.is_empty() {
            break;
        }
        // hypernodes → hyperedges
        depth += 1;
        edge_frontier = node_frontier
            .par_iter()
            .fold(Vec::new, |mut next, &t| {
                let handle = h.node_id(t);
                for &raw in h.node_neighbors(handle).iter() {
                    let j = h.edge_id(raw);
                    let ju = ids::to_usize(j);
                    if edge_parents[ju].load(Ordering::Relaxed) == INVALID_VERTEX
                        && edge_parents[ju]
                            .compare_exchange(
                                INVALID_VERTEX,
                                handle,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        edge_levels[ju].store(depth, Ordering::Relaxed);
                        next.push(j);
                    }
                }
                next
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
    }
    HyperBfsResult {
        edge_levels: edge_levels.into_iter().map(AtomicU32::into_inner).collect(),
        node_levels: node_levels.into_iter().map(AtomicU32::into_inner).collect(),
        edge_parents: edge_parents
            .into_iter()
            .map(AtomicU32::into_inner)
            .collect(),
        node_parents: node_parents
            .into_iter()
            .map(AtomicU32::into_inner)
            .collect(),
    }
}

/// Label-propagation HyperCC over any representation.
///
/// Labels live in the combined space (`hyperedge e ↦ e`, `hypernode index
/// i ↦ n_e + i`); final labels equal [`super::hyper_cc`]'s on any
/// representation (label minima are deterministic).
pub fn hyper_cc_generic<A: HyperAdjacency + ?Sized>(h: &A) -> HyperCcResult {
    hyper_cc_generic_ctx(h, None)
}

/// [`hyper_cc_generic`] attributed to a request (see
/// [`hyper_bfs_generic_ctx`]).
pub fn hyper_cc_generic_ctx<A: HyperAdjacency + ?Sized>(
    h: &A,
    ctx: Option<nwhy_obs::RequestCtx>,
) -> HyperCcResult {
    let _ctx = ctx.map(nwhy_obs::RequestCtx::enter);
    let _span = nwhy_obs::span("algo.hyper_cc.generic");
    let ne = h.num_hyperedges();
    let nv = h.num_hypernodes();
    let edge_labels: Vec<AtomicU32> = (0..ids::from_usize(ne)).map(AtomicU32::new).collect();
    let node_labels: Vec<AtomicU32> = (0..nv)
        .map(|i| AtomicU32::new(ids::from_usize(ne + i)))
        .collect();

    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        (0..ne).into_par_iter().for_each(|e| {
            let le = edge_labels[e].load(Ordering::Relaxed);
            for &handle in h.edge_neighbors(ids::from_usize(e)).iter() {
                let t = h.node_index(handle);
                if atomic_min_u32(&node_labels[t], le) {
                    changed.store(true, Ordering::Relaxed);
                }
                let lv = node_labels[t].load(Ordering::Relaxed);
                if atomic_min_u32(&edge_labels[e], lv) {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
    }

    HyperCcResult {
        edge_labels: edge_labels.into_iter().map(AtomicU32::into_inner).collect(),
        node_labels: node_labels.into_iter().map(AtomicU32::into_inner).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjoin::AdjoinGraph;
    use crate::algorithms::{hyper_bfs_top_down, hyper_cc};
    use crate::fixtures::paper_hypergraph;
    use crate::hypergraph::Hypergraph;
    use proptest::prelude::*;

    #[test]
    fn bfs_matches_concrete_on_biadjacency() {
        let h = paper_hypergraph();
        for src in 0..4 {
            let generic = hyper_bfs_generic(&h, src);
            let concrete = hyper_bfs_top_down(&h, src);
            assert_eq!(generic.edge_levels, concrete.edge_levels, "src {src}");
            assert_eq!(generic.node_levels, concrete.node_levels, "src {src}");
        }
    }

    #[test]
    fn bfs_levels_agree_on_adjoin() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        for src in 0..4 {
            let on_h = hyper_bfs_generic(&h, src);
            let on_a = hyper_bfs_generic(&a, src);
            assert_eq!(on_h.edge_levels, on_a.edge_levels, "src {src}");
            assert_eq!(on_h.node_levels, on_a.node_levels, "src {src}");
        }
    }

    #[test]
    fn cc_matches_concrete() {
        let h = paper_hypergraph();
        assert_eq!(hyper_cc_generic(&h), hyper_cc(&h));
        let split = Hypergraph::from_memberships(&[vec![0, 1], vec![1, 2], vec![3, 4]]);
        assert_eq!(hyper_cc_generic(&split), hyper_cc(&split));
    }

    #[test]
    fn cc_labels_agree_on_adjoin() {
        let h = Hypergraph::from_memberships(&[vec![0], vec![0, 1], vec![2], vec![2, 3]]);
        let a = AdjoinGraph::from_hypergraph(&h);
        assert_eq!(hyper_cc_generic(&a), hyper_cc_generic(&h));
    }

    #[test]
    fn empty_and_degenerate() {
        let h = Hypergraph::from_memberships(&[vec![], vec![0]]);
        let r = hyper_bfs_generic(&h, 0);
        assert_eq!(r.edges_reached(), 1);
        assert_eq!(r.nodes_reached(), 0);
        let cc = hyper_cc_generic(&h);
        assert_eq!(cc.num_components(), 2);
    }

    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..15, 0..6), 1..10)
            .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_generic_equals_concrete(ms in arb_memberships(), src_seed in 0u32..100) {
            let h = Hypergraph::from_memberships(&ms);
            let src = src_seed % ids::from_usize(h.num_hyperedges());
            let g = hyper_bfs_generic(&h, src);
            let c = hyper_bfs_top_down(&h, src);
            prop_assert_eq!(g.edge_levels, c.edge_levels);
            prop_assert_eq!(g.node_levels, c.node_levels);
            prop_assert_eq!(hyper_cc_generic(&h), hyper_cc(&h));
        }
    }
}
