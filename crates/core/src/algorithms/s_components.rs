//! Online s-connected components — s-CC *without* materializing the
//! s-line graph.
//!
//! The paper frames the exact/approximate choice as a time/space
//! trade-off (§I: "based on the time and space requirements"). For s-CC
//! specifically there is a middle road: BFS over hyperedges where the
//! s-adjacency test (`|e ∩ f| ≥ s`) is evaluated *on the fly* through the
//! bipartite indirection with hashmap counting. Time matches one
//! line-graph construction, but the `O(|L_s|)` edge list — which for
//! `s = 1` can be quadratic (the Fig. 9 runs materialize millions of
//! edges) — is never stored.

use crate::ids;
use crate::repr::HyperAdjacency;
use crate::Id;
use nwhy_util::fxhash::FxHashMap;
use nwhy_util::sync::{AtomicU32, Ordering};
use rayon::prelude::*;

/// Labels hyperedges by s-connected component (smallest member hyperedge
/// ID per component, like `SLineGraph::s_connected_components`).
pub fn s_connected_components_online<H: HyperAdjacency + ?Sized>(h: &H, s: usize) -> Vec<Id> {
    let _span = nwhy_obs::span("algo.s_components");
    assert!(s >= 1, "s must be at least 1");
    let ne = h.num_hyperedges();
    let labels: Vec<AtomicU32> = (0..ne).map(|_| AtomicU32::new(u32::MAX)).collect();

    for root in 0..ids::from_usize(ne) {
        if labels[root as usize].load(Ordering::Relaxed) != u32::MAX {
            continue;
        }
        labels[root as usize].store(root, Ordering::Relaxed);
        let mut frontier = vec![root];
        while !frontier.is_empty() {
            frontier = frontier
                .par_iter()
                .fold(
                    || (Vec::new(), FxHashMap::<Id, u32>::default()),
                    |(mut next, mut counts), &i| {
                        let nbrs_i = h.edge_neighbors(i);
                        if nbrs_i.len() < s {
                            return (next, counts);
                        }
                        counts.clear();
                        for &v in nbrs_i.iter() {
                            for &raw in h.node_neighbors(v).iter() {
                                let j = h.edge_id(raw);
                                if j != i {
                                    *counts.entry(j).or_insert(0) += 1;
                                }
                            }
                        }
                        for (&j, &c) in &counts {
                            if c as usize >= s
                                && labels[j as usize]
                                    .compare_exchange(
                                        u32::MAX,
                                        root,
                                        Ordering::AcqRel,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                next.push(j);
                            }
                        }
                        (next, counts)
                    },
                )
                .map(|(next, _)| next)
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
        }
    }
    labels.into_iter().map(AtomicU32::into_inner).collect()
}

/// `true` if all hyperedges share one s-component (online variant of
/// `is_s_connected`). Vacuously true for ≤ 1 hyperedge.
pub fn is_s_connected_online<H: HyperAdjacency + ?Sized>(h: &H, s: usize) -> bool {
    let labels = s_connected_components_online(h, s);
    labels.windows(2).all(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;
    use crate::hypergraph::Hypergraph;
    use crate::smetrics::SLineGraph;
    use proptest::prelude::*;

    #[test]
    fn fixture_components_match_linegraph_path() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            let online = s_connected_components_online(&h, s);
            let materialized = SLineGraph::new(&h, s).s_connected_components();
            assert_eq!(online, materialized, "s={s}");
        }
    }

    #[test]
    fn connectivity_queries() {
        let h = paper_hypergraph();
        assert!(is_s_connected_online(&h, 1));
        assert!(is_s_connected_online(&h, 2));
        assert!(!is_s_connected_online(&h, 3));
    }

    #[test]
    fn runs_on_adjoin_representation() {
        let h = paper_hypergraph();
        let a = crate::adjoin::AdjoinGraph::from_hypergraph(&h);
        for s in 1..=3 {
            assert_eq!(
                s_connected_components_online(&a, s),
                s_connected_components_online(&h, s),
                "s={s}"
            );
        }
    }

    #[test]
    fn small_edges_are_isolated() {
        let h = Hypergraph::from_memberships(&[vec![0], vec![0, 1], vec![0, 1]]);
        let labels = s_connected_components_online(&h, 2);
        // e0 has 1 member: isolated at s=2; e1 = e2 connect
        assert_eq!(labels, vec![0, 1, 1]);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_memberships(&[]);
        assert!(s_connected_components_online(&h, 1).is_empty());
        assert!(is_s_connected_online(&h, 1));
    }

    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..15, 0..7), 0..12)
            .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_online_equals_materialized(ms in arb_memberships(), s in 1usize..4) {
            let h = Hypergraph::from_memberships(&ms);
            let online = s_connected_components_online(&h, s);
            let materialized = SLineGraph::new(&h, s).s_connected_components();
            prop_assert_eq!(online, materialized);
        }
    }
}
