//! AdjoinBFS — BFS on the adjoin-graph representation (§III-C.2).
//!
//! Because the adjoin graph is an ordinary symmetric graph, the hypergraph
//! traversal is literally `nwgraph`'s direction-optimizing BFS followed by
//! the range-aware split of the result arrays. No hypergraph-specific
//! traversal code is needed — the point of the representation.

use crate::adjoin::AdjoinGraph;
use crate::ids::HyperedgeId;
use crate::Id;
use nwgraph::algorithms::bfs::{bfs_direction_optimizing, BfsResult};

/// AdjoinBFS output, already split into the two index sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjoinBfsResult {
    /// Level per hyperedge (`u32::MAX` if unreached).
    pub edge_levels: Vec<u32>,
    /// Level per hypernode.
    pub node_levels: Vec<u32>,
    /// Parent per hyperedge, in *adjoin* IDs (a hypernode's adjoin ID,
    /// except the source which is its own parent).
    pub edge_parents: Vec<Id>,
    /// Parent per hypernode, in adjoin IDs (a hyperedge ID).
    pub node_parents: Vec<Id>,
    /// The raw single-index-set result, before splitting.
    pub raw: BfsResult,
}

/// Runs direction-optimizing BFS on the adjoin graph from hyperedge
/// `source` and splits the result arrays.
pub fn adjoin_bfs(a: &AdjoinGraph, source: HyperedgeId) -> AdjoinBfsResult {
    assert!(
        source.idx() < a.num_hyperedges(),
        "source hyperedge {source} out of range {}",
        a.num_hyperedges()
    );
    let raw = bfs_direction_optimizing(a.graph(), a.hyperedge_id(source).raw());
    let (edge_levels, node_levels) = a.split_result(&raw.levels);
    let (edge_parents, node_parents) = a.split_result(&raw.parents);
    AdjoinBfsResult {
        edge_levels,
        node_levels,
        edge_parents,
        node_parents,
        raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::hyper_bfs::hyper_bfs_top_down;
    use crate::fixtures::paper_hypergraph;
    use crate::hypergraph::Hypergraph;
    use proptest::prelude::*;

    #[test]
    fn fixture_levels_match_hyper_bfs() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        for src in 0..4 {
            let ar = adjoin_bfs(&a, HyperedgeId::new(src));
            let hr = hyper_bfs_top_down(&h, src);
            assert_eq!(ar.edge_levels, hr.edge_levels, "src {src}");
            assert_eq!(ar.node_levels, hr.node_levels, "src {src}");
        }
    }

    #[test]
    fn parents_cross_the_partition() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        let r = adjoin_bfs(&a, HyperedgeId::new(0));
        for (e, &p) in r.edge_parents.iter().enumerate() {
            if p == u32::MAX || e == 0 {
                continue;
            }
            assert!(
                !a.is_hyperedge(crate::ids::AdjoinId::new(p)),
                "hyperedge {e} parent {p} same side"
            );
        }
        for &p in &r.node_parents {
            if p != u32::MAX {
                assert!(a.is_hyperedge(crate::ids::AdjoinId::new(p)));
            }
        }
    }

    #[test]
    fn unreached_split_correctly() {
        let h = Hypergraph::from_memberships(&[vec![0], vec![1, 2]]);
        let a = AdjoinGraph::from_hypergraph(&h);
        let r = adjoin_bfs(&a, HyperedgeId::new(0));
        assert_eq!(r.edge_levels, vec![0, u32::MAX]);
        assert_eq!(r.node_levels, vec![1, u32::MAX, u32::MAX]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_id_as_source_rejected() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        adjoin_bfs(&a, HyperedgeId::new(5)); // 5 is a hypernode's adjoin ID
    }

    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..12, 0..6), 1..10)
            .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_adjoin_equals_bipartite_bfs(ms in arb_memberships(), seed in 0u32..100) {
            let h = Hypergraph::from_memberships(&ms);
            let a = AdjoinGraph::from_hypergraph(&h);
            let src = seed % crate::ids::from_usize(h.num_hyperedges());
            let ar = adjoin_bfs(&a, HyperedgeId::new(src));
            let hr = hyper_bfs_top_down(&h, src);
            prop_assert_eq!(ar.edge_levels, hr.edge_levels);
            prop_assert_eq!(ar.node_levels, hr.node_levels);
        }
    }
}
