//! AdjoinCC — connected components on the adjoin-graph representation
//! (§III-C.2), using either Afforest (Sutton et al.) or label propagation.
//!
//! Like AdjoinBFS, these are unmodified plain-graph kernels from
//! `nwgraph` plus a range-aware split. The labels land in the shared
//! adjoin ID space.

use crate::adjoin::AdjoinGraph;
use crate::Id;
use nwgraph::algorithms::cc::{afforest, cc_label_propagation};

/// AdjoinCC output: component labels split per index set. Labels are
/// adjoin IDs, consistent across the two halves (a hyperedge and a
/// hypernode in the same component share a label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjoinCcResult {
    /// Label per hyperedge.
    pub edge_labels: Vec<Id>,
    /// Label per hypernode.
    pub node_labels: Vec<Id>,
}

impl AdjoinCcResult {
    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut all: Vec<Id> = self
            .edge_labels
            .iter()
            .chain(self.node_labels.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

/// AdjoinCC with the Afforest algorithm.
pub fn adjoin_cc_afforest(a: &AdjoinGraph) -> AdjoinCcResult {
    let labels = afforest(a.graph());
    let (edge_labels, node_labels) = a.split_result(&labels);
    AdjoinCcResult {
        edge_labels,
        node_labels,
    }
}

/// AdjoinCC with minimum-label propagation.
pub fn adjoin_cc_label_propagation(a: &AdjoinGraph) -> AdjoinCcResult {
    let labels = cc_label_propagation(a.graph());
    let (edge_labels, node_labels) = a.split_result(&labels);
    AdjoinCcResult {
        edge_labels,
        node_labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::hyper_cc::hyper_cc;
    use crate::fixtures::paper_hypergraph;
    use crate::hypergraph::Hypergraph;
    use proptest::prelude::*;

    fn same_partition(a_edges: &[Id], a_nodes: &[Id], b_edges: &[Id], b_nodes: &[Id]) -> bool {
        let a: Vec<Id> = a_edges.iter().chain(a_nodes).copied().collect();
        let b: Vec<Id> = b_edges.iter().chain(b_nodes).copied().collect();
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                if (a[i] == a[j]) != (b[i] == b[j]) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn fixture_single_component_both_algorithms() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        for r in [adjoin_cc_afforest(&a), adjoin_cc_label_propagation(&a)] {
            assert_eq!(r.num_components(), 1);
        }
    }

    #[test]
    fn matches_hyper_cc_partition() {
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![1, 2], vec![3], vec![4, 5]]);
        let a = AdjoinGraph::from_hypergraph(&h);
        let hr = hyper_cc(&h);
        for ar in [adjoin_cc_afforest(&a), adjoin_cc_label_propagation(&a)] {
            assert!(same_partition(
                &ar.edge_labels,
                &ar.node_labels,
                &hr.edge_labels,
                &hr.node_labels
            ));
            assert_eq!(ar.num_components(), hr.num_components());
        }
    }

    #[test]
    fn isolated_entities_counted() {
        let bel = crate::biedgelist::BiEdgeList::from_incidences(2, 3, vec![(0, 0)]);
        let h = Hypergraph::from_biedgelist(&bel);
        let a = AdjoinGraph::from_hypergraph(&h);
        let r = adjoin_cc_afforest(&a);
        // components: {e0, v0}, {e1}, {v1}, {v2}
        assert_eq!(r.num_components(), 4);
    }

    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..12, 0..5), 0..10)
            .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_adjoin_cc_equals_hyper_cc(ms in arb_memberships()) {
            let h = Hypergraph::from_memberships(&ms);
            let a = AdjoinGraph::from_hypergraph(&h);
            let hr = hyper_cc(&h);
            for ar in [adjoin_cc_afforest(&a), adjoin_cc_label_propagation(&a)] {
                prop_assert!(same_partition(
                    &ar.edge_labels, &ar.node_labels,
                    &hr.edge_labels, &hr.node_labels
                ));
            }
        }
    }
}
