//! Hypergraph (k, ℓ)-core decomposition by bipartite peeling.
//!
//! k-core decomposition is in every hypergraph framework's algorithm
//! suite the paper surveys (§V: Hygra, MESH, HyperX). The hypergraph
//! generalization peels *both* index sets: the **(k, ℓ)-core** is the
//! largest sub-hypergraph in which every surviving hypernode belongs to
//! at least `k` surviving hyperedges and every surviving hyperedge
//! retains at least `ℓ` surviving hypernodes. Peeling alternates until a
//! fixpoint — removals on one side cascade to the other through the
//! bi-adjacency, the same two-index-set bookkeeping HyperBFS needs.

use crate::hypergraph::Hypergraph;
use crate::ids;
use crate::Id;
use nwhy_util::sync::{AtomicUsize, Ordering};
use rayon::prelude::*;

/// The surviving entities of the (k, ℓ)-core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KLCore {
    /// `true` for hypernodes in the core.
    pub nodes: Vec<bool>,
    /// `true` for hyperedges in the core.
    pub edges: Vec<bool>,
}

impl KLCore {
    /// Number of surviving hypernodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.iter().filter(|&&b| b).count()
    }

    /// Number of surviving hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().filter(|&&b| b).count()
    }

    /// `true` if the core is empty on both sides.
    pub fn is_empty(&self) -> bool {
        self.num_nodes() == 0 && self.num_edges() == 0
    }
}

/// Computes the (k, ℓ)-core of `h` by alternating parallel peeling.
pub fn kl_core(h: &Hypergraph, k: usize, l: usize) -> KLCore {
    let _span = nwhy_obs::span("algo.kl_core");
    let nv = h.num_hypernodes();
    let ne = h.num_hyperedges();
    // live degrees, updated as the other side peels
    let node_deg: Vec<AtomicUsize> = (0..nv)
        .map(|v| AtomicUsize::new(h.node_degree(ids::from_usize(v))))
        .collect();
    let edge_deg: Vec<AtomicUsize> = (0..ne)
        .map(|e| AtomicUsize::new(h.edge_degree(ids::from_usize(e))))
        .collect();
    let mut node_alive = vec![true; nv];
    let mut edge_alive = vec![true; ne];

    loop {
        // peel hypernodes below k
        let dead_nodes: Vec<Id> = (0..ids::from_usize(nv))
            .into_par_iter()
            .filter(|&v| node_alive[v as usize] && node_deg[v as usize].load(Ordering::Relaxed) < k)
            .collect();
        for &v in &dead_nodes {
            node_alive[v as usize] = false;
        }
        dead_nodes.par_iter().for_each(|&v| {
            for &e in h.node_memberships(v) {
                if edge_alive[e as usize] {
                    edge_deg[e as usize].fetch_sub(1, Ordering::Relaxed);
                }
            }
        });

        // peel hyperedges below ℓ
        let dead_edges: Vec<Id> = (0..ids::from_usize(ne))
            .into_par_iter()
            .filter(|&e| edge_alive[e as usize] && edge_deg[e as usize].load(Ordering::Relaxed) < l)
            .collect();
        for &e in &dead_edges {
            edge_alive[e as usize] = false;
        }
        dead_edges.par_iter().for_each(|&e| {
            for &v in h.edge_members(e) {
                if node_alive[v as usize] {
                    node_deg[v as usize].fetch_sub(1, Ordering::Relaxed);
                }
            }
        });

        if dead_nodes.is_empty() && dead_edges.is_empty() {
            break;
        }
    }
    KLCore {
        nodes: node_alive,
        edges: edge_alive,
    }
}

/// Node core numbers: `core[v]` is the largest `k` such that `v` survives
/// the (k, 1)-core (every hyperedge only needs one member to survive).
/// The standard scalar summary of hypergraph coreness.
pub fn node_core_numbers(h: &Hypergraph) -> Vec<u32> {
    let _span = nwhy_obs::span("algo.node_core_numbers");
    let nv = h.num_hypernodes();
    let mut core = vec![0u32; nv];
    let mut k = 1usize;
    loop {
        let kl = kl_core(h, k, 1);
        let mut any = false;
        for (c, &alive) in core.iter_mut().zip(&kl.nodes) {
            if alive {
                *c = ids::from_usize(k);
                any = true;
            }
        }
        if !any {
            break;
        }
        k += 1;
    }
    core
}

/// Validates (k, ℓ)-core invariants: every surviving node has ≥ k
/// surviving edges, every surviving edge has ≥ ℓ surviving nodes, and the
/// core is maximal (the all-dead complement cannot be resurrected —
/// guaranteed by fixpoint peeling, checked here by one more sweep).
// lint: obs: validation oracle for tests and `nwhy-cli check`, not a serving kernel
pub fn validate_kl_core(h: &Hypergraph, k: usize, l: usize, core: &KLCore) -> Result<(), String> {
    for v in 0..ids::from_usize(h.num_hypernodes()) {
        let live = h
            .node_memberships(v)
            .iter()
            .filter(|&&e| core.edges[e as usize])
            .count();
        if core.nodes[v as usize] && live < k {
            return Err(format!("core node {v} has only {live} live edges < {k}"));
        }
    }
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        let live = h
            .edge_members(e)
            .iter()
            .filter(|&&v| core.nodes[v as usize])
            .count();
        if core.edges[e as usize] && live < l {
            return Err(format!("core edge {e} has only {live} live nodes < {l}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;
    use proptest::prelude::*;

    #[test]
    fn trivial_core_keeps_everything_incident() {
        let h = paper_hypergraph();
        let core = kl_core(&h, 1, 1);
        assert_eq!(core.num_nodes(), 9);
        assert_eq!(core.num_edges(), 4);
        validate_kl_core(&h, 1, 1, &core).unwrap();
    }

    #[test]
    fn fixture_2_2_core() {
        let h = paper_hypergraph();
        let core = kl_core(&h, 2, 2);
        validate_kl_core(&h, 2, 2, &core).unwrap();
        // node 1 and node 7 have degree 1 → peeled; node 4,6 (deg 2) stay
        assert!(!core.nodes[1]);
        assert!(!core.nodes[7]);
        assert!(core.nodes[3]); // degree 3
                                // all four edges keep ≥ 2 members after peeling 1 and 7
        assert_eq!(core.num_edges(), 4);
    }

    #[test]
    fn cascade_empties_star() {
        // one hyperedge with 3 nodes: (2,·)-core on nodes kills everything
        let h = Hypergraph::from_memberships(&[vec![0, 1, 2]]);
        let core = kl_core(&h, 2, 1);
        assert!(core.is_empty());
    }

    #[test]
    fn high_l_peels_small_edges_then_cascades() {
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![1, 2, 3], vec![2, 3]]);
        // ℓ = 3: only e1 qualifies initially; nodes 0 drops out, then
        // node 1's degree becomes 1 which is fine for k = 1
        let core = kl_core(&h, 1, 3);
        validate_kl_core(&h, 1, 3, &core).unwrap();
        assert!(core.edges[1]);
        assert!(!core.edges[0]);
        assert!(!core.edges[2]);
        assert!(!core.nodes[0]);
        assert!(core.nodes[1] && core.nodes[2] && core.nodes[3]);
    }

    #[test]
    fn node_core_numbers_fixture() {
        let h = paper_hypergraph();
        let core = node_core_numbers(&h);
        // degrees: node 3 ∈ 3 edges, nodes 1 & 7 ∈ 1 edge
        assert_eq!(core[3], 3);
        assert_eq!(core[1], 1);
        assert_eq!(core[7], 1);
        // coreness never exceeds degree
        for v in 0..9u32 {
            assert!(core[v as usize] as usize <= h.node_degree(v));
        }
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_memberships(&[]);
        let core = kl_core(&h, 1, 1);
        assert!(core.is_empty());
        assert!(node_core_numbers(&h).is_empty());
    }

    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..12, 0..6), 0..10)
            .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_core_invariants(ms in arb_memberships(), k in 1usize..4, l in 1usize..4) {
            let h = Hypergraph::from_memberships(&ms);
            let core = kl_core(&h, k, l);
            validate_kl_core(&h, k, l, &core).map_err(TestCaseError::fail)?;
        }

        #[test]
        fn prop_cores_are_nested(ms in arb_memberships()) {
            let h = Hypergraph::from_memberships(&ms);
            let weak = kl_core(&h, 1, 1);
            let strong = kl_core(&h, 2, 2);
            for v in 0..h.num_hypernodes() {
                prop_assert!(!strong.nodes[v] || weak.nodes[v]);
            }
            for e in 0..h.num_hyperedges() {
                prop_assert!(!strong.edges[e] || weak.edges[e]);
            }
        }
    }
}
