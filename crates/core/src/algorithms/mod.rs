//! Exact hypergraph algorithms (§III-C.1, §III-C.2, §III-C.4).
//!
//! Two algorithm families compute *exact* hypergraph metrics:
//!
//! - on the **bi-adjacency** (two index sets): [`mod@hyper_bfs`] and
//!   [`mod@hyper_cc`], which maintain separate frontiers/label arrays for the
//!   hyperedge and hypernode sides — the bookkeeping burden the paper
//!   notes as the representation's biggest drawback;
//! - on the **adjoin graph** (one shared index set): [`mod@adjoin_bfs`] and
//!   [`mod@adjoin_cc`], which are plain graph algorithms
//!   (direction-optimizing BFS; Afforest / label propagation) followed by
//!   a range-aware split of the result array.
//!
//! [`mod@toplex`] implements Algorithm 3 (maximal hyperedges).

pub mod adjoin_bfs;
pub mod adjoin_cc;
pub mod generic;
pub mod hyper_bfs;
pub mod hyper_cc;
pub mod kcore;
pub mod s_components;
pub mod toplex;

pub use adjoin_bfs::{adjoin_bfs, AdjoinBfsResult};
pub use adjoin_cc::{adjoin_cc_afforest, adjoin_cc_label_propagation, AdjoinCcResult};
pub use generic::{
    hyper_bfs_generic, hyper_bfs_generic_ctx, hyper_cc_generic, hyper_cc_generic_ctx,
};
pub use hyper_bfs::{hyper_bfs_bottom_up, hyper_bfs_top_down, HyperBfsResult};
pub use hyper_cc::{hyper_cc, HyperCcResult};
pub use kcore::{kl_core, node_core_numbers, KLCore};
pub use s_components::{is_s_connected_online, s_connected_components_online};
pub use toplex::{toplexes, toplexes_sequential};
