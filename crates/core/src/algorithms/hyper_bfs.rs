//! HyperBFS — breadth-first search on the bi-adjacency representation
//! (§III-C.1), with top-down and bottom-up variants.
//!
//! A BFS on a hypergraph alternates between the two index sets: a frontier
//! of hyperedges reaches all incident hypernodes; a frontier of hypernodes
//! reaches all incident hyperedges. Hyperedges therefore sit at even
//! levels and hypernodes at odd levels (counting the source hyperedge as
//! level 0). Exactly as the paper warns, the algorithm must maintain *two*
//! frontiers, parent arrays, and level arrays — one per index set.

use crate::hypergraph::Hypergraph;
use crate::ids;
use crate::Id;
use nwgraph::INVALID_VERTEX;
use nwhy_util::sync::{AtomicU32, Ordering};
use rayon::prelude::*;

/// Output of a hypergraph BFS from a source hyperedge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperBfsResult {
    /// Level of each hyperedge (`INVALID_VERTEX` if unreached); the
    /// source hyperedge has level 0, all other levels are even.
    pub edge_levels: Vec<u32>,
    /// Level of each hypernode (odd for reached nodes).
    pub node_levels: Vec<u32>,
    /// BFS parent of each hyperedge — a *hypernode* ID (the source is its
    /// own parent as an edge ID).
    pub edge_parents: Vec<Id>,
    /// BFS parent of each hypernode — a *hyperedge* ID.
    pub node_parents: Vec<Id>,
}

impl HyperBfsResult {
    /// Hyperedges reached (including the source).
    pub fn edges_reached(&self) -> usize {
        self.edge_levels
            .iter()
            .filter(|&&l| l != INVALID_VERTEX)
            .count()
    }

    /// Hypernodes reached.
    pub fn nodes_reached(&self) -> usize {
        self.node_levels
            .iter()
            .filter(|&&l| l != INVALID_VERTEX)
            .count()
    }
}

fn init(
    h: &Hypergraph,
    source: Id,
) -> (
    Vec<AtomicU32>,
    Vec<AtomicU32>,
    Vec<AtomicU32>,
    Vec<AtomicU32>,
) {
    let ne = h.num_hyperedges();
    let nv = h.num_hypernodes();
    assert!(
        (source as usize) < ne,
        "source hyperedge {source} out of range {ne}"
    );
    let edge_levels: Vec<AtomicU32> = (0..ne).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    let node_levels: Vec<AtomicU32> = (0..nv).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    let edge_parents: Vec<AtomicU32> = (0..ne).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    let node_parents: Vec<AtomicU32> = (0..nv).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    edge_levels[source as usize].store(0, Ordering::Relaxed);
    edge_parents[source as usize].store(source, Ordering::Relaxed);
    (edge_levels, node_levels, edge_parents, node_parents)
}

fn finish(
    edge_levels: Vec<AtomicU32>,
    node_levels: Vec<AtomicU32>,
    edge_parents: Vec<AtomicU32>,
    node_parents: Vec<AtomicU32>,
) -> HyperBfsResult {
    HyperBfsResult {
        edge_levels: edge_levels.into_iter().map(AtomicU32::into_inner).collect(),
        node_levels: node_levels.into_iter().map(AtomicU32::into_inner).collect(),
        edge_parents: edge_parents
            .into_iter()
            .map(AtomicU32::into_inner)
            .collect(),
        node_parents: node_parents
            .into_iter()
            .map(AtomicU32::into_inner)
            .collect(),
    }
}

/// Expands a frontier across one bipartite direction, claiming unvisited
/// targets by CAS on their parent slot.
fn expand(
    adjacency: &nwgraph::Csr,
    frontier: &[Id],
    target_parents: &[AtomicU32],
    target_levels: &[AtomicU32],
    depth: u32,
) -> Vec<Id> {
    frontier
        .par_iter()
        .fold(Vec::new, |mut next, &u| {
            for &t in adjacency.neighbors(u) {
                if target_parents[t as usize].load(Ordering::Relaxed) == INVALID_VERTEX
                    && target_parents[t as usize]
                        .compare_exchange(INVALID_VERTEX, u, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    target_levels[t as usize].store(depth, Ordering::Relaxed);
                    next.push(t);
                }
            }
            next
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

/// Top-down HyperBFS from a source hyperedge.
pub fn hyper_bfs_top_down(h: &Hypergraph, source: Id) -> HyperBfsResult {
    let _span = nwhy_obs::span("algo.hyper_bfs.top_down");
    let (edge_levels, node_levels, edge_parents, node_parents) = init(h, source);
    let mut edge_frontier = vec![source];
    let mut depth = 0u32;
    while !edge_frontier.is_empty() {
        // hyperedges → hypernodes
        depth += 1;
        let node_frontier = expand(
            h.edges(),
            &edge_frontier,
            &node_parents,
            &node_levels,
            depth,
        );
        if node_frontier.is_empty() {
            break;
        }
        // hypernodes → hyperedges
        depth += 1;
        edge_frontier = expand(
            h.nodes(),
            &node_frontier,
            &edge_parents,
            &edge_levels,
            depth,
        );
    }
    finish(edge_levels, node_levels, edge_parents, node_parents)
}

/// One bottom-up half-step: every unvisited element of the target side
/// scans its own incidence list for a frontier member.
fn expand_bottom_up(
    reverse_adjacency: &nwgraph::Csr, // target → sources
    in_frontier: &[bool],
    target_parents: &[AtomicU32],
    target_levels: &[AtomicU32],
    depth: u32,
) -> Vec<Id> {
    (0..reverse_adjacency.num_vertices())
        .into_par_iter()
        .filter_map(|t| {
            if target_parents[t].load(Ordering::Relaxed) != INVALID_VERTEX {
                return None;
            }
            for &u in reverse_adjacency.neighbors(ids::from_usize(t)) {
                if in_frontier[u as usize] {
                    target_parents[t].store(u, Ordering::Relaxed);
                    target_levels[t].store(depth, Ordering::Relaxed);
                    return Some(ids::from_usize(t));
                }
            }
            None
        })
        .collect()
}

/// Bottom-up HyperBFS from a source hyperedge: each half-step is a pull
/// over the unvisited side. Produces the same levels as
/// [`hyper_bfs_top_down`].
pub fn hyper_bfs_bottom_up(h: &Hypergraph, source: Id) -> HyperBfsResult {
    let _span = nwhy_obs::span("algo.hyper_bfs.bottom_up");
    let (edge_levels, node_levels, edge_parents, node_parents) = init(h, source);
    let ne = h.num_hyperedges();
    let nv = h.num_hypernodes();
    let mut edge_frontier = vec![source];
    let mut depth = 0u32;
    while !edge_frontier.is_empty() {
        // hyperedges → hypernodes, pulled from the node side: a node joins
        // if any of its hyperedges is in the frontier.
        let mut edge_in = vec![false; ne];
        for &e in &edge_frontier {
            edge_in[e as usize] = true;
        }
        depth += 1;
        let node_frontier =
            expand_bottom_up(h.nodes(), &edge_in, &node_parents, &node_levels, depth);
        if node_frontier.is_empty() {
            break;
        }
        let mut node_in = vec![false; nv];
        for &v in &node_frontier {
            node_in[v as usize] = true;
        }
        depth += 1;
        edge_frontier = expand_bottom_up(h.edges(), &node_in, &edge_parents, &edge_levels, depth);
    }
    finish(edge_levels, node_levels, edge_parents, node_parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;
    use crate::hypergraph::Hypergraph;
    use proptest::prelude::*;

    #[test]
    fn fixture_levels_from_e0() {
        let h = paper_hypergraph();
        let r = hyper_bfs_top_down(&h, 0);
        // e0 = {0,1,2,3} at level 0; its nodes at level 1
        assert_eq!(r.edge_levels[0], 0);
        for v in [0u32, 1, 2, 3] {
            assert_eq!(r.node_levels[v as usize], 1, "node {v}");
        }
        // e1 (shares node 3) and e3 (shares 0,2,3) at level 2
        assert_eq!(r.edge_levels[1], 2);
        assert_eq!(r.edge_levels[3], 2);
        // nodes {4,5,6,8} first reached via e1/e3 at level 3
        for v in [4u32, 5, 6, 8] {
            assert_eq!(r.node_levels[v as usize], 3, "node {v}");
        }
        // e2 reached at level 4, node 7 at level 5
        assert_eq!(r.edge_levels[2], 4);
        assert_eq!(r.node_levels[7], 5);
    }

    #[test]
    fn top_down_and_bottom_up_agree() {
        let h = paper_hypergraph();
        for src in 0..4 {
            let td = hyper_bfs_top_down(&h, src);
            let bu = hyper_bfs_bottom_up(&h, src);
            assert_eq!(td.edge_levels, bu.edge_levels, "src {src}");
            assert_eq!(td.node_levels, bu.node_levels, "src {src}");
        }
    }

    #[test]
    fn parents_are_cross_type() {
        let h = paper_hypergraph();
        let r = hyper_bfs_top_down(&h, 0);
        // node parents are hyperedges containing the node
        for v in 0..9u32 {
            let p = r.node_parents[v as usize];
            if p != INVALID_VERTEX {
                assert!(h.edge_members(p).contains(&v), "node {v} parent {p}");
            }
        }
        // edge parents (except source) are member nodes
        for e in 1..4u32 {
            let p = r.edge_parents[e as usize];
            if p != INVALID_VERTEX {
                assert!(h.edge_members(e).contains(&p), "edge {e} parent {p}");
            }
        }
    }

    #[test]
    fn disconnected_parts_unreached() {
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![2, 3]]);
        let r = hyper_bfs_top_down(&h, 0);
        assert_eq!(r.edge_levels[1], INVALID_VERTEX);
        assert_eq!(r.node_levels[2], INVALID_VERTEX);
        assert_eq!(r.edges_reached(), 1);
        assert_eq!(r.nodes_reached(), 2);
    }

    #[test]
    fn empty_hyperedge_source() {
        let h = Hypergraph::from_memberships(&[vec![], vec![0]]);
        let r = hyper_bfs_top_down(&h, 0);
        assert_eq!(r.edges_reached(), 1);
        assert_eq!(r.nodes_reached(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let h = paper_hypergraph();
        hyper_bfs_top_down(&h, 9);
    }

    #[test]
    fn level_parity_invariant() {
        let h = paper_hypergraph();
        let r = hyper_bfs_top_down(&h, 2);
        for &l in &r.edge_levels {
            if l != INVALID_VERTEX {
                assert_eq!(l % 2, 0, "hyperedge at odd level");
            }
        }
        for &l in &r.node_levels {
            if l != INVALID_VERTEX {
                assert_eq!(l % 2, 1, "hypernode at even level");
            }
        }
    }

    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..15, 0..6), 1..10)
            .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_variants_agree(ms in arb_memberships(), src_seed in 0u32..100) {
            let h = Hypergraph::from_memberships(&ms);
            let src = src_seed % ids::from_usize(h.num_hyperedges());
            let td = hyper_bfs_top_down(&h, src);
            let bu = hyper_bfs_bottom_up(&h, src);
            prop_assert_eq!(td.edge_levels, bu.edge_levels);
            prop_assert_eq!(td.node_levels, bu.node_levels);
        }
    }
}
