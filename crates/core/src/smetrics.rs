//! s-metrics on s-line graphs — the approximate-analytics surface of NWHy
//! (§III-B.4 and the Python API of Listing 5).
//!
//! An [`SLineGraph`] is the queryable object `hg.s_linegraph(s)` returns
//! in the paper's Python session: a plain symmetric graph over hyperedge
//! IDs on which every s-* query is an ordinary graph computation delegated
//! to `nwgraph`. Metric names and semantics follow Aksoy et al.'s s-walk
//! framework as exposed by HyperNetX/NWHy.

use crate::repr::HyperAdjacency;
use crate::slinegraph::{Algorithm, BuildOptions, SLineBuilder};
use crate::Id;
use nwgraph::algorithms::betweenness::betweenness_centrality;
use nwgraph::algorithms::bfs::bfs_direction_optimizing;
use nwgraph::algorithms::cc::{afforest, normalize_labels};
use nwgraph::algorithms::closeness::{
    closeness_centrality, eccentricity, harmonic_closeness_centrality,
};
use nwgraph::algorithms::sssp::path_from_parents;
use nwgraph::Csr;
use nwgraph::INVALID_VERTEX;

/// An s-line graph of a hypergraph, with the s-metric query API.
///
/// # Examples
///
/// ```
/// use nwhy_core::{Hypergraph, SLineGraph};
///
/// let h = Hypergraph::from_memberships(&[
///     vec![0, 1, 2],
///     vec![1, 2, 3],
///     vec![2, 3, 4],
/// ]);
/// let lg = SLineGraph::new(&h, 2);
/// assert!(lg.is_s_connected());
/// assert_eq!(lg.s_neighbors(1), &[0, 2]);
/// assert_eq!(lg.s_distance(0, 2), Some(2));
/// assert_eq!(lg.s_path(0, 2), Some(vec![0, 1, 2]));
/// ```
#[derive(Debug, Clone)]
pub struct SLineGraph {
    s: usize,
    graph: Csr,
}

impl SLineGraph {
    /// Constructs the s-line graph of `h` (hashmap algorithm, default
    /// options) from any representation implementing [`HyperAdjacency`].
    /// Equivalent to Listing 5's `hg.s_linegraph(s=s)`.
    pub fn new<A: HyperAdjacency + ?Sized>(h: &A, s: usize) -> Self {
        Self::with_algorithm(h, s, Algorithm::Hashmap, &BuildOptions::default())
    }

    /// Constructs with an explicit algorithm and options.
    pub fn with_algorithm<A: HyperAdjacency + ?Sized>(
        h: &A,
        s: usize,
        algo: Algorithm,
        opts: &BuildOptions,
    ) -> Self {
        Self {
            s,
            graph: SLineBuilder::new(h)
                .s(s)
                .algorithm(algo)
                .options(opts)
                .csr(),
        }
    }

    /// Wraps an already-built symmetric line-graph CSR.
    pub fn from_csr(s: usize, graph: Csr) -> Self {
        Self { s, graph }
    }

    /// The `s` this line graph was built for.
    #[inline]
    pub fn s(&self) -> usize {
        self.s
    }

    /// The underlying symmetric graph over hyperedge IDs.
    #[inline]
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Number of vertices (= hyperedges of the source hypergraph).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// s-degree of hyperedge `e`: how many hyperedges s-overlap it
    /// (Listing 5 `s_degree`).
    pub fn s_degree(&self, e: Id) -> usize {
        self.graph.degree(e)
    }

    /// The hyperedges s-adjacent to `e` (Listing 5 `s_neighbors`).
    pub fn s_neighbors(&self, e: Id) -> &[Id] {
        self.graph.neighbors(e)
    }

    /// s-connected-component labels over hyperedges, canonicalized to the
    /// smallest member ID (Listing 5 `s_connected_components`).
    pub fn s_connected_components(&self) -> Vec<Id> {
        normalize_labels(&afforest(&self.graph))
    }

    /// `true` if every hyperedge is in one s-component (Listing 5
    /// `is_s_connected`). Vacuously true for ≤ 1 hyperedges.
    pub fn is_s_connected(&self) -> bool {
        let labels = self.s_connected_components();
        labels.windows(2).all(|w| w[0] == w[1])
    }

    /// s-distance (s-walk length) between hyperedges, `None` if not
    /// s-connected (Listing 5 `s_distance`).
    pub fn s_distance(&self, src: Id, dest: Id) -> Option<u32> {
        let levels = bfs_direction_optimizing(&self.graph, src).levels;
        let d = levels[dest as usize];
        (d != INVALID_VERTEX).then_some(d)
    }

    /// One shortest s-walk between hyperedges (Listing 5 `s_path`).
    pub fn s_path(&self, src: Id, dest: Id) -> Option<Vec<Id>> {
        let parents = bfs_direction_optimizing(&self.graph, src).parents;
        path_from_parents(&parents, src, dest)
    }

    /// s-betweenness centrality of every hyperedge (Listing 5
    /// `s_betweenness_centrality`).
    pub fn s_betweenness_centrality(&self, normalized: bool) -> Vec<f64> {
        betweenness_centrality(&self.graph, normalized)
    }

    /// Approximate s-betweenness from `samples` Brandes sources
    /// (Brandes–Pich sampling) — the practical choice when the s-line
    /// graph is large. Deterministic per seed; exact when
    /// `samples ≥ |E|`.
    pub fn s_betweenness_centrality_approx(
        &self,
        samples: usize,
        seed: u64,
        normalized: bool,
    ) -> Vec<f64> {
        nwgraph::algorithms::betweenness::betweenness_sampled(
            &self.graph,
            samples,
            seed,
            normalized,
        )
    }

    /// s-closeness centrality; pass `Some(e)` for one hyperedge or `None`
    /// for all (Listing 5 `s_closeness_centrality(v=None)`).
    pub fn s_closeness_centrality(&self, v: Option<Id>) -> Vec<f64> {
        let all = closeness_centrality(&self.graph);
        match v {
            Some(e) => vec![all[e as usize]],
            None => all,
        }
    }

    /// s-harmonic-closeness centrality (Listing 5
    /// `s_harmonic_closeness_centrality`).
    pub fn s_harmonic_closeness_centrality(&self, v: Option<Id>) -> Vec<f64> {
        let all = harmonic_closeness_centrality(&self.graph);
        match v {
            Some(e) => vec![all[e as usize]],
            None => all,
        }
    }

    /// s-eccentricity (Listing 5 `s_eccentricity`): greatest finite
    /// s-distance from each hyperedge within its s-component.
    pub fn s_eccentricity(&self, v: Option<Id>) -> Vec<u32> {
        let all = eccentricity(&self.graph);
        match v {
            Some(e) => vec![all[e as usize]],
            None => all,
        }
    }

    /// The s-diameter: max finite s-eccentricity.
    pub fn s_diameter(&self) -> u32 {
        self.s_eccentricity(None).into_iter().max().unwrap_or(0)
    }

    /// PageRank over the s-line graph — a hyperedge-importance score
    /// under s-walks (framework extension; MESH/HyperX expose PageRank
    /// per §V).
    pub fn s_pagerank(&self, damping: f64) -> Vec<f64> {
        let (scores, _) = nwgraph::algorithms::pagerank::pagerank(
            &self.graph,
            nwgraph::algorithms::pagerank::PageRankOptions {
                damping,
                ..Default::default()
            },
        );
        scores
    }

    /// Core numbers of the s-line graph (s-core decomposition; k-core is
    /// in the §V framework algorithm suites).
    pub fn s_kcore(&self) -> Vec<u32> {
        nwgraph::algorithms::kcore::kcore_decomposition(&self.graph)
    }

    /// Triangle count of the s-line graph: triples of mutually
    /// s-overlapping hyperedges.
    pub fn s_triangles(&self) -> u64 {
        nwgraph::algorithms::triangles::triangle_count(&self.graph)
    }

    /// A maximal set of pairwise *non*-s-overlapping hyperedges
    /// (independent set on the s-line graph); deterministic per seed.
    pub fn s_independent_set(&self, seed: u64) -> Vec<bool> {
        nwgraph::algorithms::mis::maximal_independent_set(&self.graph, seed)
    }

    /// An s-walk (Aksoy et al.: "an s-walk is a random walk on the s-line
    /// graph"): a uniform random walk of at most `steps` hops starting at
    /// hyperedge `start`. The walk stops early at an s-isolated
    /// hyperedge. Deterministic for a given seed; returns the visited
    /// sequence including `start`.
    pub fn s_random_walk(&self, start: Id, steps: usize, seed: u64) -> Vec<Id> {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next_u64 = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut walk = Vec::with_capacity(steps + 1);
        let mut cur = start;
        walk.push(cur);
        for _ in 0..steps {
            let nbrs = self.graph.neighbors(cur);
            if nbrs.is_empty() {
                break;
            }
            // lint: the 128-bit product >> 64 is bounded by nbrs.len()
            #[allow(clippy::cast_possible_truncation)]
            let pick = ((next_u64() as u128 * nbrs.len() as u128) >> 64) as usize;
            cur = nbrs[pick];
            walk.push(cur);
        }
        walk
    }
}

/// An s-line graph whose edges carry the exact overlap size `|e ∩ f|`
/// (Fig. 5 draws these as line widths). Distances treat an overlap-`o`
/// edge as length `1/o`, so weighted s-walks prefer strong connections.
#[derive(Debug, Clone)]
pub struct WeightedSLineGraph {
    s: usize,
    /// Symmetric CSR with weights `1/overlap`.
    graph: Csr,
    /// Canonical `(e, f, overlap)` triples, `e < f`.
    triples: Vec<(Id, Id, u32)>,
}

impl WeightedSLineGraph {
    /// Builds the weighted s-line graph of `h` from any representation
    /// implementing [`HyperAdjacency`].
    pub fn new<A: HyperAdjacency + ?Sized>(h: &A, s: usize) -> Self {
        let builder = SLineBuilder::new(h).s(s);
        Self {
            s,
            graph: builder.weighted_csr(),
            triples: builder.weighted_edges(),
        }
    }

    /// The `s` this line graph was built for.
    pub fn s(&self) -> usize {
        self.s
    }

    /// The weighted symmetric CSR (weights `1/overlap`).
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The canonical `(e, f, overlap)` triples.
    pub fn triples(&self) -> &[(Id, Id, u32)] {
        &self.triples
    }

    /// Exact overlap of two hyperedges, if they s-overlap.
    pub fn s_overlap(&self, e: Id, f: Id) -> Option<u32> {
        let key = if e < f { (e, f) } else { (f, e) };
        self.triples
            .binary_search_by_key(&key, |&(a, b, _)| (a, b))
            .ok()
            .map(|i| self.triples[i].2)
    }

    /// Weighted s-distance: least total `Σ 1/overlap` over s-walks
    /// between `src` and `dest` (`None` if not s-connected).
    pub fn s_distance_weighted(&self, src: Id, dest: Id) -> Option<f64> {
        let d = nwgraph::algorithms::sssp::delta_stepping(&self.graph, src, None);
        let dist = d[dest as usize];
        dist.is_finite().then_some(dist)
    }

    /// Strength-weighted s-degree of `e`: `Σ overlap(e, f)` over its
    /// s-neighbors.
    pub fn s_strength(&self, e: Id) -> u64 {
        self.triples
            .iter()
            .filter(|&&(a, b, _)| a == e || b == e)
            .map(|&(_, _, o)| o as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;
    use crate::hypergraph::Hypergraph;

    // Fixture line graphs (see fixtures.rs):
    //   s=1: {01, 03, 12, 13, 23}   s=2: {03, 12, 13, 23}   s=3: {03, 12}
    // overlaps: 01→1, 03→3, 12→3, 13→2, 23→2

    #[test]
    fn extended_metrics_run_consistently() {
        let h = paper_hypergraph();
        let lg = SLineGraph::new(&h, 1);
        let pr = lg.s_pagerank(0.85);
        assert_eq!(pr.len(), 4);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        // vertex 3 (degree 3) should outrank vertex 0 (degree 2)
        assert!(pr[3] > pr[0]);
        let core = lg.s_kcore();
        assert_eq!(core.len(), 4);
        assert!(core.iter().all(|&k| k >= 1));
        // triangles in {01,03,12,13,23}: (0,1,3) and (1,2,3)
        assert_eq!(lg.s_triangles(), 2);
        let mis = lg.s_independent_set(7);
        nwgraph::algorithms::mis::validate_mis(lg.graph(), &mis).unwrap();
    }

    #[test]
    fn weighted_linegraph_overlaps() {
        let h = paper_hypergraph();
        let w = WeightedSLineGraph::new(&h, 1);
        assert_eq!(w.s(), 1);
        assert_eq!(w.s_overlap(0, 3), Some(3));
        assert_eq!(w.s_overlap(3, 0), Some(3)); // order-insensitive
        assert_eq!(w.s_overlap(0, 1), Some(1));
        assert_eq!(w.s_overlap(0, 2), None);
        assert_eq!(w.triples().len(), 5);
    }

    #[test]
    fn weighted_distance_prefers_strong_overlaps() {
        let h = paper_hypergraph();
        let w = WeightedSLineGraph::new(&h, 1);
        // 0→1 direct: 1/1 = 1.0; via 3: 1/3 + 1/2 ≈ 0.833 — the strong
        // path through 3 is shorter despite more hops
        let d = w.s_distance_weighted(0, 1).unwrap();
        assert!((d - (1.0 / 3.0 + 1.0 / 2.0)).abs() < 1e-9, "{d}");
        // unreachable at high s
        let w4 = WeightedSLineGraph::new(&h, 4);
        assert_eq!(w4.s_distance_weighted(0, 1), None);
    }

    #[test]
    fn strength_sums_overlaps() {
        let h = paper_hypergraph();
        let w = WeightedSLineGraph::new(&h, 1);
        // edge 3 overlaps: 03→3, 13→2, 23→2
        assert_eq!(w.s_strength(3), 7);
        assert_eq!(w.s_strength(0), 4); // 01→1, 03→3
    }

    #[test]
    fn random_walk_stays_on_s_edges() {
        let h = paper_hypergraph();
        let lg = SLineGraph::new(&h, 2);
        let walk = lg.s_random_walk(0, 50, 7);
        assert_eq!(walk[0], 0);
        assert_eq!(walk.len(), 51);
        for w in walk.windows(2) {
            assert!(
                lg.s_neighbors(w[0]).contains(&w[1]),
                "walk used non-edge {w:?}"
            );
        }
        // deterministic per seed
        assert_eq!(walk, lg.s_random_walk(0, 50, 7));
        assert_ne!(walk, lg.s_random_walk(0, 50, 8));
    }

    #[test]
    fn approx_betweenness_with_full_samples_is_exact() {
        let h = paper_hypergraph();
        let lg = SLineGraph::new(&h, 1);
        let exact = lg.s_betweenness_centrality(false);
        let approx = lg.s_betweenness_centrality_approx(10, 1, false);
        for (a, b) in exact.iter().zip(&approx) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn random_walk_halts_on_isolated_vertex() {
        let h = paper_hypergraph();
        let lg = SLineGraph::new(&h, 4); // no edges at s=4
        assert_eq!(lg.s_random_walk(2, 10, 1), vec![2]);
    }

    #[test]
    fn s_degree_and_neighbors() {
        let h = paper_hypergraph();
        let lg = SLineGraph::new(&h, 2);
        assert_eq!(lg.s(), 2);
        assert_eq!(lg.s_degree(3), 3); // 03, 13, 23
        assert_eq!(lg.s_neighbors(3), &[0, 1, 2]);
        assert_eq!(lg.s_degree(0), 1);
        assert_eq!(lg.s_neighbors(0), &[3]);
    }

    #[test]
    fn connectivity_by_s() {
        let h = paper_hypergraph();
        assert!(SLineGraph::new(&h, 1).is_s_connected());
        assert!(SLineGraph::new(&h, 2).is_s_connected());
        // s=3: components {0,3} and {1,2}
        let lg3 = SLineGraph::new(&h, 3);
        assert!(!lg3.is_s_connected());
        assert_eq!(lg3.s_connected_components(), vec![0, 1, 1, 0]);
        // s=4: all isolated
        let lg4 = SLineGraph::new(&h, 4);
        assert_eq!(lg4.s_connected_components(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn s_distance_and_path() {
        let h = paper_hypergraph();
        let lg2 = SLineGraph::new(&h, 2);
        // s=2 edges: 03, 12, 13, 23 → dist(0,2) = 2 via 3
        assert_eq!(lg2.s_distance(0, 2), Some(2));
        assert_eq!(lg2.s_path(0, 2), Some(vec![0, 3, 2]));
        assert_eq!(lg2.s_distance(0, 0), Some(0));
        let lg3 = SLineGraph::new(&h, 3);
        assert_eq!(lg3.s_distance(0, 1), None);
        assert_eq!(lg3.s_path(0, 1), None);
    }

    #[test]
    fn betweenness_identifies_cut_vertex() {
        let h = paper_hypergraph();
        let lg2 = SLineGraph::new(&h, 2);
        // in {03,12,13,23}: vertex 3 is the hub connecting 0 to {1,2}
        let bc = lg2.s_betweenness_centrality(false);
        let max = bc.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(bc[3], max);
        assert!(bc[3] > 0.0);
        assert_eq!(bc[0], 0.0);
    }

    #[test]
    fn closeness_queries() {
        let h = paper_hypergraph();
        let lg1 = SLineGraph::new(&h, 1);
        let all = lg1.s_closeness_centrality(None);
        assert_eq!(all.len(), 4);
        let single = lg1.s_closeness_centrality(Some(3));
        assert_eq!(single, vec![all[3]]);
        let harm = lg1.s_harmonic_closeness_centrality(None);
        assert!(harm.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn eccentricity_and_diameter() {
        let h = paper_hypergraph();
        let lg2 = SLineGraph::new(&h, 2);
        // {03,12,13,23}: ecc(0)=2 (to 1 or 2), ecc(3)=1
        let ecc = lg2.s_eccentricity(None);
        assert_eq!(ecc[3], 1);
        assert_eq!(ecc[0], 2);
        assert_eq!(lg2.s_diameter(), 2);
        assert_eq!(lg2.s_eccentricity(Some(3)), vec![1]);
    }

    #[test]
    fn singleton_hypergraph_is_connected() {
        let h = Hypergraph::from_memberships(&[vec![0, 1]]);
        let lg = SLineGraph::new(&h, 1);
        assert!(lg.is_s_connected());
        assert_eq!(lg.s_diameter(), 0);
    }

    #[test]
    fn all_construction_algorithms_give_same_queries() {
        let h = paper_hypergraph();
        let reference = SLineGraph::new(&h, 2).s_connected_components();
        for algo in Algorithm::ALL {
            let lg = SLineGraph::with_algorithm(&h, 2, algo, &BuildOptions::default());
            assert_eq!(lg.s_connected_components(), reference, "{}", algo.name());
        }
    }
}
