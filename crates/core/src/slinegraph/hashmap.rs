//! Hashmap-counting s-line construction (Liu et al., IPDPS 2022).
//!
//! For each hyperedge `e_i`, a hash map accumulates
//! `overlap_count[e_j] += 1` for every co-incidence discovered through the
//! bipartite indirection (`e_i → v → e_j`, `j > i`); pairs whose count
//! reaches `s` become line-graph edges. Unlike the intersection algorithm
//! this touches each incidence exactly once per outer hyperedge and needs
//! no sorted neighbor access — but pays hashing costs.

use super::stats::KernelStats;
use super::{canonicalize, meets, HyperAdjacency};
use crate::{ids, Id};
use nwhy_util::fxhash::FxHashMap;
use nwhy_util::partition::{par_for_each_index_with, Strategy};

/// Worker-local state: output pairs, a reusable counting map, tallies.
struct Local {
    pairs: Vec<(Id, Id)>,
    counts: FxHashMap<Id, u32>,
    stats: KernelStats,
}

/// Hashmap-counting construction; returns canonical pairs.
pub fn hashmap<A: HyperAdjacency + ?Sized>(h: &A, s: usize, strategy: Strategy) -> Vec<(Id, Id)> {
    let ne = h.num_hyperedges();
    let locals = par_for_each_index_with(
        ne,
        strategy,
        || Local {
            pairs: Vec::new(),
            counts: FxHashMap::default(),
            stats: KernelStats::default(),
        },
        |local, i| {
            let i = ids::from_usize(i);
            let nbrs_i = h.edge_neighbors(i);
            if nbrs_i.len() < s {
                local.stats.pairs_skipped(ne as u64 - 1 - i as u64);
                return;
            }
            local.counts.clear();
            for &v in nbrs_i.iter() {
                for &raw in h.node_neighbors(v).iter() {
                    let j = h.edge_id(raw);
                    if j > i {
                        local.stats.hashmap_insertion();
                        *local.counts.entry(j).or_insert(0) += 1;
                    }
                }
            }
            // Each distinct counted candidate is one examined pair.
            local.stats.pairs_examined_n(local.counts.len() as u64);
            for (&j, &n) in &local.counts {
                if meets(n, s) {
                    // lint: alloc: per-thread output accumulator; push is amortized O(1)
                    local.pairs.push((i, j));
                }
            }
        },
    );
    let pairs: Vec<(Id, Id)> = locals
        .iter()
        .flat_map(|l| l.pairs.iter().copied())
        .collect();
    KernelStats::flush_all(locals.iter().map(|l| &l.stats), pairs.len());
    canonicalize(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;
    use crate::slinegraph::naive::naive;

    #[test]
    fn matches_fixture() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            assert_eq!(
                hashmap(&h, s, Strategy::AUTO),
                paper_slinegraph_edges(s),
                "s={s}"
            );
        }
    }

    #[test]
    fn counts_equal_exact_overlaps() {
        let h =
            Hypergraph::from_memberships(&[vec![0, 1, 2, 3, 4], vec![2, 3, 4, 5], vec![4, 5, 6]]);
        // |e0∩e1| = 3, |e0∩e2| = 1, |e1∩e2| = 2
        assert_eq!(hashmap(&h, 1, Strategy::AUTO), vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(hashmap(&h, 2, Strategy::AUTO), vec![(0, 1), (1, 2)]);
        assert_eq!(hashmap(&h, 3, Strategy::AUTO), vec![(0, 1)]);
        assert!(hashmap(&h, 4, Strategy::AUTO).is_empty());
    }

    #[test]
    fn agrees_with_naive_under_all_strategies() {
        let h = Hypergraph::from_memberships(&[
            vec![0, 1, 2],
            vec![1, 2, 3],
            vec![0, 3],
            vec![2],
            vec![0, 1, 2, 3],
        ]);
        for strategy in [
            Strategy::AUTO,
            Strategy::Blocked { num_bins: 3 },
            Strategy::Cyclic { num_bins: 2 },
        ] {
            for s in 1..=3 {
                assert_eq!(
                    hashmap(&h, s, strategy),
                    naive(&h, s, Strategy::AUTO),
                    "{strategy:?} s={s}"
                );
            }
        }
    }
}
