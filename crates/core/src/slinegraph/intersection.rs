//! Heuristic set-intersection s-line construction (Liu et al., HiPC 2021),
//! driven by the adaptive overlap engine.
//!
//! The three-nested-loop "indirection" pattern: for each hyperedge `e_i`,
//! for each incident hypernode `v`, for each hyperedge `e_j ∋ v` with
//! `j > i` — each *distinct* candidate `e_j` is then checked with a
//! short-circuiting overlap test that stops as soon as `s` common
//! members are found. Three heuristics cut the candidate work:
//!
//! 1. skip hyperedges with fewer than `s` members (can never s-overlap);
//! 2. visit each candidate pair once (`j > i` plus a per-worker visited
//!    stamp array, so a pair sharing many hypernodes is intersected once);
//! 3. short-circuit the per-pair test at `s`.
//!
//! The per-pair test itself goes through [`super::overlap`]: the default
//! [`OverlapPolicy::Adaptive`] loads dense expanded rows into a packed
//! bitset and routes skewed pairs to a galloping search, falling back to
//! the merge scan for similar-length rows; `Force(..)` pins one path for
//! ablation benches and agreement tests.

use super::overlap::{OverlapEngine, OverlapPolicy};
use super::stats::KernelStats;
use super::{canonicalize, HyperAdjacency};
use crate::{ids, Id};
use nwhy_util::partition::{par_for_each_index_with, Strategy};

/// Worker-local state: the output pairs, the candidate-dedup stamps,
/// the overlap engine (row bitset + path rule), and kernel tallies.
struct Local {
    pairs: Vec<(Id, Id)>,
    /// `stamp[j] == current_i + 1` ⇒ candidate `j` already intersected
    /// for the hyperedge currently being expanded.
    stamp: Vec<Id>,
    engine: OverlapEngine,
    stats: KernelStats,
}

/// Pre-sizes each worker's output vec from a sampled degree estimate:
/// the expected candidate fan-out per row (Σ of incident node degrees,
/// halved for the `j > i` filter), times this worker's share of the
/// rows, capped so the hint never dominates memory. Cuts the doubling
/// reallocs the old `Vec::new()` start paid on every worker.
fn pair_capacity_hint<A: HyperAdjacency + ?Sized>(h: &A, workers: usize) -> usize {
    let ne = h.num_hyperedges();
    if ne == 0 {
        return 0;
    }
    let samples = ne.min(64);
    let mut fanout = 0usize;
    for k in 0..samples {
        let e = ids::from_usize(k * ne / samples);
        for &v in h.edge_neighbors(e).iter() {
            fanout += h.node_degree(v);
        }
    }
    let per_row = fanout / samples / 2;
    (ne * per_row / workers.max(1)).clamp(16, 1 << 14)
}

/// Heuristic intersection construction with the default adaptive overlap
/// policy; returns canonical pairs.
pub fn intersection<A: HyperAdjacency + ?Sized>(
    h: &A,
    s: usize,
    strategy: Strategy,
) -> Vec<(Id, Id)> {
    intersection_with(h, s, strategy, OverlapPolicy::default())
}

/// Heuristic intersection construction with an explicit overlap policy.
pub fn intersection_with<A: HyperAdjacency + ?Sized>(
    h: &A,
    s: usize,
    strategy: Strategy,
    policy: OverlapPolicy,
) -> Vec<(Id, Id)> {
    let ne = h.num_hyperedges();
    let universe = ne + h.num_hypernodes();
    let capacity = pair_capacity_hint(h, strategy.bins().max(1));
    let locals = par_for_each_index_with(
        ne,
        strategy,
        || Local {
            pairs: Vec::with_capacity(capacity),
            stamp: vec![0; ne],
            engine: OverlapEngine::new(policy, universe),
            stats: KernelStats::default(),
        },
        |local, i| {
            let i = ids::from_usize(i);
            let nbrs_i = h.edge_neighbors(i);
            if nbrs_i.len() < s {
                return;
            }
            // hoist the one Deref through the row's whole expansion: the
            // decoded slice (a real decode for compressed backends) is
            // borrowed once and reused by every candidate check below
            let row_i: &[Id] = &nbrs_i;
            local.engine.begin_row(row_i);
            let mark = i + 1;
            for &v in row_i {
                for &raw in h.node_neighbors(v).iter() {
                    let j = h.edge_id(raw);
                    if j <= i || local.stamp[ids::to_usize(j)] == mark {
                        continue;
                    }
                    local.stamp[ids::to_usize(j)] = mark;
                    local.stats.pair_examined();
                    let nbrs_j = h.edge_neighbors(j);
                    if nbrs_j.len() < s {
                        local.stats.pairs_skipped(1);
                        continue;
                    }
                    if local.engine.overlaps(row_i, &nbrs_j, s, &mut local.stats) {
                        local.pairs.push((i, j));
                    }
                }
            }
            local.engine.end_row(row_i);
        },
    );
    let pairs: Vec<(Id, Id)> = locals
        .iter()
        .flat_map(|l| l.pairs.iter().copied())
        .collect();
    KernelStats::flush_all(locals.iter().map(|l| &l.stats), pairs.len());
    canonicalize(pairs)
}

#[cfg(test)]
mod tests {
    use super::super::overlap::OverlapPath;
    use super::*;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;
    use crate::slinegraph::naive::naive;

    #[test]
    fn matches_fixture() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            assert_eq!(
                intersection(&h, s, Strategy::AUTO),
                paper_slinegraph_edges(s),
                "s={s}"
            );
        }
    }

    #[test]
    fn matches_naive_on_shared_node_hub() {
        // hypernode 0 belongs to every hyperedge — max candidate fan-out
        let h =
            Hypergraph::from_memberships(&[vec![0, 1], vec![0, 2], vec![0, 3], vec![0, 1, 2, 3]]);
        for s in 1..=3 {
            assert_eq!(
                intersection(&h, s, Strategy::AUTO),
                naive(&h, s, Strategy::AUTO),
                "s={s}"
            );
        }
    }

    #[test]
    fn stamp_dedup_does_not_drop_pairs_across_iterations() {
        // consecutive hyperedges sharing different nodes: the stamp reset
        // discipline (mark = i + 1) must not leak between outer iterations
        let h = Hypergraph::from_memberships(&[
            vec![0, 1, 2],
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![3, 4, 0],
        ]);
        for s in 1..=2 {
            assert_eq!(
                intersection(&h, s, Strategy::Cyclic { num_bins: 2 }),
                naive(&h, s, Strategy::AUTO),
                "s={s}"
            );
        }
    }

    #[test]
    fn every_overlap_policy_matches_fixture() {
        let h = paper_hypergraph();
        for path in OverlapPath::ALL {
            for s in 1..=4 {
                assert_eq!(
                    intersection_with(&h, s, Strategy::AUTO, OverlapPolicy::Force(path)),
                    paper_slinegraph_edges(s),
                    "{} s={s}",
                    path.name()
                );
            }
        }
    }

    #[test]
    fn adaptive_engages_bitset_rows_and_still_agrees() {
        // one dense row (≥ BITSET_ROW_MIN_DEGREE) plus skewed small rows:
        // exercises all three paths inside a single construction
        let mut memberships: Vec<Vec<Id>> = vec![(0..64).collect()];
        memberships.push((0..8).collect());
        memberships.push(vec![0, 64]);
        memberships.push(vec![1, 2]);
        let h = Hypergraph::from_memberships(&memberships);
        for s in 1..=3 {
            assert_eq!(
                intersection(&h, s, Strategy::AUTO),
                naive(&h, s, Strategy::AUTO),
                "s={s}"
            );
        }
    }

    #[test]
    fn capacity_hint_is_bounded() {
        let h = paper_hypergraph();
        let hint = pair_capacity_hint(&h, 1);
        assert!((16..=1 << 14).contains(&hint));
        let empty = Hypergraph::from_memberships(&[]);
        assert_eq!(pair_capacity_hint(&empty, 4), 0);
    }
}
