//! Heuristic set-intersection s-line construction (Liu et al., HiPC 2021).
//!
//! The three-nested-loop "indirection" pattern: for each hyperedge `e_i`,
//! for each incident hypernode `v`, for each hyperedge `e_j ∋ v` with
//! `j > i` — each *distinct* candidate `e_j` is then checked with a
//! short-circuiting sorted intersection that stops as soon as `s` common
//! members are found. Three heuristics cut the work:
//!
//! 1. skip hyperedges with fewer than `s` members (can never s-overlap);
//! 2. visit each candidate pair once (`j > i` plus a per-worker visited
//!    stamp array, so a pair sharing many hypernodes is intersected once);
//! 3. short-circuit the intersection at `s`.

use super::stats::KernelStats;
use super::{canonicalize, HyperAdjacency};
use crate::{ids, Id};
use nwhy_util::partition::{par_for_each_index_with, Strategy};

/// Worker-local state: the output pairs, the candidate-dedup stamps,
/// and kernel tallies.
struct Local {
    pairs: Vec<(Id, Id)>,
    /// `stamp[j] == current_i + 1` ⇒ candidate `j` already intersected
    /// for the hyperedge currently being expanded.
    stamp: Vec<Id>,
    stats: KernelStats,
}

/// Heuristic intersection construction; returns canonical pairs.
pub fn intersection<A: HyperAdjacency + ?Sized>(
    h: &A,
    s: usize,
    strategy: Strategy,
) -> Vec<(Id, Id)> {
    let ne = h.num_hyperedges();
    let locals = par_for_each_index_with(
        ne,
        strategy,
        || Local {
            pairs: Vec::new(),
            stamp: vec![0; ne],
            stats: KernelStats::default(),
        },
        |local, i| {
            let i = ids::from_usize(i);
            let nbrs_i = h.edge_neighbors(i);
            if nbrs_i.len() < s {
                return;
            }
            let mark = i + 1;
            for &v in nbrs_i.iter() {
                for &raw in h.node_neighbors(v).iter() {
                    let j = h.edge_id(raw);
                    if j <= i || local.stamp[ids::to_usize(j)] == mark {
                        continue;
                    }
                    local.stamp[ids::to_usize(j)] = mark;
                    local.stats.pair_examined();
                    let nbrs_j = h.edge_neighbors(j);
                    if nbrs_j.len() < s {
                        local.stats.pairs_skipped(1);
                        continue;
                    }
                    if local.stats.intersect_at_least(&nbrs_i, &nbrs_j, s) {
                        local.pairs.push((i, j));
                    }
                }
            }
        },
    );
    let pairs: Vec<(Id, Id)> = locals
        .iter()
        .flat_map(|l| l.pairs.iter().copied())
        .collect();
    KernelStats::flush_all(locals.iter().map(|l| &l.stats), pairs.len());
    canonicalize(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;
    use crate::slinegraph::naive::naive;

    #[test]
    fn matches_fixture() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            assert_eq!(
                intersection(&h, s, Strategy::AUTO),
                paper_slinegraph_edges(s),
                "s={s}"
            );
        }
    }

    #[test]
    fn matches_naive_on_shared_node_hub() {
        // hypernode 0 belongs to every hyperedge — max candidate fan-out
        let h =
            Hypergraph::from_memberships(&[vec![0, 1], vec![0, 2], vec![0, 3], vec![0, 1, 2, 3]]);
        for s in 1..=3 {
            assert_eq!(
                intersection(&h, s, Strategy::AUTO),
                naive(&h, s, Strategy::AUTO),
                "s={s}"
            );
        }
    }

    #[test]
    fn stamp_dedup_does_not_drop_pairs_across_iterations() {
        // consecutive hyperedges sharing different nodes: the stamp reset
        // discipline (mark = i + 1) must not leak between outer iterations
        let h = Hypergraph::from_memberships(&[
            vec![0, 1, 2],
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![3, 4, 0],
        ]);
        for s in 1..=2 {
            assert_eq!(
                intersection(&h, s, Strategy::Cyclic { num_bins: 2 }),
                naive(&h, s, Strategy::AUTO),
                "s={s}"
            );
        }
    }
}
