//! **Algorithm 1** — the paper's single-phase queue-based s-line
//! construction with hashmap counting.
//!
//! The structural difference from [`super::hashmap`] is the work list:
//! instead of a `for` loop fixed over contiguous IDs `0..n_e`, hyperedge
//! IDs are enqueued into a work queue up front ("ID can be original or
//! permuted", Alg. 1 line 2) and workers drain the queue. This makes the
//! algorithm *representation-independent*: it runs unchanged on
//! bi-adjacencies, adjoin graphs (where hyperedge IDs share the index set
//! with hypernodes), and degree-relabeled ID spaces — the cases §III-C.3
//! says the non-queue algorithms cannot handle directly.
//!
//! Enqueuing is linear in the number of hyperedges, so the asymptotic
//! complexity matches the non-queue hashmap algorithm.

use super::stats::KernelStats;
use super::{canonicalize, meets, HyperAdjacency};
use crate::Id;
use nwhy_obs::Counter;
use nwhy_util::fxhash::FxHashMap;
use nwhy_util::partition::{par_for_each_index_with, Strategy};

/// Algorithm 1. `queue` holds the hyperedge IDs to process (any order,
/// any ID space the representation defines); returns canonical pairs.
pub fn queue_hashmap<H: HyperAdjacency + ?Sized>(
    h: &H,
    queue: &[Id],
    s: usize,
    strategy: Strategy,
) -> Vec<(Id, Id)> {
    struct Local {
        pairs: Vec<(Id, Id)>,
        counts: FxHashMap<Id, u32>,
        stats: KernelStats,
    }
    // Drain the queue in parallel; queue slots (not raw IDs) are the
    // iteration space, so permuted/relabeled IDs cost nothing extra.
    let locals = par_for_each_index_with(
        queue.len(),
        strategy,
        || Local {
            pairs: Vec::new(),
            counts: FxHashMap::default(),
            stats: KernelStats::default(),
        },
        |local, slot| {
            let i = queue[slot];
            let nbrs_i = h.edge_neighbors(i);
            if nbrs_i.len() < s {
                return; // Alg. 1 line 6–7
            }
            local.counts.clear();
            for &v in nbrs_i.iter() {
                // Alg. 1 lines 9–11
                for &raw in h.node_neighbors(v).iter() {
                    let j = h.edge_id(raw);
                    if j > i {
                        local.stats.hashmap_insertion();
                        *local.counts.entry(j).or_insert(0) += 1;
                    }
                }
            }
            local.stats.pairs_examined_n(local.counts.len() as u64);
            // Alg. 1 lines 12–14
            for (&j, &n) in &local.counts {
                if meets(n, s) {
                    // lint: alloc: per-thread output accumulator; push is amortized O(1)
                    local.pairs.push((i, j));
                }
            }
        },
    );
    let pairs: Vec<(Id, Id)> = locals
        .iter()
        .flat_map(|l| l.pairs.iter().copied())
        .collect();
    nwhy_obs::add(Counter::SlineQueuePushes, queue.len() as u64);
    KernelStats::flush_all(locals.iter().map(|l| &l.stats), pairs.len());
    canonicalize(pairs)
}

/// Algorithm 1 with *dynamic* self-scheduling: instead of a static
/// blocked/cyclic split of the queue, workers repeatedly steal fixed-size
/// chunks from a shared atomic cursor ([`nwhy_util::workq::ChunkedQueue`]).
/// Finishing the skew story: a worker that drew only cheap hyperedges
/// keeps pulling work instead of idling.
pub fn queue_hashmap_dynamic<H: HyperAdjacency + ?Sized>(
    h: &H,
    queue: &[Id],
    s: usize,
) -> Vec<(Id, Id)> {
    use nwhy_util::workq::ChunkedQueue;
    struct Local {
        pairs: Vec<(Id, Id)>,
        counts: FxHashMap<Id, u32>,
        stats: KernelStats,
    }
    let workers = rayon::current_num_threads().max(1);
    let q = ChunkedQueue::with_auto_chunk(queue, workers);
    let locals = q.drain_with(
        workers,
        || Local {
            pairs: Vec::new(),
            counts: FxHashMap::default(),
            stats: KernelStats::default(),
        },
        |local, &i| {
            let nbrs_i = h.edge_neighbors(i);
            if nbrs_i.len() < s {
                return;
            }
            local.counts.clear();
            for &v in nbrs_i.iter() {
                for &raw in h.node_neighbors(v).iter() {
                    let j = h.edge_id(raw);
                    if j > i {
                        local.stats.hashmap_insertion();
                        *local.counts.entry(j).or_insert(0) += 1;
                    }
                }
            }
            local.stats.pairs_examined_n(local.counts.len() as u64);
            for (&j, &n) in &local.counts {
                if meets(n, s) {
                    // lint: alloc: per-thread output accumulator; push is amortized O(1)
                    local.pairs.push((i, j));
                }
            }
        },
    );
    let pairs: Vec<(Id, Id)> = locals
        .iter()
        .flat_map(|l| l.pairs.iter().copied())
        .collect();
    nwhy_obs::add(Counter::SlineQueuePushes, queue.len() as u64);
    // A full drain claims exactly ceil(len / chunk) chunks.
    nwhy_obs::add(
        Counter::SlineQueueSteals,
        queue.len().div_ceil(q.chunk_size()) as u64,
    );
    KernelStats::flush_all(locals.iter().map(|l| &l.stats), pairs.len());
    canonicalize(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjoin::AdjoinGraph;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;

    #[test]
    fn matches_fixture_on_biadjacency() {
        let h = paper_hypergraph();
        let queue: Vec<Id> = (0..4).collect();
        for s in 1..=4 {
            assert_eq!(
                queue_hashmap(&h, &queue, s, Strategy::AUTO),
                paper_slinegraph_edges(s),
                "s={s}"
            );
        }
    }

    #[test]
    fn queue_order_is_irrelevant() {
        let h = paper_hypergraph();
        let shuffled: Vec<Id> = vec![2, 0, 3, 1];
        assert_eq!(
            queue_hashmap(&h, &shuffled, 2, Strategy::AUTO),
            paper_slinegraph_edges(2)
        );
    }

    #[test]
    fn runs_directly_on_adjoin_graph() {
        // the paper's headline versatility claim: same algorithm, single
        // shared index set, no remapping
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        let queue: Vec<Id> = (0..crate::ids::from_usize(a.num_hyperedges())).collect();
        for s in 1..=4 {
            assert_eq!(
                queue_hashmap(&a, &queue, s, Strategy::AUTO),
                paper_slinegraph_edges(s),
                "adjoin s={s}"
            );
        }
    }

    #[test]
    fn partial_queue_restricts_pairs() {
        // only enqueue hyperedges {1, 2, 3}: pairs involving 0 must not
        // appear even though 0 s-overlaps others
        let h = paper_hypergraph();
        let queue: Vec<Id> = vec![1, 2, 3];
        let got = queue_hashmap(&h, &queue, 1, Strategy::AUTO);
        assert_eq!(got, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_queue_gives_empty_graph() {
        let h = paper_hypergraph();
        assert!(queue_hashmap(&h, &[], 1, Strategy::AUTO).is_empty());
    }

    #[test]
    fn dynamic_variant_matches_static() {
        let h = paper_hypergraph();
        let queue: Vec<Id> = (0..4).collect();
        for s in 1..=4 {
            assert_eq!(
                queue_hashmap_dynamic(&h, &queue, s),
                queue_hashmap(&h, &queue, s, Strategy::AUTO),
                "s={s}"
            );
        }
        // and on the adjoin representation
        let a = AdjoinGraph::from_hypergraph(&h);
        assert_eq!(
            queue_hashmap_dynamic(&a, &queue, 2),
            paper_slinegraph_edges(2)
        );
    }

    #[test]
    fn cyclic_strategy_on_queue() {
        let h = Hypergraph::from_memberships(&[vec![0, 1, 2], vec![1, 2], vec![2, 3], vec![0, 3]]);
        let queue: Vec<Id> = (0..4).collect();
        assert_eq!(
            queue_hashmap(&h, &queue, 1, Strategy::Cyclic { num_bins: 3 }),
            queue_hashmap(&h, &queue, 1, Strategy::AUTO)
        );
    }
}
