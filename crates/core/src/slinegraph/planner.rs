//! The kernel planner — picks a whole s-line construction algorithm per
//! input from cheap structural features, using a cost model calibrated
//! against the `nwhy-obs` kernel counters (ROADMAP item 4b).
//!
//! # Features
//!
//! One `O(n_e + n_v)` pass over the row lengths yields:
//!
//! - `W = Σ_v C(d_v, 2)` — the candidate traversal work every
//!   indirection-based kernel performs. This is *exactly* the
//!   `sline.hashmap_insertions` counter a hashmap build reports at
//!   `s = 1` (each co-incidence of a node of degree `d` is one
//!   `overlap_count[j] += 1`), which is how the model stays calibrated:
//!   the obs-counter fixture tests pin the identity.
//! - `P̂ = min(W, C(n_e, 2))` — an upper bound on the *distinct*
//!   candidate pairs that survive stamp dedup (the
//!   `sline.pairs_examined` counter of the dedup'ing kernels).
//! - mean/max edge size and the edge-size skew `max/mean`.
//!
//! # Cost model (units ≈ one element comparison / hash op)
//!
//! ```text
//! naive         C(n_e,2) · (1 + min(2·d̄, 2s+2))     every pair, merge scan
//! hashmap       W·κ_hash + P̂                         κ_hash ≈ 4 per insertion
//! intersection  W·κ_stamp + P̂·ĉ                      κ_stamp = 1 stamp probe
//!               ĉ = min(2·d̄, 2s + d̄/8 + 4)          adaptive overlap engine
//! ```
//!
//! `ĉ` reflects the overlap engine: merge scans cost up to `2·d̄`, but
//! dense rows probe `~d̄/8` word groups and every path short-circuits
//! around `2s` — the planner credits the intersection kernel with the
//! cheaper of the two. When the edge-size skew exceeds
//! [`QUEUE_SKEW_THRESHOLD`] on a non-tiny input, the winning kernel is
//! promoted to its queue-based variant (paper Algorithms 1–2), whose
//! flat work lists rebalance the skewed rows across workers.
//!
//! The model only needs to *rank* kernels, not predict wall-clock; ties
//! are broken toward the counting kernel (the paper's all-round
//! default). [`plan`] bumps the `planner.kernel_chosen` counter so
//! `--kernel auto` runs are visible in `BENCH_*.json`.

use super::{Algorithm, HyperAdjacency};
use crate::ids;
use nwhy_obs::Counter;

/// Hash-probe cost per counting insertion, in comparison units.
const HASH_COST: f64 = 4.0;

/// Inputs with at most this many hyperedges may pick the naive kernel
/// (its all-pairs loop is cache-friendly and allocation-free, but only
/// competitive when `C(n_e, 2)` is trivial).
pub const NAIVE_MAX_EDGES: usize = 256;

/// Edge-size skew (`max/mean`) beyond which the winner is promoted to
/// its queue-based variant for load balance, when the input is larger
/// than [`QUEUE_MIN_EDGES`].
pub const QUEUE_SKEW_THRESHOLD: f64 = 8.0;

/// Queue promotion floor: below this many hyperedges the flat pair
/// queue's extra materialization cannot pay for itself.
pub const QUEUE_MIN_EDGES: usize = 2048;

/// Structural features of one (hypergraph, s) planning instance.
#[derive(Debug, Clone, Copy)]
pub struct InputFeatures {
    /// Hyperedge count `n_e`.
    pub num_hyperedges: usize,
    /// Hypernode count `n_v`.
    pub num_hypernodes: usize,
    /// Mean hyperedge size `d̄` (0 for an empty input).
    pub mean_edge_size: f64,
    /// Largest hyperedge size.
    pub max_edge_size: usize,
    /// `W = Σ_v C(d_v, 2)` — candidate traversal work (the hashmap
    /// kernel's insertion count at `s = 1`).
    pub candidate_work: f64,
    /// `P̂ = min(W, C(n_e, 2))` — distinct-candidate-pair bound.
    pub distinct_pairs: f64,
    /// The overlap threshold being planned for.
    pub s: usize,
}

impl InputFeatures {
    /// Edge-size skew `max/mean` (1 for uniform inputs, 0 for empty).
    pub fn edge_skew(&self) -> f64 {
        if self.mean_edge_size > 0.0 {
            self.max_edge_size as f64 / self.mean_edge_size // lint: max_edge_size is a count
        } else {
            0.0
        }
    }
}

/// One planning decision: the chosen kernel, its predicted cost, and the
/// features it was derived from.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    /// The kernel [`plan`] selected.
    pub algorithm: Algorithm,
    /// Model cost of the selected kernel (comparison units).
    pub predicted_cost: f64,
    /// The measured features behind the decision.
    pub features: InputFeatures,
}

/// Measures the planner features in one pass over the row lengths.
pub fn measure<A: HyperAdjacency + ?Sized>(h: &A, s: usize) -> InputFeatures {
    let _span = nwhy_obs::span("sline.planner.measure");
    let ne = h.num_hyperedges();
    let nv = h.num_hypernodes();
    let mut total_size = 0usize;
    let mut max_edge_size = 0usize;
    for e in 0..ne {
        let d = h.edge_degree(ids::from_usize(e));
        total_size += d;
        max_edge_size = max_edge_size.max(d);
    }
    let mut candidate_work = 0.0f64;
    for i in 0..nv {
        let d = h.node_degree(h.node_id(i)) as f64;
        candidate_work += d * (d - 1.0) / 2.0;
    }
    let ne_f = ne as f64;
    let all_pairs = ne_f * (ne_f - 1.0) / 2.0;
    InputFeatures {
        num_hyperedges: ne,
        num_hypernodes: nv,
        mean_edge_size: if ne == 0 {
            0.0
        } else {
            total_size as f64 / ne_f // lint: count, not an ID
        },
        max_edge_size,
        candidate_work,
        distinct_pairs: candidate_work.min(all_pairs),
        s,
    }
}

/// The pure decision function: ranks the candidate kernels under the
/// cost model and applies the queue promotion. Deterministic in the
/// features alone, so it is directly unit-testable.
pub fn choose(f: &InputFeatures) -> (Algorithm, f64) {
    let ne = f.num_hyperedges as f64;
    let all_pairs = ne * (ne - 1.0) / 2.0;
    let d_mean = f.mean_edge_size;
    let s = f.s as f64;
    let merge_cost = 2.0 * d_mean;
    let adaptive_cost = merge_cost.min(2.0 * s + d_mean / 8.0 + 4.0);

    let naive = all_pairs * (1.0 + merge_cost.min(2.0 * s + 2.0));
    let hashmap = f.candidate_work * HASH_COST + f.distinct_pairs;
    let intersection = f.candidate_work + f.distinct_pairs * adaptive_cost;

    // ties break toward the counting kernel (the paper's default); the
    // naive kernel is only admissible on tiny inputs
    let mut best = (Algorithm::Hashmap, hashmap);
    if intersection < best.1 {
        best = (Algorithm::Intersection, intersection);
    }
    if f.num_hyperedges <= NAIVE_MAX_EDGES && naive < best.1 {
        best = (Algorithm::Naive, naive);
    }

    // skewed, non-tiny inputs: promote to the flat-work-list variant
    if f.num_hyperedges >= QUEUE_MIN_EDGES && f.edge_skew() >= QUEUE_SKEW_THRESHOLD {
        best.0 = match best.0 {
            Algorithm::Hashmap => Algorithm::QueueHashmap,
            Algorithm::Intersection => Algorithm::QueueIntersection,
            other => other,
        };
    }
    best
}

/// Measures `h`, picks a kernel, and records the decision on the
/// `planner.kernel_chosen` counter. This is what
/// [`SLineBuilder::auto`](super::SLineBuilder::auto) and the CLI's
/// `--kernel auto` call.
pub fn plan<A: HyperAdjacency + ?Sized>(h: &A, s: usize) -> Plan {
    let features = measure(h, s);
    let (algorithm, predicted_cost) = choose(&features);
    nwhy_obs::incr(Counter::PlannerKernelChosen);
    Plan {
        algorithm,
        predicted_cost,
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;
    use crate::hypergraph::Hypergraph;
    use crate::Id;

    #[test]
    fn features_on_paper_fixture() {
        // paper fixture (Fig. 1 stand-in): 4 hyperedges, 9 hypernodes,
        // sizes [4,4,5,5] ⇒ d̄ = 4.5; node degrees [2,1,2,3,2,3,2,1,2]
        // ⇒ W = Σ C(d,2) = 1+0+1+3+1+3+1+0+1 = 11
        let h = paper_hypergraph();
        let f = measure(&h, 1);
        assert_eq!(f.num_hyperedges, 4);
        assert_eq!(f.num_hypernodes, 9);
        assert_eq!(f.candidate_work, 11.0);
        assert_eq!(f.distinct_pairs, 6.0, "min(W=11, C(4,2)=6)");
        assert_eq!(f.mean_edge_size, 4.5);
        assert_eq!(f.max_edge_size, 5);
    }

    #[test]
    fn tiny_input_picks_naive_or_counting_only() {
        let h = paper_hypergraph();
        let (algo, cost) = choose(&measure(&h, 2));
        assert!(cost.is_finite() && cost >= 0.0);
        assert!(
            matches!(
                algo,
                Algorithm::Naive | Algorithm::Hashmap | Algorithm::Intersection
            ),
            "tiny inputs never take a queue variant, got {algo:?}"
        );
    }

    #[test]
    fn empty_input_is_well_defined() {
        let h = Hypergraph::from_memberships(&[]);
        let p = plan(&h, 1);
        assert!(p.predicted_cost >= 0.0);
        assert_eq!(p.features.num_hyperedges, 0);
    }

    #[test]
    fn skewed_large_input_promotes_to_queue_variant() {
        let mut f = InputFeatures {
            num_hyperedges: 10_000,
            num_hypernodes: 10_000,
            mean_edge_size: 4.0,
            max_edge_size: 400,
            candidate_work: 1.0e6,
            distinct_pairs: 5.0e5,
            s: 2,
        };
        let (algo, _) = choose(&f);
        assert!(
            matches!(algo, Algorithm::QueueHashmap | Algorithm::QueueIntersection),
            "skew {} must promote, got {algo:?}",
            f.edge_skew()
        );
        // same shape without the skew stays non-queued
        f.max_edge_size = 8;
        let (algo, _) = choose(&f);
        assert!(
            matches!(algo, Algorithm::Hashmap | Algorithm::Intersection),
            "uniform input must not promote, got {algo:?}"
        );
    }

    #[test]
    fn high_dedup_inputs_prefer_intersection_over_hashmap() {
        // W ≫ P̂: every candidate pair is re-encountered many times, so
        // paying κ_hash per encounter loses to stamp-dedup + one overlap
        let f = InputFeatures {
            num_hyperedges: 5_000,
            num_hypernodes: 500,
            mean_edge_size: 30.0,
            max_edge_size: 40,
            candidate_work: 5.0e7,
            distinct_pairs: 1.0e6,
            s: 2,
        };
        let (algo, _) = choose(&f);
        assert_eq!(algo, Algorithm::Intersection);
    }

    #[test]
    fn planner_choice_never_changes_results() {
        // the contract the proptests pin at scale: spot-check here
        let h = Hypergraph::from_memberships(&[
            (0..40).collect::<Vec<Id>>(),
            (0..8).collect(),
            vec![0, 50],
            vec![1, 2, 3],
        ]);
        for s in 1..=3 {
            let auto = super::super::builder::SLineBuilder::new(&h)
                .s(s)
                .auto()
                .edges();
            let naive = super::super::naive::naive(&h, s, nwhy_util::partition::Strategy::AUTO);
            assert_eq!(auto, naive, "s={s}");
        }
    }
}
