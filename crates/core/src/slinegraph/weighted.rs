//! Weighted s-line graphs: edges carry the exact overlap size `|e ∩ f|`.
//!
//! Aksoy et al.'s s-walk framework (the basis of NWHy's s-metrics) weighs
//! line-graph edges by the strength of the connection — Figure 5 of the
//! paper draws exactly this, rendering edge width as overlap size. The
//! construction is the hashmap-counting algorithm keeping its counts
//! instead of discarding them after thresholding, so the cost matches the
//! unweighted build.

use super::stats::KernelStats;
use super::{meets, HyperAdjacency};
use crate::ids::Overlap;
use crate::{ids, Id};
use nwhy_util::fxhash::FxHashMap;
use nwhy_util::partition::{par_for_each_index_with, Strategy};

/// Canonical weighted pair list: `(e, f, |e ∩ f|)` with `e < f`, sorted,
/// overlap ≥ s.
pub fn slinegraph_weighted_edges<A: HyperAdjacency + ?Sized>(
    h: &A,
    s: usize,
    strategy: Strategy,
) -> Vec<(Id, Id, Overlap)> {
    assert!(s >= 1, "s must be at least 1");
    let ne = h.num_hyperedges();
    struct Local {
        triples: Vec<(Id, Id, Overlap)>,
        counts: FxHashMap<Id, Overlap>,
        stats: KernelStats,
    }
    let locals = par_for_each_index_with(
        ne,
        strategy,
        || Local {
            triples: Vec::new(),
            counts: FxHashMap::default(),
            stats: KernelStats::default(),
        },
        |local, i| {
            let i = ids::from_usize(i);
            let nbrs_i = h.edge_neighbors(i);
            if nbrs_i.len() < s {
                local.stats.pairs_skipped(ne as u64 - 1 - i as u64);
                return;
            }
            local.counts.clear();
            for &v in nbrs_i.iter() {
                for &raw in h.node_neighbors(v).iter() {
                    let j = h.edge_id(raw);
                    if j > i {
                        local.stats.hashmap_insertion();
                        *local.counts.entry(j).or_insert(0) += 1;
                    }
                }
            }
            local.stats.pairs_examined_n(local.counts.len() as u64);
            for (&j, &n) in &local.counts {
                if meets(n, s) {
                    local.triples.push((i, j, n));
                }
            }
        },
    );
    let mut triples: Vec<(Id, Id, Overlap)> = locals
        .iter()
        .flat_map(|l| l.triples.iter().copied())
        .collect();
    KernelStats::flush_all(locals.iter().map(|l| &l.stats), triples.len());
    triples.sort_unstable();
    triples.dedup();
    triples
}

/// Assembles the symmetric weighted CSR (edge weight `1 / overlap`) from
/// already-built canonical triples.
// lint: obs: CSR assembly under the builder's `sline.weighted` span
pub(crate) fn weighted_csr_from_triples(
    num_hyperedges: usize,
    triples: &[(Id, Id, Overlap)],
) -> nwgraph::Csr {
    let mut edges = Vec::with_capacity(triples.len() * 2);
    let mut weights = Vec::with_capacity(triples.len() * 2);
    for &(e, f, o) in triples {
        let w = 1.0 / o as f64;
        edges.push((e, f));
        weights.push(w);
        edges.push((f, e));
        weights.push(w);
    }
    let el = nwgraph::EdgeList::from_weighted_edges(num_hyperedges, edges, weights);
    nwgraph::Csr::from_edge_list(&el)
}

/// Builds the symmetric weighted CSR over hyperedge IDs, with edge weight
/// `1 / |e ∩ f|` — stronger overlaps are "shorter", so weighted s-walk
/// distances prefer strong connections.
pub fn slinegraph_weighted_csr<A: HyperAdjacency + ?Sized>(
    h: &A,
    s: usize,
    strategy: Strategy,
) -> nwgraph::Csr {
    let triples = slinegraph_weighted_edges(h, s, strategy);
    weighted_csr_from_triples(h.num_hyperedges(), &triples)
}

/// Canonical Jaccard-weighted pairs: `(e, f, |e∩f| / |e∪f|)` for pairs
/// with overlap ≥ s. The normalized similarity HyperNetX-style workflows
/// use when raw overlap sizes are biased by hyperedge size.
pub fn slinegraph_jaccard_edges<A: HyperAdjacency + ?Sized>(
    h: &A,
    s: usize,
    strategy: Strategy,
) -> Vec<(Id, Id, f64)> {
    slinegraph_weighted_edges(h, s, strategy)
        .into_iter()
        .map(|(a, b, o)| {
            // lint: Overlap is a count, not an ID — widen it for the union size
            let union = h.edge_degree(a) + h.edge_degree(b) - o as usize;
            let j = if union == 0 {
                0.0
            } else {
                o as f64 / union as f64
            };
            (a, b, j)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;

    #[test]
    fn weights_are_exact_overlaps() {
        let h = paper_hypergraph();
        let triples = slinegraph_weighted_edges(&h, 1, Strategy::AUTO);
        // fixture overlap table (see fixtures.rs)
        assert_eq!(
            triples,
            vec![(0, 1, 1), (0, 3, 3), (1, 2, 3), (1, 3, 2), (2, 3, 2)]
        );
    }

    #[test]
    fn thresholding_matches_unweighted() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            let triples = slinegraph_weighted_edges(&h, s, Strategy::AUTO);
            let pairs: Vec<(u32, u32)> = triples.iter().map(|&(a, b, _)| (a, b)).collect();
            assert_eq!(pairs, paper_slinegraph_edges(s), "s={s}");
            assert!(triples.iter().all(|&(_, _, o)| o as usize >= s));
        }
    }

    #[test]
    fn weighted_csr_inverts_overlap() {
        let h = paper_hypergraph();
        let g = slinegraph_weighted_csr(&h, 1, Strategy::AUTO);
        assert!(g.is_weighted());
        // edge {0,3} has overlap 3 → weight 1/3
        let w = g
            .weighted_neighbors(0)
            .find(|&(t, _)| t == 3)
            .map(|(_, w)| w)
            .unwrap();
        assert!((w - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn strategies_agree() {
        let h = paper_hypergraph();
        let a = slinegraph_weighted_edges(&h, 2, Strategy::Blocked { num_bins: 2 });
        let b = slinegraph_weighted_edges(&h, 2, Strategy::Cyclic { num_bins: 3 });
        assert_eq!(a, b);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_memberships(&[]);
        assert!(slinegraph_weighted_edges(&h, 1, Strategy::AUTO).is_empty());
    }

    #[test]
    fn jaccard_values_are_exact() {
        let h = paper_hypergraph();
        let j = slinegraph_jaccard_edges(&h, 1, Strategy::AUTO);
        // |e0|=4, |e1|=4, overlap 1 → 1/7; |e0|=4, |e3|=5, overlap 3 → 3/6
        let find = |a: u32, b: u32| j.iter().find(|&&(x, y, _)| (x, y) == (a, b)).unwrap().2;
        assert!((find(0, 1) - 1.0 / 7.0).abs() < 1e-12);
        assert!((find(0, 3) - 0.5).abs() < 1e-12);
        // identical edges would give 1.0
        let dup = Hypergraph::from_memberships(&[vec![0, 1], vec![0, 1]]);
        let j = slinegraph_jaccard_edges(&dup, 1, Strategy::AUTO);
        assert_eq!(j, vec![(0, 1, 1.0)]);
    }

    #[test]
    fn jaccard_in_unit_interval() {
        let h = paper_hypergraph();
        for (_, _, j) in slinegraph_jaccard_edges(&h, 1, Strategy::AUTO) {
            assert!((0.0..=1.0).contains(&j));
        }
    }
}
