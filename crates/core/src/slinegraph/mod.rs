//! s-line graph construction (§III-B.4, §III-C.3).
//!
//! The s-line graph `L_s(H)` has the hyperedges of `H` as vertices and an
//! edge `{e, f}` whenever `|e ∩ f| ≥ s`. Six construction algorithms are
//! implemented, all producing identical canonical edge sets:
//!
//! | module | algorithm | paper source |
//! |---|---|---|
//! | [`naive`] | all-pairs set intersection | baseline |
//! | [`intersection`] | heuristic candidate + short-circuit intersection | Liu et al., HiPC 2021 \[17\] |
//! | [`hashmap`] | per-hyperedge overlap counting | Liu et al., IPDPS 2022 \[18\] |
//! | [`ensemble`] | all requested `s` in one counting pass | \[18\] |
//! | [`queue_single`] | **Algorithm 1**: work-queue + hashmap counting | this paper |
//! | [`queue_two_phase`] | **Algorithm 2**: pair queue + set intersection | this paper |
//! | [`pair_sort`] | pair enumeration + parallel sort | completeness (memory-heavy alternative) |
//!
//! The non-queue algorithms iterate hyperedge IDs `0..n_e` and therefore
//! assume the two-index-set bi-adjacency; the queue-based ones take an
//! explicit work queue of hyperedge IDs and run unchanged on *any*
//! representation exposing the bipartite indirection — including the
//! adjoin graph and relabeled ID spaces. That representation-independence
//! is captured by the [`HyperAdjacency`] trait.

pub mod ensemble;
pub mod hashmap;
pub mod intersection;
pub mod naive;
pub mod pair_sort;
pub mod queue_single;
pub mod queue_two_phase;
pub mod weighted;

use crate::adjoin::AdjoinGraph;
use crate::hypergraph::Hypergraph;
use crate::Id;
use nwgraph::{Csr, EdgeList};
use nwhy_util::partition::Strategy;

/// The bipartite indirection every s-line construction needs: hyperedge →
/// incident hypernodes → incident hyperedges. Implemented by both the
/// bi-adjacency [`Hypergraph`] (two index sets) and the [`AdjoinGraph`]
/// (one shared index set), which is exactly the versatility the paper's
/// queue-based algorithms are designed for.
pub trait HyperAdjacency: Sync {
    /// Number of hyperedges.
    fn num_hyperedges(&self) -> usize;
    /// Hypernodes incident to hyperedge `e`, sorted. The hypernode ID
    /// space is representation-defined (shifted for adjoin graphs) but
    /// consistent between the two methods.
    fn edge_neighbors(&self, e: Id) -> &[Id];
    /// Hyperedges incident to hypernode `v` (in the same hypernode ID
    /// space as [`HyperAdjacency::edge_neighbors`]), sorted.
    fn node_neighbors(&self, v: Id) -> &[Id];

    /// Size of hyperedge `e`.
    #[inline]
    fn edge_degree(&self, e: Id) -> usize {
        self.edge_neighbors(e).len()
    }
}

impl HyperAdjacency for Hypergraph {
    #[inline]
    fn num_hyperedges(&self) -> usize {
        Hypergraph::num_hyperedges(self)
    }
    #[inline]
    fn edge_neighbors(&self, e: Id) -> &[Id] {
        self.edge_members(e)
    }
    #[inline]
    fn node_neighbors(&self, v: Id) -> &[Id] {
        self.node_memberships(v)
    }
}

impl HyperAdjacency for AdjoinGraph {
    #[inline]
    fn num_hyperedges(&self) -> usize {
        AdjoinGraph::num_hyperedges(self)
    }
    #[inline]
    fn edge_neighbors(&self, e: Id) -> &[Id] {
        self.graph().neighbors(e)
    }
    #[inline]
    fn node_neighbors(&self, v: Id) -> &[Id] {
        self.graph().neighbors(v)
    }
}

/// Which construction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// All-pairs intersection (quadratic baseline).
    Naive,
    /// Heuristic set-intersection (HiPC 2021).
    Intersection,
    /// Hashmap overlap counting (IPDPS 2022).
    Hashmap,
    /// Paper Algorithm 1: single-phase queue + hashmap.
    QueueHashmap,
    /// Paper Algorithm 2: two-phase queue + set intersection.
    QueueIntersection,
    /// Pair-enumeration + parallel sort (memory-heavy alternative).
    PairSort,
}

impl Algorithm {
    /// All algorithm variants, for sweeps.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Naive,
        Algorithm::Intersection,
        Algorithm::Hashmap,
        Algorithm::QueueHashmap,
        Algorithm::QueueIntersection,
        Algorithm::PairSort,
    ];

    /// Short display name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Naive => "naive",
            Algorithm::Intersection => "intersection",
            Algorithm::Hashmap => "hashmap",
            Algorithm::QueueHashmap => "queue-hashmap(alg1)",
            Algorithm::QueueIntersection => "queue-intersection(alg2)",
            Algorithm::PairSort => "pair-sort",
        }
    }
}

/// Degree-based ID relabeling applied before construction (§III-D / Fig. 9
/// sweep "blocked/cyclic × relabel asc/desc").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Relabel {
    /// Keep original IDs.
    #[default]
    None,
    /// Low-degree hyperedges first.
    Ascending,
    /// High-degree hyperedges first.
    Descending,
}

/// Construction tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Work-partitioning strategy for the parallel loops.
    pub strategy: Strategy,
    /// Degree relabeling of hyperedge IDs.
    pub relabel: Relabel,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::AUTO,
            relabel: Relabel::None,
        }
    }
}

/// Canonicalizes an undirected pair list: orders each pair `(min, max)`,
/// sorts, and deduplicates. All algorithms funnel through this so their
/// outputs are directly comparable.
pub fn canonicalize(mut pairs: Vec<(Id, Id)>) -> Vec<(Id, Id)> {
    for p in pairs.iter_mut() {
        if p.0 > p.1 {
            *p = (p.1, p.0);
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Computes the canonical s-line edge set of `h` with the chosen
/// algorithm. Results are in *original* hyperedge IDs even when
/// `opts.relabel` permutes the working IDs internally.
///
/// # Examples
///
/// ```
/// use nwhy_core::{slinegraph_edges, Algorithm, BuildOptions, Hypergraph};
///
/// let h = Hypergraph::from_memberships(&[
///     vec![0, 1, 2],
///     vec![1, 2, 3],  // shares {1,2} with e0
///     vec![3, 4],     // shares {3} with e1
/// ]);
/// let opts = BuildOptions::default();
/// assert_eq!(
///     slinegraph_edges(&h, 1, Algorithm::Hashmap, &opts),
///     vec![(0, 1), (1, 2)]
/// );
/// // s = 2 keeps only the strong overlap
/// assert_eq!(
///     slinegraph_edges(&h, 2, Algorithm::QueueHashmap, &opts),
///     vec![(0, 1)]
/// );
/// ```
///
/// # Panics
/// Panics if `s == 0`.
pub fn slinegraph_edges(
    h: &Hypergraph,
    s: usize,
    algo: Algorithm,
    opts: &BuildOptions,
) -> Vec<(Id, Id)> {
    assert!(s >= 1, "s must be at least 1");
    match opts.relabel {
        Relabel::None => dispatch(h, s, algo, opts.strategy),
        dir => {
            // Relabel hyperedges by degree, construct on permuted IDs,
            // then map the result pairs back to original IDs.
            let degrees: Vec<usize> =
                (0..h.num_hyperedges() as Id).map(|e| h.edge_degree(e)).collect();
            let nw_dir = match dir {
                Relabel::Ascending => nwgraph::Direction::Ascending,
                Relabel::Descending => nwgraph::Direction::Descending,
                Relabel::None => unreachable!(),
            };
            let perm = nwgraph::degree_permutation(&degrees, nw_dir);
            let memberships: Vec<Vec<Id>> = perm
                .iter()
                .map(|&old| h.edge_members(old).to_vec())
                .collect();
            let bel = crate::biedgelist::BiEdgeList::from_incidences(
                h.num_hyperedges(),
                h.num_hypernodes(),
                memberships
                    .iter()
                    .enumerate()
                    .flat_map(|(e, vs)| vs.iter().map(move |&v| (e as Id, v)))
                    .collect(),
            );
            let hp = Hypergraph::from_biedgelist(&bel);
            let pairs = dispatch(&hp, s, algo, opts.strategy);
            canonicalize(
                pairs
                    .into_iter()
                    .map(|(a, b)| (perm[a as usize], perm[b as usize]))
                    .collect(),
            )
        }
    }
}

fn dispatch(h: &Hypergraph, s: usize, algo: Algorithm, strategy: Strategy) -> Vec<(Id, Id)> {
    match algo {
        Algorithm::Naive => naive::naive(h, s, strategy),
        Algorithm::Intersection => intersection::intersection(h, s, strategy),
        Algorithm::Hashmap => hashmap::hashmap(h, s, strategy),
        Algorithm::QueueHashmap => {
            let queue: Vec<Id> = (0..h.num_hyperedges() as Id).collect();
            queue_single::queue_hashmap(h, &queue, s, strategy)
        }
        Algorithm::QueueIntersection => {
            let queue: Vec<Id> = (0..h.num_hyperedges() as Id).collect();
            queue_two_phase::queue_intersection(h, &queue, s, strategy)
        }
        Algorithm::PairSort => pair_sort::pair_sort(h, s),
    }
}

/// Builds the s-line graph as a symmetric [`Csr`] over hyperedge IDs —
/// ready for the plain-graph algorithms (`Listing 2`'s
/// `adjacency<0> slinegraph(slinegraph_els)`).
pub fn slinegraph_csr(h: &Hypergraph, s: usize, algo: Algorithm, opts: &BuildOptions) -> Csr {
    let pairs = slinegraph_edges(h, s, algo, opts);
    let mut el = EdgeList::from_edges(h.num_hyperedges(), pairs);
    el.symmetrize();
    Csr::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::Strategy; // disambiguate from proptest's Strategy trait
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use proptest::prelude::*;
    use proptest::strategy::Strategy as _;

    #[test]
    fn canonicalize_orders_and_dedups() {
        let pairs = vec![(3, 1), (1, 3), (0, 2), (2, 0), (1, 3)];
        assert_eq!(canonicalize(pairs), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn all_algorithms_match_fixture_expectations() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            let want = paper_slinegraph_edges(s);
            for algo in Algorithm::ALL {
                let got = slinegraph_edges(&h, s, algo, &BuildOptions::default());
                assert_eq!(got, want, "{} at s={s}", algo.name());
            }
        }
    }

    #[test]
    fn relabel_variants_produce_identical_results() {
        let h = paper_hypergraph();
        for s in 1..=3 {
            let want = paper_slinegraph_edges(s);
            for relabel in [Relabel::Ascending, Relabel::Descending] {
                for algo in Algorithm::ALL {
                    let opts = BuildOptions {
                        relabel,
                        ..Default::default()
                    };
                    let got = slinegraph_edges(&h, s, algo, &opts);
                    assert_eq!(got, want, "{} s={s} {relabel:?}", algo.name());
                }
            }
        }
    }

    #[test]
    fn strategies_produce_identical_results() {
        let h = paper_hypergraph();
        for strategy in [
            Strategy::AUTO,
            Strategy::Blocked { num_bins: 2 },
            Strategy::Cyclic { num_bins: 3 },
        ] {
            for algo in Algorithm::ALL {
                let opts = BuildOptions {
                    strategy,
                    ..Default::default()
                };
                assert_eq!(
                    slinegraph_edges(&h, 2, algo, &opts),
                    paper_slinegraph_edges(2),
                    "{} {strategy:?}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn s_zero_rejected() {
        let h = paper_hypergraph();
        slinegraph_edges(&h, 0, Algorithm::Hashmap, &BuildOptions::default());
    }

    #[test]
    fn slinegraph_csr_is_symmetric() {
        let h = paper_hypergraph();
        let g = slinegraph_csr(&h, 2, Algorithm::Hashmap, &BuildOptions::default());
        assert!(g.is_symmetric());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2 * paper_slinegraph_edges(2).len());
    }

    #[test]
    fn s_larger_than_any_overlap_gives_empty() {
        let h = paper_hypergraph();
        for algo in Algorithm::ALL {
            assert!(slinegraph_edges(&h, 10, algo, &BuildOptions::default()).is_empty());
        }
    }

    #[test]
    fn empty_hypergraph_all_algorithms() {
        let h = Hypergraph::from_memberships(&[]);
        for algo in Algorithm::ALL {
            assert!(slinegraph_edges(&h, 1, algo, &BuildOptions::default()).is_empty());
        }
    }

    /// Random hypergraph strategy for cross-validation properties.
    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..20, 0..8),
            0..12,
        )
        .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_all_algorithms_agree(ms in arb_memberships(), s in 1usize..5) {
            let h = Hypergraph::from_memberships(&ms);
            let reference = slinegraph_edges(&h, s, Algorithm::Naive, &BuildOptions::default());
            for algo in [Algorithm::Intersection, Algorithm::Hashmap,
                         Algorithm::QueueHashmap, Algorithm::QueueIntersection] {
                let got = slinegraph_edges(&h, s, algo, &BuildOptions::default());
                prop_assert_eq!(&got, &reference, "{}", algo.name());
            }
        }

        #[test]
        fn prop_monotone_in_s(ms in arb_memberships()) {
            let h = Hypergraph::from_memberships(&ms);
            let mut prev = slinegraph_edges(&h, 1, Algorithm::Hashmap, &BuildOptions::default());
            for s in 2..6 {
                let cur = slinegraph_edges(&h, s, Algorithm::Hashmap, &BuildOptions::default());
                for e in &cur {
                    prop_assert!(prev.contains(e), "E_{} ⊄ E_{}", s, s - 1);
                }
                prev = cur;
            }
        }

        #[test]
        fn prop_slinegraph_definition(ms in arb_memberships(), s in 1usize..4) {
            // got edge {i,j} iff |members(i) ∩ members(j)| >= s
            let h = Hypergraph::from_memberships(&ms);
            let got = slinegraph_edges(&h, s, Algorithm::Hashmap, &BuildOptions::default());
            let ne = h.num_hyperedges() as u32;
            for i in 0..ne {
                for j in (i + 1)..ne {
                    let mi = h.edge_members(i);
                    let overlap = h.edge_members(j).iter().filter(|v| mi.contains(v)).count();
                    prop_assert_eq!(got.contains(&(i, j)), overlap >= s,
                        "pair ({},{}) overlap {}", i, j, overlap);
                }
            }
        }
    }
}
