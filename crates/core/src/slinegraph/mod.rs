//! s-line graph construction (§III-B.4, §III-C.3).
//!
//! The s-line graph `L_s(H)` has the hyperedges of `H` as vertices and an
//! edge `{e, f}` whenever `|e ∩ f| ≥ s`. Seven construction algorithms are
//! implemented, all producing identical canonical edge sets, plus a
//! weighted variant that keeps the exact overlap sizes:
//!
//! | module | algorithm | paper source |
//! |---|---|---|
//! | [`naive`] | all-pairs set intersection | baseline |
//! | [`intersection`] | heuristic candidate + short-circuit intersection | Liu et al., HiPC 2021 \[17\] |
//! | [`hashmap`] | per-hyperedge overlap counting | Liu et al., IPDPS 2022 \[18\] |
//! | [`ensemble`] | all requested `s` in one counting pass | \[18\] |
//! | [`queue_single`] | **Algorithm 1**: work-queue + hashmap counting | this paper |
//! | [`queue_two_phase`] | **Algorithm 2**: pair queue + set intersection | this paper |
//! | [`pair_sort`] | pair enumeration + parallel sort | completeness (memory-heavy alternative) |
//! | [`weighted`] | hashmap counting, keeping `\|e ∩ f\|` as edge weight | Fig. 5 / s-walk framework |
//!
//! Every algorithm is generic over [`HyperAdjacency`] — the bipartite
//! indirection trait defined in [`crate::repr`] — so the same code runs
//! on the bi-adjacency [`Hypergraph`], the [`AdjoinGraph`]
//! (single shared index set), the zero-copy dual view, and degree-relabeled
//! ID spaces. The fluent [`SLineBuilder`] is the single entry point that
//! wires representation, algorithm, partitioning strategy, and relabeling
//! together.
//!
//! [`Hypergraph`]: crate::hypergraph::Hypergraph
//! [`AdjoinGraph`]: crate::adjoin::AdjoinGraph

// The fluent builder is held to the pedantic `must_use_candidate` bar:
// every value-returning stage and terminal is annotated.
#[deny(clippy::must_use_candidate)]
pub mod builder;
pub mod ensemble;
pub mod hashmap;
pub mod intersection;
pub mod naive;
pub mod overlap;
pub mod pair_sort;
pub mod planner;
pub mod queue_single;
pub mod queue_two_phase;
pub(crate) mod stats;
pub mod weighted;

use crate::Id;
use nwhy_util::partition::Strategy;

pub use builder::SLineBuilder;
pub use overlap::{OverlapPath, OverlapPolicy};
// The trait lives in `crate::repr` since the representation-generic
// refactor; re-exported here for source compatibility.
pub use crate::repr::HyperAdjacency;

/// Which construction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// All-pairs intersection (quadratic baseline).
    Naive,
    /// Heuristic set-intersection (HiPC 2021).
    Intersection,
    /// Hashmap overlap counting (IPDPS 2022).
    Hashmap,
    /// Paper Algorithm 1: single-phase queue + hashmap.
    QueueHashmap,
    /// Paper Algorithm 2: two-phase queue + set intersection.
    QueueIntersection,
    /// Pair-enumeration + parallel sort (memory-heavy alternative).
    PairSort,
}

impl Algorithm {
    /// All algorithm variants, for sweeps.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Naive,
        Algorithm::Intersection,
        Algorithm::Hashmap,
        Algorithm::QueueHashmap,
        Algorithm::QueueIntersection,
        Algorithm::PairSort,
    ];

    /// Short display name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Naive => "naive",
            Algorithm::Intersection => "intersection",
            Algorithm::Hashmap => "hashmap",
            Algorithm::QueueHashmap => "queue-hashmap(alg1)",
            Algorithm::QueueIntersection => "queue-intersection(alg2)",
            Algorithm::PairSort => "pair-sort",
        }
    }

    /// Stable span label used by the observability layer (`nwhy-obs`):
    /// dotted, with no parenthetical suffixes, so trace viewers group
    /// cleanly.
    pub fn span_name(&self) -> &'static str {
        match self {
            Algorithm::Naive => "sline.naive",
            Algorithm::Intersection => "sline.intersection",
            Algorithm::Hashmap => "sline.hashmap",
            Algorithm::QueueHashmap => "sline.queue_hashmap",
            Algorithm::QueueIntersection => "sline.queue_intersection",
            Algorithm::PairSort => "sline.pair_sort",
        }
    }
}

/// Degree-based ID relabeling applied before construction (§III-D / Fig. 9
/// sweep "blocked/cyclic × relabel asc/desc").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Relabel {
    /// Keep original IDs.
    #[default]
    None,
    /// Low-degree hyperedges first.
    Ascending,
    /// High-degree hyperedges first.
    Descending,
}

/// Construction tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Work-partitioning strategy for the parallel loops.
    pub strategy: Strategy,
    /// Degree relabeling of hyperedge IDs.
    pub relabel: Relabel,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::AUTO,
            relabel: Relabel::None,
        }
    }
}

/// Canonicalizes an undirected pair list: orders each pair `(min, max)`,
/// sorts, and deduplicates. All algorithms funnel through this so their
/// outputs are directly comparable.
// lint: obs: sort/dedup epilogue running inside every kernel's span
pub fn canonicalize(mut pairs: Vec<(Id, Id)>) -> Vec<(Id, Id)> {
    for p in pairs.iter_mut() {
        if p.0 > p.1 {
            *p = (p.1, p.0);
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// `true` when an overlap count `n` meets the threshold `s` — the one
/// audited widening of an [`Overlap`](crate::ids::Overlap) count, shared
/// by every counting kernel.
#[inline]
pub(crate) fn meets(n: crate::ids::Overlap, s: usize) -> bool {
    n as usize >= s // lint: Overlap is a count, not an ID
}

#[cfg(test)]
mod tests {
    use super::Strategy; // disambiguate from proptest's Strategy trait
    use super::*;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;
    use proptest::prelude::*;
    use proptest::strategy::Strategy as _;

    fn build(h: &Hypergraph, s: usize, algo: Algorithm) -> Vec<(Id, Id)> {
        SLineBuilder::new(h).s(s).algorithm(algo).edges()
    }

    #[test]
    fn canonicalize_orders_and_dedups() {
        let pairs = vec![(3, 1), (1, 3), (0, 2), (2, 0), (1, 3)];
        assert_eq!(canonicalize(pairs), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn all_algorithms_match_fixture_expectations() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            let want = paper_slinegraph_edges(s);
            for algo in Algorithm::ALL {
                assert_eq!(build(&h, s, algo), want, "{} at s={s}", algo.name());
            }
        }
    }

    #[test]
    fn relabel_variants_produce_identical_results() {
        let h = paper_hypergraph();
        for s in 1..=3 {
            let want = paper_slinegraph_edges(s);
            for relabel in [Relabel::Ascending, Relabel::Descending] {
                for algo in Algorithm::ALL {
                    let got = SLineBuilder::new(&h)
                        .s(s)
                        .algorithm(algo)
                        .relabel(relabel)
                        .edges();
                    assert_eq!(got, want, "{} s={s} {relabel:?}", algo.name());
                }
            }
        }
    }

    #[test]
    fn strategies_produce_identical_results() {
        let h = paper_hypergraph();
        for strategy in [
            Strategy::AUTO,
            Strategy::Blocked { num_bins: 2 },
            Strategy::Cyclic { num_bins: 3 },
        ] {
            for algo in Algorithm::ALL {
                assert_eq!(
                    SLineBuilder::new(&h)
                        .s(2)
                        .algorithm(algo)
                        .strategy(strategy)
                        .edges(),
                    paper_slinegraph_edges(2),
                    "{} {strategy:?}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn s_zero_rejected() {
        let h = paper_hypergraph();
        build(&h, 0, Algorithm::Hashmap);
    }

    #[test]
    fn slinegraph_csr_is_symmetric() {
        let h = paper_hypergraph();
        let g = SLineBuilder::new(&h).s(2).csr();
        assert!(g.is_symmetric());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2 * paper_slinegraph_edges(2).len());
    }

    #[test]
    fn s_larger_than_any_overlap_gives_empty() {
        let h = paper_hypergraph();
        for algo in Algorithm::ALL {
            assert!(build(&h, 10, algo).is_empty());
        }
    }

    #[test]
    fn empty_hypergraph_all_algorithms() {
        let h = Hypergraph::from_memberships(&[]);
        for algo in Algorithm::ALL {
            assert!(build(&h, 1, algo).is_empty());
        }
    }

    /// Random hypergraph strategy for cross-validation properties.
    fn arb_memberships() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Id>>> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..20, 0..8), 0..12)
            .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_all_algorithms_agree(ms in arb_memberships(), s in 1usize..5) {
            let h = Hypergraph::from_memberships(&ms);
            let reference = build(&h, s, Algorithm::Naive);
            for algo in [Algorithm::Intersection, Algorithm::Hashmap,
                         Algorithm::QueueHashmap, Algorithm::QueueIntersection,
                         Algorithm::PairSort] {
                let got = build(&h, s, algo);
                prop_assert_eq!(&got, &reference, "{}", algo.name());
            }
        }

        #[test]
        fn prop_overlap_paths_and_planner_agree(ms in arb_memberships(), s in 1usize..5) {
            // the forced gallop/bitset paths, the adaptive rule, and the
            // planner's auto choice must all be invisible in the results
            let h = Hypergraph::from_memberships(&ms);
            let reference = build(&h, s, Algorithm::Naive);
            for policy in [OverlapPolicy::Adaptive,
                           OverlapPolicy::Force(OverlapPath::Merge),
                           OverlapPolicy::Force(OverlapPath::Gallop),
                           OverlapPolicy::Force(OverlapPath::Bitset)] {
                let via_intersection =
                    intersection::intersection_with(&h, s, Strategy::AUTO, policy);
                prop_assert_eq!(&via_intersection, &reference, "intersection {}", policy.name());
                let queue: Vec<Id> = (0..crate::ids::from_usize(h.num_hyperedges())).collect();
                let via_queue = queue_two_phase::queue_intersection_with(
                    &h, &queue, s, Strategy::AUTO, policy);
                prop_assert_eq!(&via_queue, &reference, "queue {}", policy.name());
                let via_builder = SLineBuilder::new(&h)
                    .s(s)
                    .algorithm(Algorithm::Intersection)
                    .overlap(policy)
                    .edges();
                prop_assert_eq!(&via_builder, &reference, "builder {}", policy.name());
            }
            let auto = SLineBuilder::new(&h).s(s).auto().edges();
            prop_assert_eq!(&auto, &reference, "auto");
        }

        #[test]
        fn prop_monotone_in_s(ms in arb_memberships()) {
            let h = Hypergraph::from_memberships(&ms);
            let mut prev = build(&h, 1, Algorithm::Hashmap);
            for s in 2..6 {
                let cur = build(&h, s, Algorithm::Hashmap);
                for e in &cur {
                    prop_assert!(prev.contains(e), "E_{} ⊄ E_{}", s, s - 1);
                }
                prev = cur;
            }
        }

        #[test]
        fn prop_slinegraph_definition(ms in arb_memberships(), s in 1usize..4) {
            // got edge {i,j} iff |members(i) ∩ members(j)| >= s
            let h = Hypergraph::from_memberships(&ms);
            let got = build(&h, s, Algorithm::Hashmap);
            let ne = crate::ids::from_usize(h.num_hyperedges());
            for i in 0..ne {
                for j in (i + 1)..ne {
                    let mi = h.edge_members(i);
                    let overlap = h.edge_members(j).iter().filter(|v| mi.contains(v)).count();
                    prop_assert_eq!(got.contains(&(i, j)), overlap >= s,
                        "pair ({},{}) overlap {}", i, j, overlap);
                }
            }
        }

        #[test]
        fn prop_ensemble_matches_per_s_hashmap(ms in arb_memberships()) {
            // the ensemble's single shared counting pass must be
            // indistinguishable from independent per-s hashmap builds
            let h = Hypergraph::from_memberships(&ms);
            let svals = [3usize, 1, 4, 2, 3]; // unsorted, with a duplicate
            let got = SLineBuilder::new(&h).ensemble_edges(&svals);
            prop_assert_eq!(got.len(), svals.len());
            for (out, &s) in got.iter().zip(&svals) {
                let single = hashmap::hashmap(&h, s, Strategy::AUTO);
                prop_assert_eq!(out, &single, "s={}", s);
            }
        }
    }
}
