//! Worker-local kernel tallies for the s-line constructions.
//!
//! Every algorithm keeps a [`KernelStats`] inside its per-worker `Local`
//! state and bumps plain `u64` fields in the hot loops — no atomics per
//! item. The bumps are guarded by the `const fn` [`nwhy_obs::enabled`],
//! so a `--no-default-features` build folds all of this away and runs
//! the exact same loop bodies. After the parallel region, the merged
//! tallies are flushed to the global registry once per construction
//! call.

use super::overlap;
use crate::Id;
use nwgraph::algorithms::triangles::{
    sorted_intersection_at_least, sorted_intersection_at_least_counting,
};
use nwhy_obs::Counter;
use nwhy_util::bitmap::WordBitset;

/// Per-worker tallies for one s-line construction pass.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct KernelStats {
    pairs_examined: u64,
    pairs_skipped_degree: u64,
    hashmap_insertions: u64,
    intersection_comparisons: u64,
    queue_pushes: u64,
    overlap_merge: u64,
    overlap_gallop: u64,
    overlap_bitset: u64,
}

impl KernelStats {
    /// One candidate pair reached the per-pair work (counting or
    /// intersection), before any per-pair degree filter.
    #[inline]
    pub fn pair_examined(&mut self) {
        if nwhy_obs::enabled() {
            self.pairs_examined += 1;
        }
    }

    /// `n` candidate pairs reached the per-pair work at once (bulk form
    /// for the counting algorithms, where the distinct-candidate count
    /// is known per row).
    #[inline]
    pub fn pairs_examined_n(&mut self, n: u64) {
        if nwhy_obs::enabled() {
            self.pairs_examined += n;
        }
    }

    /// `n` pairs were skipped by a `degree < s` filter (an outer-row
    /// skip counts all pairs the row would have generated).
    #[inline]
    pub fn pairs_skipped(&mut self, n: u64) {
        if nwhy_obs::enabled() {
            self.pairs_skipped_degree += n;
        }
    }

    /// One `overlap_count[j] += 1` hashmap operation.
    #[inline]
    pub fn hashmap_insertion(&mut self) {
        if nwhy_obs::enabled() {
            self.hashmap_insertions += 1;
        }
    }

    /// `n` IDs were pushed onto a work queue.
    #[inline]
    pub fn queue_pushed(&mut self, n: u64) {
        if nwhy_obs::enabled() {
            self.queue_pushes += n;
        }
    }

    /// The short-circuiting sorted intersection, tallying element
    /// comparisons when observability is on (the disabled branch is the
    /// uninstrumented original — `enabled()` is `const`, so exactly one
    /// branch survives codegen).
    #[inline]
    pub fn intersect_at_least(&mut self, a: &[Id], b: &[Id], s: usize) -> bool {
        if nwhy_obs::enabled() {
            sorted_intersection_at_least_counting(a, b, s, &mut self.intersection_comparisons)
        } else {
            sorted_intersection_at_least(a, b, s)
        }
    }

    /// One pair routed to the merge-scan overlap path.
    #[inline]
    pub fn path_merge(&mut self) {
        if nwhy_obs::enabled() {
            self.overlap_merge += 1;
        }
    }

    /// One pair routed to the galloping overlap path.
    #[inline]
    pub fn path_gallop(&mut self) {
        if nwhy_obs::enabled() {
            self.overlap_gallop += 1;
        }
    }

    /// One pair routed to the bitset overlap path.
    #[inline]
    pub fn path_bitset(&mut self) {
        if nwhy_obs::enabled() {
            self.overlap_bitset += 1;
        }
    }

    /// The galloping intersection, tallying its search probes into the
    /// same comparison counter the merge scan uses. The disabled build
    /// counts into a dead local the optimizer drops.
    #[inline]
    pub fn gallop_at_least(&mut self, a: &[Id], b: &[Id], s: usize) -> bool {
        if nwhy_obs::enabled() {
            overlap::gallop_at_least(a, b, s, &mut self.intersection_comparisons)
        } else {
            let mut sink = 0u64;
            overlap::gallop_at_least(a, b, s, &mut sink)
        }
    }

    /// The bitset word-group probe, tallying one comparison per word
    /// group processed.
    #[inline]
    pub fn bitset_at_least(&mut self, bits: &WordBitset, probe: &[Id], s: usize) -> bool {
        if nwhy_obs::enabled() {
            overlap::bitset_overlap_at_least(bits, probe, s, &mut self.intersection_comparisons)
        } else {
            let mut sink = 0u64;
            overlap::bitset_overlap_at_least(bits, probe, s, &mut sink)
        }
    }

    /// Folds another worker's tallies into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.pairs_examined += other.pairs_examined;
        self.pairs_skipped_degree += other.pairs_skipped_degree;
        self.hashmap_insertions += other.hashmap_insertions;
        self.intersection_comparisons += other.intersection_comparisons;
        self.queue_pushes += other.queue_pushes;
        self.overlap_merge += other.overlap_merge;
        self.overlap_gallop += other.overlap_gallop;
        self.overlap_bitset += other.overlap_bitset;
    }

    /// Publishes the tallies to the global registry (plus the emitted
    /// pre-canonicalization edge count). One call per construction, so
    /// the atomic traffic is O(counters), not O(work).
    pub fn flush(&self, edges_emitted: usize) {
        if !nwhy_obs::enabled() {
            return;
        }
        nwhy_obs::add(Counter::SlinePairsExamined, self.pairs_examined);
        nwhy_obs::add(Counter::SlinePairsSkippedDegree, self.pairs_skipped_degree);
        nwhy_obs::add(Counter::SlineHashmapInsertions, self.hashmap_insertions);
        nwhy_obs::add(
            Counter::SlineIntersectionComparisons,
            self.intersection_comparisons,
        );
        nwhy_obs::add(Counter::SlineQueuePushes, self.queue_pushes);
        nwhy_obs::add(Counter::SlineEdgesEmitted, edges_emitted as u64);
        nwhy_obs::add(Counter::OverlapPathMerge, self.overlap_merge);
        nwhy_obs::add(Counter::OverlapPathGallop, self.overlap_gallop);
        nwhy_obs::add(Counter::OverlapPathBitset, self.overlap_bitset);
    }

    /// Merges and flushes a collection of worker tallies in one go.
    pub fn flush_all<'a>(locals: impl IntoIterator<Item = &'a KernelStats>, edges_emitted: usize) {
        if !nwhy_obs::enabled() {
            return;
        }
        let mut total = KernelStats::default();
        for l in locals {
            total.merge(l);
        }
        total.flush(edges_emitted);
    }
}
