//! **Algorithm 2** — the paper's two-phase queue-based s-line
//! construction with set intersection.
//!
//! *Phase 1* walks the bipartite indirection once and enqueues every
//! eligible hyperedge pair `{e_i, e_j}` (`j > i`, both of degree ≥ s) into
//! per-worker queues, which are concatenated into one global pair queue.
//! *Phase 2* is a single flat parallel loop over the pair queue performing
//! one short-circuiting sorted intersection per pair.
//!
//! Because phase 2 has "only one for loop (barring the set intersection)",
//! the work granularity per queue item is small and uniform — the paper's
//! argument for better load balance than the nested non-queue intersection
//! algorithm. Like Algorithm 1 it is representation-independent (bipartite
//! or adjoin, original or permuted IDs).
//!
//! The paper's pseudocode enqueues a pair once per shared hypernode; we
//! dedup with a per-worker stamp array in phase 1 so each pair is
//! intersected exactly once (a pair enqueued `k` times would otherwise be
//! intersected `k` times and emitted as a duplicate edge).

use super::overlap::{OverlapEngine, OverlapPolicy};
use super::stats::KernelStats;
use super::{canonicalize, HyperAdjacency};
use crate::{ids, Id};
use nwhy_util::partition::{par_for_each_index_with, Strategy};
use rayon::prelude::*;

/// Algorithm 2 with the default adaptive overlap policy. `queue` holds
/// the hyperedge IDs to process; returns canonical pairs.
pub fn queue_intersection<H: HyperAdjacency + ?Sized>(
    h: &H,
    queue: &[Id],
    s: usize,
    strategy: Strategy,
) -> Vec<(Id, Id)> {
    queue_intersection_with(h, queue, s, strategy, OverlapPolicy::default())
}

/// Algorithm 2 with an explicit overlap policy.
pub fn queue_intersection_with<'h, H: HyperAdjacency + ?Sized>(
    h: &'h H,
    queue: &[Id],
    s: usize,
    strategy: Strategy,
    policy: OverlapPolicy,
) -> Vec<(Id, Id)> {
    let ne = h.num_hyperedges();

    // ---- Phase 1: build the pair queue (Alg. 2 lines 1–6). ----
    struct Local {
        pairs: Vec<(Id, Id)>,
        stamp: Vec<Id>,
        stats: KernelStats,
    }
    let locals = par_for_each_index_with(
        queue.len(),
        strategy,
        || Local {
            pairs: Vec::new(),
            stamp: vec![0; ne],
            stats: KernelStats::default(),
        },
        |local, slot| {
            let i = queue[slot];
            let nbrs_i = h.edge_neighbors(i);
            if nbrs_i.len() < s {
                return;
            }
            let mark = i + 1;
            for &v in nbrs_i.iter() {
                for &raw in h.node_neighbors(v).iter() {
                    let j = h.edge_id(raw);
                    if j <= i || local.stamp[ids::to_usize(j)] == mark {
                        continue;
                    }
                    local.stamp[ids::to_usize(j)] = mark;
                    if h.edge_degree(j) >= s {
                        // lint: alloc: per-thread output accumulator; push is amortized O(1)
                        local.pairs.push((i, j));
                    } else {
                        local.stats.pairs_skipped(1);
                    }
                }
            }
        },
    );
    let mut phase1 = KernelStats::default();
    for l in &locals {
        phase1.merge(&l.stats);
    }
    let pair_queue: Vec<(Id, Id)> = locals.into_iter().flat_map(|l| l.pairs).collect();
    // Hyperedge IDs enqueued up front plus candidate pairs enqueued by
    // phase 1.
    phase1.queue_pushed(queue.len() as u64 + pair_queue.len() as u64);

    // ---- Phase 2: flat intersection pass (Alg. 2 lines 7–13). ----
    //
    // The pair queue is grouped by `i` (phase 1 emits each row's pairs
    // contiguously), so each fold chain caches the decoded `nbrs_i` and
    // its loaded row bitset across consecutive pairs sharing `i` — for a
    // compressed backend that turns O(pairs) row decodes into O(rows),
    // and the bitset build cost is paid once per cached row. Path choice
    // depends only on row lengths, so splitting a row across workers
    // changes nothing about results or counter values.
    struct Chain<'h, H: HyperAdjacency + ?Sized + 'h> {
        acc: Vec<(Id, Id)>,
        stats: KernelStats,
        engine: OverlapEngine,
        row: Option<(Id, H::Neighbors<'h>)>,
    }
    let universe = ne + h.num_hypernodes();
    let new_chain = || Chain::<'h, H> {
        acc: Vec::new(),
        stats: KernelStats::default(),
        engine: OverlapEngine::new(policy, universe),
        row: None,
    };
    let (survivors, phase2) = pair_queue
        .par_iter()
        .fold(new_chain, |mut chain: Chain<'h, H>, &(i, j)| {
            if chain.row.as_ref().map(|(ri, _)| *ri) != Some(i) {
                if let Some((_, old)) = chain.row.take() {
                    chain.engine.end_row(&old);
                }
                let nbrs = h.edge_neighbors(i);
                chain.engine.begin_row(&nbrs);
                chain.row = Some((i, nbrs));
            }
            let (_, nbrs_i) = chain.row.as_ref().expect("row cached above");
            chain.stats.pair_examined();
            if chain
                .engine
                .overlaps(nbrs_i, &h.edge_neighbors(j), s, &mut chain.stats)
            {
                chain.acc.push((i, j));
            }
            chain
        })
        .map(|chain| (chain.acc, chain.stats))
        .reduce(
            || (Vec::new(), KernelStats::default()),
            |(mut a, mut sa), (mut b, sb)| {
                a.append(&mut b);
                sa.merge(&sb);
                (a, sa)
            },
        );
    phase1.merge(&phase2);
    phase1.flush(survivors.len());
    canonicalize(survivors)
}

/// Phase-1-only variant: returns the candidate pair queue without the
/// intersection pass. Exposed for the ablation bench that measures the
/// two phases separately.
// lint: obs: ablation-bench helper; the full kernel path flushes KernelStats
pub fn candidate_pairs<H: HyperAdjacency + ?Sized>(
    h: &H,
    queue: &[Id],
    s: usize,
    strategy: Strategy,
) -> Vec<(Id, Id)> {
    let ne = h.num_hyperedges();
    struct Local {
        pairs: Vec<(Id, Id)>,
        stamp: Vec<Id>,
    }
    let locals = par_for_each_index_with(
        queue.len(),
        strategy,
        || Local {
            pairs: Vec::new(),
            stamp: vec![0; ne],
        },
        |local, slot| {
            let i = queue[slot];
            let nbrs_i = h.edge_neighbors(i);
            if nbrs_i.len() < s {
                return;
            }
            let mark = i + 1;
            for &v in nbrs_i.iter() {
                for &raw in h.node_neighbors(v).iter() {
                    let j = h.edge_id(raw);
                    if j <= i || local.stamp[ids::to_usize(j)] == mark {
                        continue;
                    }
                    local.stamp[ids::to_usize(j)] = mark;
                    if h.edge_degree(j) >= s {
                        local.pairs.push((i, j));
                    }
                }
            }
        },
    );
    locals.into_iter().flat_map(|l| l.pairs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjoin::AdjoinGraph;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;

    #[test]
    fn matches_fixture_on_biadjacency() {
        let h = paper_hypergraph();
        let queue: Vec<Id> = (0..4).collect();
        for s in 1..=4 {
            assert_eq!(
                queue_intersection(&h, &queue, s, Strategy::AUTO),
                paper_slinegraph_edges(s),
                "s={s}"
            );
        }
    }

    #[test]
    fn runs_directly_on_adjoin_graph() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        let queue: Vec<Id> = (0..ids::from_usize(a.num_hyperedges())).collect();
        for s in 1..=4 {
            assert_eq!(
                queue_intersection(&a, &queue, s, Strategy::AUTO),
                paper_slinegraph_edges(s),
                "adjoin s={s}"
            );
        }
    }

    #[test]
    fn candidate_queue_is_superset_of_result() {
        let h = paper_hypergraph();
        let queue: Vec<Id> = (0..4).collect();
        let candidates = candidate_pairs(&h, &queue, 2, Strategy::AUTO);
        let result = queue_intersection(&h, &queue, 2, Strategy::AUTO);
        for e in &result {
            assert!(candidates.contains(e), "{e:?} missing from phase-1 queue");
        }
        // candidates are deduped: each unordered pair appears once
        let canon = super::super::canonicalize(candidates.clone());
        assert_eq!(canon.len(), candidates.len());
    }

    #[test]
    fn phase1_degree_filter_prunes() {
        // e1 = {5} can never reach s=2
        let h = Hypergraph::from_memberships(&[vec![0, 5], vec![5], vec![0, 5]]);
        let queue: Vec<Id> = (0..3).collect();
        let candidates = candidate_pairs(&h, &queue, 2, Strategy::AUTO);
        assert_eq!(candidates, vec![(0, 2)]);
        assert_eq!(
            queue_intersection(&h, &queue, 2, Strategy::AUTO),
            vec![(0, 2)]
        );
    }

    #[test]
    fn shuffled_queue_same_result() {
        let h = paper_hypergraph();
        assert_eq!(
            queue_intersection(&h, &[3, 1, 0, 2], 2, Strategy::Cyclic { num_bins: 2 }),
            paper_slinegraph_edges(2)
        );
    }

    #[test]
    fn empty_inputs() {
        let h = Hypergraph::from_memberships(&[]);
        assert!(queue_intersection(&h, &[], 1, Strategy::AUTO).is_empty());
    }
}
