//! Ensemble s-line construction (Liu et al., IPDPS 2022 \[18\]).
//!
//! Computes the line graphs for *several* values of `s` in a single
//! counting pass: exact overlap counts are accumulated once per hyperedge
//! (as in the hashmap algorithm) and each `(pair, count)` is emitted into
//! every requested `s` bucket with `count ≥ s`. Amortizes the dominant
//! indirection cost when a user wants an s-sweep (as the paper's Fig. 9
//! benchmarks and HyperNetX workflows do).

use super::stats::KernelStats;
use super::{canonicalize, meets, HyperAdjacency};
use crate::{ids, Id};
use nwhy_util::fxhash::FxHashMap;
use nwhy_util::partition::{par_for_each_index_with, Strategy};

/// Computes the canonical s-line edge sets for each `s` in `s_values`
/// (need not be sorted; duplicates allowed). Output is aligned with
/// `s_values`.
///
/// # Panics
/// Panics if any `s` is 0.
pub fn ensemble<A: HyperAdjacency + ?Sized>(
    h: &A,
    s_values: &[usize],
    strategy: Strategy,
) -> Vec<Vec<(Id, Id)>> {
    assert!(s_values.iter().all(|&s| s >= 1), "s must be at least 1");
    if s_values.is_empty() {
        return Vec::new();
    }
    let min_s = *s_values.iter().min().unwrap();
    let ne = h.num_hyperedges();

    struct Local {
        buckets: Vec<Vec<(Id, Id)>>,
        counts: FxHashMap<Id, u32>,
        stats: KernelStats,
    }
    let k = s_values.len();
    let locals = par_for_each_index_with(
        ne,
        strategy,
        || Local {
            buckets: vec![Vec::new(); k],
            counts: FxHashMap::default(),
            stats: KernelStats::default(),
        },
        |local, i| {
            let i = ids::from_usize(i);
            let nbrs_i = h.edge_neighbors(i);
            if nbrs_i.len() < min_s {
                local.stats.pairs_skipped(ne as u64 - 1 - i as u64);
                return;
            }
            local.counts.clear();
            for &v in nbrs_i.iter() {
                for &raw in h.node_neighbors(v).iter() {
                    let j = h.edge_id(raw);
                    if j > i {
                        local.stats.hashmap_insertion();
                        *local.counts.entry(j).or_insert(0) += 1;
                    }
                }
            }
            local.stats.pairs_examined_n(local.counts.len() as u64);
            for (&j, &n) in &local.counts {
                for (bucket, &s) in local.buckets.iter_mut().zip(s_values) {
                    if meets(n, s) {
                        bucket.push((i, j));
                    }
                }
            }
        },
    );

    let mut stats = KernelStats::default();
    let mut emitted = 0usize;
    let mut out: Vec<Vec<(Id, Id)>> = vec![Vec::new(); k];
    for local in locals {
        stats.merge(&local.stats);
        for (dst, src) in out.iter_mut().zip(local.buckets) {
            emitted += src.len();
            dst.extend(src);
        }
    }
    stats.flush(emitted);
    out.into_iter().map(canonicalize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;
    use crate::slinegraph::hashmap::hashmap;

    #[test]
    fn matches_per_s_hashmap_on_fixture() {
        let h = paper_hypergraph();
        let svals = [1usize, 2, 3, 4];
        let got = ensemble(&h, &svals, Strategy::AUTO);
        for (out, &s) in got.iter().zip(&svals) {
            assert_eq!(out, &paper_slinegraph_edges(s), "s={s}");
        }
    }

    #[test]
    fn unsorted_and_duplicate_s_values() {
        let h = paper_hypergraph();
        let got = ensemble(&h, &[3, 1, 3], Strategy::AUTO);
        assert_eq!(got[0], paper_slinegraph_edges(3));
        assert_eq!(got[1], paper_slinegraph_edges(1));
        assert_eq!(got[2], paper_slinegraph_edges(3));
    }

    #[test]
    fn single_s_equals_hashmap() {
        let h =
            Hypergraph::from_memberships(&[vec![0, 1, 2], vec![1, 2, 3], vec![3, 4], vec![0, 4]]);
        for s in 1..=3 {
            let got = ensemble(&h, &[s], Strategy::AUTO);
            assert_eq!(got[0], hashmap(&h, s, Strategy::AUTO), "s={s}");
        }
    }

    #[test]
    fn empty_s_list() {
        let h = paper_hypergraph();
        assert!(ensemble(&h, &[], Strategy::AUTO).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_s_rejected() {
        let h = paper_hypergraph();
        ensemble(&h, &[2, 0], Strategy::AUTO);
    }

    #[test]
    fn results_nested_across_s() {
        let h = paper_hypergraph();
        let got = ensemble(&h, &[1, 2, 3, 4], Strategy::AUTO);
        for w in got.windows(2) {
            for e in &w[1] {
                assert!(w[0].contains(e));
            }
        }
    }
}
