//! The adaptive pair-overlap engine — three interchangeable primitives
//! for deciding `|e_i ∩ e_j| ≥ s`, selected per-pair by a cheap
//! degree-ratio/density rule (ROADMAP item 4; the hot spot every s-line
//! kernel bottlenecks on, per Liu et al.'s HiPC 2021 heuristics paper).
//!
//! | path | when | cost model |
//! |---|---|---|
//! | [`OverlapPath::Merge`] | similar-length rows | `O(len_i + len_j)` short-circuiting merge scan |
//! | [`OverlapPath::Gallop`] | degree ratio ≥ [`GALLOP_RATIO`] | `O(len_small · log len_large)` exponential + binary search |
//! | [`OverlapPath::Bitset`] | expanded row loaded (degree ≥ [`BITSET_ROW_MIN_DEGREE`]) | `O(words(len_j))` masked `AND`+popcount sweep |
//!
//! The bitset path amortizes: the expanded row `e_i` is loaded into a
//! worker-local [`WordBitset`] once, then every candidate `e_j` probes it
//! word-group-at-a-time (consecutive members sharing a `u64` word fold
//! into one mask, so a 64-member dense run costs *one* AND+popcount —
//! the loop body is branch-light and autovectorizes). Every path
//! short-circuits as soon as `s` common members are found *and*
//! early-abandons once the remaining elements cannot reach `s`.
//!
//! Path selection depends only on the two row lengths and the (length-
//! derived) row-load decision, never on thread count or visit order, so
//! the `overlap.path_*` and comparison counters stay deterministic — a
//! property the CI perf gate (`cargo xtask bench-diff`) relies on.

use super::stats::KernelStats;
use crate::{ids, Id};
use nwhy_util::bitmap::WordBitset;

/// Load the row bitset when the expanded hyperedge has at least this
/// many members (adaptive mode). Below this, building + clearing the
/// bitset costs more than the merge scans it replaces.
pub const BITSET_ROW_MIN_DEGREE: usize = 32;

/// Route a pair to galloping when `max(len) / min(len)` is at least this
/// (adaptive mode, row bitset not loaded). At 8× the `log`-factor search
/// beats scanning the long row linearly.
pub const GALLOP_RATIO: usize = 8;

/// Which pair-overlap primitive decided a candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapPath {
    /// Short-circuiting sorted merge scan (the pre-engine default).
    Merge,
    /// Galloping (exponential + binary search) intersection.
    Gallop,
    /// Packed `u64`-word bitset AND+popcount sweep.
    Bitset,
}

impl OverlapPath {
    /// Every path, for sweeps and forced-path benches.
    pub const ALL: [OverlapPath; 3] =
        [OverlapPath::Merge, OverlapPath::Gallop, OverlapPath::Bitset];

    /// Short display name used in benchmark tables and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            OverlapPath::Merge => "merge",
            OverlapPath::Gallop => "gallop",
            OverlapPath::Bitset => "bitset",
        }
    }
}

/// How the engine picks a path per pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapPolicy {
    /// Degree-ratio/density rule, per pair (the default).
    #[default]
    Adaptive,
    /// Every pair takes the given path (benchmark ablations and the
    /// agreement proptests).
    Force(OverlapPath),
}

impl OverlapPolicy {
    /// Parses a CLI/bench spelling: `adaptive`, `merge`, `gallop`,
    /// `bitset`.
    pub fn parse(name: &str) -> Option<OverlapPolicy> {
        match name {
            "adaptive" => Some(OverlapPolicy::Adaptive),
            "merge" => Some(OverlapPolicy::Force(OverlapPath::Merge)),
            "gallop" => Some(OverlapPolicy::Force(OverlapPath::Gallop)),
            "bitset" => Some(OverlapPolicy::Force(OverlapPath::Bitset)),
            _ => None,
        }
    }

    /// Display name (inverse of [`OverlapPolicy::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            OverlapPolicy::Adaptive => "adaptive",
            OverlapPolicy::Force(p) => p.name(),
        }
    }
}

/// Worker-local overlap engine: owns the row bitset and applies the
/// per-pair path rule. One engine lives inside each worker's `Local`
/// state, next to its [`KernelStats`].
#[derive(Debug)]
pub(crate) struct OverlapEngine {
    policy: OverlapPolicy,
    /// Upper bound on the node handles a row can contain (representation-
    /// defined: `num_hyperedges() + num_hypernodes()` covers the shifted
    /// adjoin handle space too).
    universe_bits: usize,
    bits: WordBitset,
    row_loaded: bool,
}

impl OverlapEngine {
    /// A fresh engine. The bitset allocates lazily, on the first loaded
    /// row, so merge/gallop-only runs never pay for it.
    pub fn new(policy: OverlapPolicy, universe_bits: usize) -> Self {
        Self {
            policy,
            universe_bits,
            bits: WordBitset::new(),
            row_loaded: false,
        }
    }

    /// Whether a row of `len` members gets its bitset loaded under this
    /// policy. Length-only, so the decision (and with it every per-pair
    /// path choice) is independent of worker count and visit order.
    #[inline]
    fn wants_row(&self, len: usize) -> bool {
        match self.policy {
            OverlapPolicy::Adaptive => len >= BITSET_ROW_MIN_DEGREE,
            OverlapPolicy::Force(p) => p == OverlapPath::Bitset,
        }
    }

    /// Starts expanding row `e_i`: loads its members into the bitset when
    /// the policy calls for it. Pair with [`OverlapEngine::end_row`].
    #[inline]
    // lint: obs: per-row probe inside a kernel span; tallies flush via KernelStats
    pub fn begin_row(&mut self, nbrs_i: &[Id]) {
        self.row_loaded = self.wants_row(nbrs_i.len());
        if self.row_loaded {
            self.bits.ensure_bits(self.universe_bits);
            for &v in nbrs_i {
                self.bits.insert(ids::to_usize(v));
            }
        }
    }

    /// Finishes row `e_i`: rezeros exactly the words its members touched,
    /// leaving the bitset reusable for the next row.
    #[inline]
    pub fn end_row(&mut self, nbrs_i: &[Id]) {
        if self.row_loaded {
            self.bits
                .clear_members(nbrs_i.iter().map(|&v| ids::to_usize(v)));
            self.row_loaded = false;
        }
    }

    /// The per-pair path rule (policy + degree ratio + row density).
    #[inline]
    fn choose(&self, len_i: usize, len_j: usize) -> OverlapPath {
        match self.policy {
            OverlapPolicy::Force(p) => p,
            OverlapPolicy::Adaptive => {
                if self.row_loaded {
                    // probing a loaded row costs O(words(len_j)) — beats
                    // both scans whenever the build cost is already sunk
                    OverlapPath::Bitset
                } else {
                    let (lo, hi) = if len_i <= len_j {
                        (len_i, len_j)
                    } else {
                        (len_j, len_i)
                    };
                    if hi / lo.max(1) >= GALLOP_RATIO {
                        OverlapPath::Gallop
                    } else {
                        OverlapPath::Merge
                    }
                }
            }
        }
    }

    /// `|e_i ∩ e_j| ≥ s`, via the chosen path. `nbrs_i` must be the row
    /// passed to the surrounding [`OverlapEngine::begin_row`].
    #[inline]
    pub fn overlaps(
        &mut self,
        nbrs_i: &[Id],
        nbrs_j: &[Id],
        s: usize,
        stats: &mut KernelStats,
    ) -> bool {
        match self.choose(nbrs_i.len(), nbrs_j.len()) {
            OverlapPath::Merge => {
                stats.path_merge();
                stats.intersect_at_least(nbrs_i, nbrs_j, s)
            }
            OverlapPath::Gallop => {
                stats.path_gallop();
                stats.gallop_at_least(nbrs_i, nbrs_j, s)
            }
            OverlapPath::Bitset => {
                debug_assert!(self.row_loaded, "bitset probe without a loaded row");
                stats.path_bitset();
                stats.bitset_at_least(&self.bits, nbrs_j, s)
            }
        }
    }
}

/// Galloping intersection: walks the shorter sorted row, locating each
/// member in the longer row by exponential search from the previous
/// match's frontier, then binary search inside the located window.
/// Short-circuits at `s` found, abandons when the remaining short-row
/// members cannot reach `s`. One probe = one element comparison in
/// `comparisons`, the same unit the merge scan tallies.
// lint: obs: inner probe under the kernel span; `comparisons` is the KernelStats tally (a count, not an ID)
pub(super) fn gallop_at_least(a: &[Id], b: &[Id], s: usize, comparisons: &mut u64) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() < s || large.len() < s {
        return false;
    }
    let mut found = 0usize;
    let mut base = 0usize; // every element of large[..base] is < current x
    for (idx, &x) in small.iter().enumerate() {
        if found + (small.len() - idx) < s {
            return false; // can't reach s even if every remaining member matches
        }
        if base >= large.len() {
            return false;
        }
        // exponential phase: find a window [lo, hi) with large[lo-1] < x ≤ large[hi]
        let mut step = 1usize;
        let mut lo = base;
        let mut probe = base;
        loop {
            if probe >= large.len() {
                break;
            }
            *comparisons += 1;
            if large[probe] < x {
                lo = probe + 1;
                probe += step;
                step <<= 1;
            } else {
                break;
            }
        }
        let mut hi = probe.min(large.len());
        // binary phase: lower bound of x inside the window
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            *comparisons += 1;
            if large[mid] < x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        base = lo;
        if base < large.len() {
            *comparisons += 1;
            if large[base] == x {
                found += 1;
                if found >= s {
                    return true;
                }
                base += 1;
            }
        }
    }
    false
}

/// Bitset probe: sweeps the candidate row `probe` against a loaded row
/// bitset, folding consecutive members that share a `u64` word into one
/// mask so each word costs a single `AND` + `count_ones`. One word-group
/// = one tallied comparison — which is exactly why dense pairs show a
/// measured comparison-count *reduction* versus the merge scan.
// lint: obs: inner probe under the kernel span; `comparisons` is the KernelStats tally (a count, not an ID)
pub(super) fn bitset_overlap_at_least(
    bits: &WordBitset,
    probe: &[Id],
    s: usize,
    comparisons: &mut u64,
) -> bool {
    if probe.len() < s {
        return false;
    }
    let mut found = 0usize;
    let mut k = 0usize;
    let n = probe.len();
    while k < n {
        let first = ids::to_usize(probe[k]);
        let w = first / 64;
        let mut mask = 1u64 << (first % 64);
        k += 1;
        while k < n {
            let next = ids::to_usize(probe[k]);
            if next / 64 != w {
                break;
            }
            mask |= 1u64 << (next % 64);
            k += 1;
        }
        *comparisons += 1;
        found += (bits.word(w) & mask).count_ones() as usize; // lint: popcount ≤ 64, widening
        if found >= s {
            return true;
        }
        if found + (n - k) < s {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwgraph::algorithms::triangles::sorted_intersection_at_least;

    fn gallop(a: &[Id], b: &[Id], s: usize) -> bool {
        let mut cmp = 0u64;
        gallop_at_least(a, b, s, &mut cmp)
    }

    fn bitset(a: &[Id], b: &[Id], s: usize) -> bool {
        let mut bits = WordBitset::new();
        let top = a.iter().chain(b).map(|&x| ids::to_usize(x) + 1).max();
        bits.ensure_bits(top.unwrap_or(0));
        for &x in a {
            bits.insert(ids::to_usize(x));
        }
        let mut cmp = 0u64;
        bitset_overlap_at_least(&bits, b, s, &mut cmp)
    }

    /// Every primitive against the merge-scan oracle over an exhaustive
    /// small universe.
    #[test]
    fn primitives_match_merge_oracle() {
        let rows: Vec<Vec<Id>> = vec![
            vec![],
            vec![5],
            vec![0, 1, 2, 3],
            vec![2, 3, 4, 5, 6, 7, 8, 9],
            (0..64).collect(),
            (60..130).collect(),
            (0..200).step_by(3).collect(),
            vec![63, 64, 127, 128], // word-boundary members
        ];
        for a in &rows {
            for b in &rows {
                for s in 1..=5 {
                    let want = sorted_intersection_at_least(a, b, s);
                    assert_eq!(gallop(a, b, s), want, "gallop {a:?}∩{b:?} s={s}");
                    assert_eq!(bitset(a, b, s), want, "bitset {a:?}∩{b:?} s={s}");
                }
            }
        }
    }

    #[test]
    fn gallop_skewed_pair_is_cheaper_than_merge() {
        // 4 probes into a 4096-long row: galloping must do far fewer
        // element comparisons than the ~4100 a merge scan would
        let small: Vec<Id> = vec![100, 2000, 3000, 4000];
        let large: Vec<Id> = (0..4096).collect();
        let mut cmp = 0u64;
        assert!(gallop_at_least(&small, &large, 4, &mut cmp));
        assert!(cmp < 200, "gallop spent {cmp} comparisons");
    }

    #[test]
    fn bitset_dense_pair_is_cheaper_than_merge() {
        // two dense 64-member rows collapse to a couple of word-groups
        let a: Vec<Id> = (0..64).collect();
        let b: Vec<Id> = (32..96).collect();
        let mut merge_cmp = 0u64;
        nwgraph::algorithms::triangles::sorted_intersection_at_least_counting(
            &a,
            &b,
            33, // unreachable: |a ∩ b| = 32 — forces a full scan
            &mut merge_cmp,
        );
        let mut bits = WordBitset::new();
        bits.ensure_bits(128);
        for &x in &a {
            bits.insert(ids::to_usize(x));
        }
        let mut bitset_cmp = 0u64;
        bitset_overlap_at_least(&bits, &b, 33, &mut bitset_cmp);
        assert!(
            bitset_cmp * 4 < merge_cmp,
            "bitset {bitset_cmp} vs merge {merge_cmp} comparisons"
        );
    }

    #[test]
    fn early_exit_at_s_stops_probing() {
        let a: Vec<Id> = (0..1000).collect();
        let b: Vec<Id> = (0..1000).collect();
        let mut bits = WordBitset::new();
        bits.ensure_bits(1000);
        for &x in &a {
            bits.insert(ids::to_usize(x));
        }
        let mut cmp = 0u64;
        assert!(bitset_overlap_at_least(&bits, &b, 1, &mut cmp));
        assert_eq!(cmp, 1, "s=1 on identical rows must stop after one word");
    }

    #[test]
    fn engine_adaptive_routes_by_shape() {
        let mut stats = KernelStats::default();
        let mut eng = OverlapEngine::new(OverlapPolicy::Adaptive, 4096);
        // dense row → loaded → bitset
        let dense: Vec<Id> = (0..ids::from_usize(BITSET_ROW_MIN_DEGREE)).collect();
        eng.begin_row(&dense);
        assert_eq!(eng.choose(dense.len(), 5), OverlapPath::Bitset);
        assert!(eng.overlaps(&dense, &[0, 1, 2], 2, &mut stats));
        eng.end_row(&dense);
        // small row, skewed candidate → gallop; similar candidate → merge
        let small: Vec<Id> = vec![1, 2, 3];
        eng.begin_row(&small);
        assert_eq!(eng.choose(3, 3 * GALLOP_RATIO), OverlapPath::Gallop);
        assert_eq!(eng.choose(3, 4), OverlapPath::Merge);
        eng.end_row(&small);
    }

    #[test]
    fn engine_forced_paths_agree_on_results() {
        let a: Vec<Id> = (0..40).collect();
        let b: Vec<Id> = (20..60).collect();
        for policy in [
            OverlapPolicy::Adaptive,
            OverlapPolicy::Force(OverlapPath::Merge),
            OverlapPolicy::Force(OverlapPath::Gallop),
            OverlapPolicy::Force(OverlapPath::Bitset),
        ] {
            let mut stats = KernelStats::default();
            let mut eng = OverlapEngine::new(policy, 64);
            eng.begin_row(&a);
            assert!(eng.overlaps(&a, &b, 20, &mut stats), "{}", policy.name());
            assert!(!eng.overlaps(&a, &b, 21, &mut stats), "{}", policy.name());
            eng.end_row(&a);
        }
    }

    #[test]
    fn policy_parse_round_trips() {
        for name in ["adaptive", "merge", "gallop", "bitset"] {
            assert_eq!(OverlapPolicy::parse(name).unwrap().name(), name);
        }
        assert!(OverlapPolicy::parse("simd").is_none());
    }
}
