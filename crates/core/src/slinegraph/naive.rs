//! Naive all-pairs s-line construction.
//!
//! Considers every hyperedge pair `(i, j)`, `i < j`, and tests
//! `|e_i ∩ e_j| ≥ s` by sorted-slice intersection. Quadratic in the number
//! of hyperedges; it exists as the obviously-correct oracle the other
//! algorithms are validated against, and as the baseline the paper's §III-C.3
//! lists first.

use super::stats::KernelStats;
use super::{canonicalize, HyperAdjacency};
use crate::{ids, Id};
use nwhy_util::partition::{par_for_each_index_with, Strategy};

/// Worker-local state: output pairs and kernel tallies.
#[derive(Default)]
struct Local {
    pairs: Vec<(Id, Id)>,
    stats: KernelStats,
}

/// All-pairs construction; returns canonical pairs.
pub fn naive<A: HyperAdjacency + ?Sized>(h: &A, s: usize, strategy: Strategy) -> Vec<(Id, Id)> {
    let ne = h.num_hyperedges();
    let locals = par_for_each_index_with(ne, strategy, Local::default, |local: &mut Local, i| {
        let i = ids::from_usize(i);
        let nbrs_i = h.edge_neighbors(i);
        if nbrs_i.len() < s {
            // Skipping the whole row discards all of its i < j pairs.
            local.stats.pairs_skipped(ne as u64 - 1 - i as u64);
            return;
        }
        for j in (i + 1)..ids::from_usize(ne) {
            local.stats.pair_examined();
            let nbrs_j = h.edge_neighbors(j);
            if nbrs_j.len() < s {
                local.stats.pairs_skipped(1);
                continue;
            }
            if local.stats.intersect_at_least(&nbrs_i, &nbrs_j, s) {
                local.pairs.push((i, j));
            }
        }
    });
    let pairs: Vec<(Id, Id)> = locals
        .iter()
        .flat_map(|l| l.pairs.iter().copied())
        .collect();
    KernelStats::flush_all(locals.iter().map(|l| &l.stats), pairs.len());
    canonicalize(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;

    #[test]
    fn matches_fixture() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            assert_eq!(
                naive(&h, s, Strategy::AUTO),
                paper_slinegraph_edges(s),
                "s={s}"
            );
        }
    }

    #[test]
    fn degree_filter_skips_small_edges() {
        // e1 has only 1 member; with s=2 it can never appear
        let h = Hypergraph::from_memberships(&[vec![0, 1, 2], vec![1], vec![1, 2]]);
        let got = naive(&h, 2, Strategy::AUTO);
        assert_eq!(got, vec![(0, 2)]);
    }

    #[test]
    fn duplicate_member_edges_connect_at_full_size() {
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![0, 1]]);
        assert_eq!(naive(&h, 2, Strategy::AUTO), vec![(0, 1)]);
        assert!(naive(&h, 3, Strategy::AUTO).is_empty());
    }
}
