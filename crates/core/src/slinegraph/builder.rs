//! The fluent [`SLineBuilder`] — the single entry point for every s-line
//! construction over any [`HyperAdjacency`] representation.
//!
//! All construction surfaces (plain edges, symmetric CSR, weighted
//! variants, Jaccard similarity, s-ensembles) flow through one pipeline:
//!
//! ```text
//! representation ──(optional RelabeledView)──► generic algorithm ──► map
//! back to original IDs ──► canonicalize
//! ```
//!
//! Degree relabeling is a *view*, not a reconstruction: the builder
//! computes a CSR-level degree permutation ([`nwgraph::degree_permutation`])
//! and layers a zero-copy [`RelabeledView`] over the representation. No
//! intermediate `BiEdgeList`, no membership cloning — the old
//! rebuild-the-hypergraph path is gone.
//!
//! # Examples
//!
//! ```
//! use nwhy_core::{Algorithm, Hypergraph, Relabel, SLineBuilder};
//!
//! let h = Hypergraph::from_memberships(&[
//!     vec![0, 1, 2],
//!     vec![1, 2, 3],  // shares {1,2} with e0
//!     vec![3, 4],     // shares {3} with e1
//! ]);
//! let edges = SLineBuilder::new(&h).s(1).edges();
//! assert_eq!(edges, vec![(0, 1), (1, 2)]);
//!
//! // same pipeline, different algorithm + degree-relabeled working IDs
//! let strong = SLineBuilder::new(&h)
//!     .s(2)
//!     .algorithm(Algorithm::QueueHashmap)
//!     .relabel(Relabel::Descending)
//!     .edges();
//! assert_eq!(strong, vec![(0, 1)]);
//! ```

use super::{canonicalize, ensemble, planner, weighted, Algorithm, BuildOptions, Relabel};
use crate::ids::{self, LocalId, Overlap, Relabeling};
use crate::repr::{HyperAdjacency, RelabeledView};
use crate::slinegraph::overlap::OverlapPolicy;
use crate::Id;
use nwgraph::{Csr, EdgeList};
use nwhy_obs::RequestCtx;
use nwhy_util::partition::Strategy;

/// Fluent builder for s-line graphs over any [`HyperAdjacency`]
/// representation. Defaults: `s = 1`, [`Algorithm::Hashmap`],
/// [`Strategy::AUTO`], [`Relabel::None`], [`OverlapPolicy::Adaptive`].
#[derive(Debug, Clone, Copy)]
pub struct SLineBuilder<'a, A: HyperAdjacency + ?Sized> {
    repr: &'a A,
    s: usize,
    algorithm: Algorithm,
    /// `true` ⇒ the planner overrides `algorithm` per input.
    auto: bool,
    strategy: Strategy,
    relabel: Relabel,
    overlap: OverlapPolicy,
    /// Entered around every terminal so spans, flight events, and the
    /// `KernelStats` flush attribute to this request. `None` ⇒ inherit
    /// whatever context is already current on the calling thread.
    ctx: Option<RequestCtx>,
}

impl<'a, A: HyperAdjacency + ?Sized> SLineBuilder<'a, A> {
    /// Starts a build over `repr` with default settings.
    #[must_use]
    pub fn new(repr: &'a A) -> Self {
        Self {
            repr,
            s: 1,
            algorithm: Algorithm::Hashmap,
            auto: false,
            strategy: Strategy::AUTO,
            relabel: Relabel::None,
            overlap: OverlapPolicy::default(),
            ctx: None,
        }
    }

    /// Attributes this build to a request: every terminal enters `ctx`
    /// for its duration, so the spans and counter flushes it produces
    /// carry the request id in the flight recorder. Kernel worker
    /// tallies reduce onto this thread before flushing, so attribution
    /// survives the rayon pool (see `KernelStats`).
    #[must_use]
    pub fn ctx(mut self, ctx: RequestCtx) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// The overlap threshold `s ≥ 1` (validated at build time).
    #[must_use]
    pub fn s(mut self, s: usize) -> Self {
        self.s = s;
        self
    }

    /// Which construction algorithm to run (ignored by the weighted and
    /// ensemble terminals, which are hashmap-counting by construction).
    /// Cancels a previous [`SLineBuilder::auto`].
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self.auto = false;
        self
    }

    /// Lets the [`planner`] pick the construction algorithm from the
    /// input's structural features (degree skew, candidate work, `s`) —
    /// the programmatic face of CLI `--kernel auto`. The planner's
    /// choice never changes the result, only the work profile.
    #[must_use]
    pub fn auto(mut self) -> Self {
        self.auto = true;
        self
    }

    /// Per-pair overlap path policy for the intersection-based kernels
    /// (adaptive by default; `Force(..)` pins one path for ablations).
    /// Counting kernels ignore it.
    #[must_use]
    pub fn overlap(mut self, policy: OverlapPolicy) -> Self {
        self.overlap = policy;
        self
    }

    /// Work-partitioning strategy for the parallel loops.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Degree relabeling of the working hyperedge IDs. Applied as a
    /// zero-copy [`RelabeledView`]; results are always reported in
    /// *original* IDs.
    #[must_use]
    pub fn relabel(mut self, relabel: Relabel) -> Self {
        self.relabel = relabel;
        self
    }

    /// Applies both knobs of a [`BuildOptions`] at once (compatibility
    /// with the pre-builder option struct).
    #[must_use]
    pub fn options(self, opts: &BuildOptions) -> Self {
        self.strategy(opts.strategy).relabel(opts.relabel)
    }

    /// The degree [`Relabeling`] for the configured direction; `None`
    /// when no relabeling is requested.
    fn permutation(&self) -> Option<Relabeling> {
        let dir = match self.relabel {
            Relabel::None => return None,
            Relabel::Ascending => nwgraph::Direction::Ascending,
            Relabel::Descending => nwgraph::Direction::Descending,
        };
        let degrees: Vec<usize> = (0..self.repr.num_hyperedges())
            .map(|e| self.repr.edge_degree(ids::from_usize(e)))
            .collect();
        Some(Relabeling::from_permutation(nwgraph::degree_permutation(
            &degrees, dir,
        )))
    }

    /// The canonical s-line edge set, in original hyperedge IDs.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    /// The algorithm this build will run: the planner's pick under
    /// [`SLineBuilder::auto`], the configured one otherwise. Exposed so
    /// callers (the CLI, benches) can report the decision.
    #[must_use]
    pub fn resolved_algorithm(&self) -> Algorithm {
        if self.auto {
            planner::plan(self.repr, self.s).algorithm
        } else {
            self.algorithm
        }
    }

    #[must_use]
    pub fn edges(&self) -> Vec<(Id, Id)> {
        assert!(self.s >= 1, "s must be at least 1");
        let _ctx = self.ctx.map(RequestCtx::enter);
        let algorithm = self.resolved_algorithm();
        let _span = nwhy_obs::span(algorithm.span_name());
        match self.permutation() {
            None => dispatch(self.repr, self.s, algorithm, self.strategy, self.overlap),
            Some(r) => {
                let view = RelabeledView::from_relabeling(self.repr, &r);
                let pairs = dispatch(&view, self.s, algorithm, self.strategy, self.overlap);
                canonicalize(
                    pairs
                        .into_iter()
                        .map(|(a, b)| back_pair(&r, a, b))
                        .collect(),
                )
            }
        }
    }

    /// The s-line graph as a symmetric [`Csr`] over hyperedge IDs —
    /// ready for the plain-graph algorithms (`Listing 2`'s
    /// `adjacency<0> slinegraph(slinegraph_els)`).
    #[must_use]
    pub fn csr(&self) -> Csr {
        let mut el = EdgeList::from_edges(self.repr.num_hyperedges(), self.edges());
        el.symmetrize();
        let g = Csr::from_edge_list(&el);
        crate::validate::debug_validate(
            &crate::validate::SLineOutput {
                csr: &g,
                repr: self.repr,
                s: self.s,
            },
            "SLineBuilder::csr",
        );
        g
    }

    /// Canonical weighted triples `(e, f, |e ∩ f|)` with `e < f`, sorted,
    /// overlap ≥ s, in original hyperedge IDs.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    #[must_use]
    pub fn weighted_edges(&self) -> Vec<(Id, Id, Overlap)> {
        let _ctx = self.ctx.map(RequestCtx::enter);
        let _span = nwhy_obs::span("sline.weighted");
        match self.permutation() {
            None => weighted::slinegraph_weighted_edges(self.repr, self.s, self.strategy),
            Some(r) => {
                let view = RelabeledView::from_relabeling(self.repr, &r);
                let mut triples: Vec<(Id, Id, Overlap)> =
                    weighted::slinegraph_weighted_edges(&view, self.s, self.strategy)
                        .into_iter()
                        .map(|(a, b, o)| {
                            let (a, b) = back_pair(&r, a, b);
                            if a < b {
                                (a, b, o)
                            } else {
                                (b, a, o)
                            }
                        })
                        .collect();
                triples.sort_unstable();
                triples
            }
        }
    }

    /// The symmetric weighted CSR with edge weight `1 / |e ∩ f|` —
    /// stronger overlaps are "shorter" for weighted s-walk distances.
    #[must_use]
    pub fn weighted_csr(&self) -> Csr {
        let triples = self.weighted_edges();
        let g = weighted::weighted_csr_from_triples(self.repr.num_hyperedges(), &triples);
        crate::validate::debug_validate(
            &crate::validate::SLineOutput {
                csr: &g,
                repr: self.repr,
                s: self.s,
            },
            "SLineBuilder::weighted_csr",
        );
        g
    }

    /// Canonical Jaccard-weighted pairs `(e, f, |e∩f| / |e∪f|)` for
    /// pairs with overlap ≥ s.
    #[must_use]
    pub fn jaccard_edges(&self) -> Vec<(Id, Id, f64)> {
        self.weighted_edges()
            .into_iter()
            .map(|(a, b, o)| {
                // lint: Overlap is a count, not an ID — widen it for the union size
                let union = self.repr.edge_degree(a) + self.repr.edge_degree(b) - o as usize;
                let j = if union == 0 {
                    0.0
                } else {
                    o as f64 / union as f64
                };
                (a, b, j)
            })
            .collect()
    }

    /// Canonical edge sets for *several* `s` values, sharing one counting
    /// pass (the ensemble algorithm of \[18\]); output aligns with
    /// `s_values`. The configured `s` and `algorithm` are unused here.
    ///
    /// # Panics
    /// Panics if any `s` is 0.
    #[must_use]
    pub fn ensemble_edges(&self, s_values: &[usize]) -> Vec<Vec<(Id, Id)>> {
        let _ctx = self.ctx.map(RequestCtx::enter);
        let _span = nwhy_obs::span("sline.ensemble");
        match self.permutation() {
            None => ensemble::ensemble(self.repr, s_values, self.strategy),
            Some(r) => {
                let view = RelabeledView::from_relabeling(self.repr, &r);
                ensemble::ensemble(&view, s_values, self.strategy)
                    .into_iter()
                    .map(|pairs| {
                        canonicalize(
                            pairs
                                .into_iter()
                                .map(|(a, b)| back_pair(&r, a, b))
                                .collect(),
                        )
                    })
                    .collect()
            }
        }
    }
}

/// Maps a working-space pair back to original (global) hyperedge IDs via
/// the typed [`Relabeling`] conversions.
#[inline]
fn back_pair(r: &Relabeling, a: Id, b: Id) -> (Id, Id) {
    (
        r.to_global(LocalId::new(a)).raw(),
        r.to_global(LocalId::new(b)).raw(),
    )
}

/// Runs one algorithm over a representation, in that representation's
/// working ID space. The queue-based algorithms get the full-ID-range
/// queue here; partial queues remain available through
/// [`super::queue_single`] / [`super::queue_two_phase`] directly.
pub(crate) fn dispatch<A: HyperAdjacency + ?Sized>(
    h: &A,
    s: usize,
    algo: Algorithm,
    strategy: Strategy,
    overlap: OverlapPolicy,
) -> Vec<(Id, Id)> {
    use super::{hashmap, intersection, naive, pair_sort, queue_single, queue_two_phase};
    match algo {
        Algorithm::Naive => naive::naive(h, s, strategy),
        Algorithm::Intersection => intersection::intersection_with(h, s, strategy, overlap),
        Algorithm::Hashmap => hashmap::hashmap(h, s, strategy),
        Algorithm::QueueHashmap => {
            let queue: Vec<Id> = (0..ids::from_usize(h.num_hyperedges())).collect();
            queue_single::queue_hashmap(h, &queue, s, strategy)
        }
        Algorithm::QueueIntersection => {
            let queue: Vec<Id> = (0..ids::from_usize(h.num_hyperedges())).collect();
            queue_two_phase::queue_intersection_with(h, &queue, s, strategy, overlap)
        }
        Algorithm::PairSort => pair_sort::pair_sort(h, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjoin::AdjoinGraph;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::repr::DualView;

    #[test]
    fn builder_defaults_match_fixture() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            assert_eq!(
                SLineBuilder::new(&h).s(s).edges(),
                paper_slinegraph_edges(s),
                "s={s}"
            );
        }
    }

    #[test]
    fn every_algorithm_runs_on_every_representation() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        for s in 1..=4 {
            let want = paper_slinegraph_edges(s);
            for algo in Algorithm::ALL {
                assert_eq!(
                    SLineBuilder::new(&h).s(s).algorithm(algo).edges(),
                    want,
                    "bi-adjacency {} s={s}",
                    algo.name()
                );
                assert_eq!(
                    SLineBuilder::new(&a).s(s).algorithm(algo).edges(),
                    want,
                    "adjoin {} s={s}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn relabel_composes_with_every_algorithm_on_adjoin() {
        // The headline of the refactor: degree relabeling as a view now
        // composes with the adjoin representation — something the old
        // rebuild-a-Hypergraph path could not express at all.
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        for relabel in [Relabel::Ascending, Relabel::Descending] {
            for algo in Algorithm::ALL {
                assert_eq!(
                    SLineBuilder::new(&a)
                        .s(2)
                        .algorithm(algo)
                        .relabel(relabel)
                        .edges(),
                    paper_slinegraph_edges(2),
                    "adjoin {} {relabel:?}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn dual_view_builds_the_clique_side() {
        let h = paper_hypergraph();
        let dual = h.dual();
        let via_view = SLineBuilder::new(&DualView::new(&h)).s(1).edges();
        let via_clone = SLineBuilder::new(&dual).s(1).edges();
        assert_eq!(via_view, via_clone);
    }

    #[test]
    fn weighted_terminals_agree_under_relabel() {
        let h = paper_hypergraph();
        let plain = SLineBuilder::new(&h).s(1).weighted_edges();
        for relabel in [Relabel::Ascending, Relabel::Descending] {
            let relabeled = SLineBuilder::new(&h).s(1).relabel(relabel).weighted_edges();
            assert_eq!(relabeled, plain, "{relabel:?}");
        }
        assert_eq!(
            plain,
            vec![(0, 1, 1), (0, 3, 3), (1, 2, 3), (1, 3, 2), (2, 3, 2)]
        );
    }

    #[test]
    fn ensemble_terminal_matches_per_s_builds_under_relabel() {
        let h = paper_hypergraph();
        let svals = [1usize, 2, 3, 4];
        for relabel in [Relabel::None, Relabel::Ascending, Relabel::Descending] {
            let got = SLineBuilder::new(&h)
                .relabel(relabel)
                .ensemble_edges(&svals);
            for (out, &s) in got.iter().zip(&svals) {
                assert_eq!(out, &paper_slinegraph_edges(s), "{relabel:?} s={s}");
            }
        }
    }

    #[test]
    fn csr_terminal_is_symmetric() {
        let h = paper_hypergraph();
        let g = SLineBuilder::new(&h).s(2).csr();
        assert!(g.is_symmetric());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2 * paper_slinegraph_edges(2).len());
    }

    #[test]
    fn jaccard_terminal_matches_direct_computation() {
        let h = paper_hypergraph();
        let direct = weighted::slinegraph_jaccard_edges(&h, 1, Strategy::AUTO);
        let built = SLineBuilder::new(&h).s(1).jaccard_edges();
        assert_eq!(built.len(), direct.len());
        for ((a1, b1, j1), (a2, b2, j2)) in built.iter().zip(&direct) {
            assert_eq!((a1, b1), (a2, b2));
            assert!((j1 - j2).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn s_zero_rejected_by_builder() {
        let h = paper_hypergraph();
        let _ = SLineBuilder::new(&h).s(0).edges();
    }
}
