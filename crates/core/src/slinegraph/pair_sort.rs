//! Pair-enumeration + sort s-line construction.
//!
//! A seventh construction strategy, included for completeness of the
//! design space the paper's algorithms sit in: instead of counting
//! overlaps per source hyperedge (hashmap) or intersecting candidate
//! pairs (intersection), enumerate — for every hypernode — all hyperedge
//! pairs incident on it (`Σ_v C(d(v), 2)` pairs), then sort the pair
//! list and measure run lengths: a pair appearing `c` times has overlap
//! exactly `c`.
//!
//! Trades the hashmap's random access for a parallel sort's sequential
//! bandwidth; memory is proportional to the *pre-threshold* pair count,
//! which is exactly the quantity the paper's §III-B.3 blow-up discussion
//! warns about — the tests and bench make that trade-off observable.

use super::stats::KernelStats;
use super::{canonicalize, HyperAdjacency};
use crate::Id;
use rayon::prelude::*;

/// Pair-sort construction; returns canonical pairs.
pub fn pair_sort<A: HyperAdjacency + ?Sized>(h: &A, s: usize) -> Vec<(Id, Id)> {
    assert!(s >= 1, "s must be at least 1");
    let nv = h.num_hypernodes();
    // 1. Enumerate co-incident hyperedge pairs per hypernode.
    let mut pairs: Vec<(Id, Id)> = (0..nv)
        .into_par_iter()
        .fold(Vec::new, |mut acc, idx| {
            let edges = h.node_neighbors(h.node_id(idx));
            for (i, &raw_a) in edges.iter().enumerate() {
                let a = h.edge_id(raw_a);
                for &raw_b in &edges[i + 1..] {
                    // raw node lists are sorted, but ID translation (e.g.
                    // a relabeled view) can reorder — normalize to (min, max)
                    let b = h.edge_id(raw_b);
                    acc.push(if a < b { (a, b) } else { (b, a) });
                }
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });

    // 2. Sort and scan runs: run length = overlap size.
    pairs.par_sort_unstable();
    let mut out: Vec<(Id, Id)> = Vec::new();
    let mut runs = 0u64;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i + 1;
        while j < pairs.len() && pairs[j] == pairs[i] {
            j += 1;
        }
        if nwhy_obs::enabled() {
            runs += 1;
        }
        if j - i >= s {
            out.push(pairs[i]);
        }
        i = j;
    }
    // Each distinct run is one examined candidate pair; the enumeration
    // is the memory cost, the runs are the decision points.
    let mut stats = KernelStats::default();
    stats.pairs_examined_n(runs);
    stats.flush(out.len());
    canonicalize(out)
}

/// The number of pairs the enumeration phase materializes:
/// `Σ_v C(d(v), 2)`. This is the memory cost that distinguishes this
/// algorithm from the streaming hashmap approach.
pub fn pair_sort_work<A: HyperAdjacency + ?Sized>(h: &A) -> usize {
    (0..h.num_hypernodes())
        .into_par_iter()
        .map(|idx| {
            let d = h.node_degree(h.node_id(idx));
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_hypergraph, paper_slinegraph_edges};
    use crate::hypergraph::Hypergraph;
    use crate::slinegraph::naive::naive;
    use nwhy_util::partition::Strategy;

    #[test]
    fn matches_fixture() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            assert_eq!(pair_sort(&h, s), paper_slinegraph_edges(s), "s={s}");
        }
    }

    #[test]
    fn matches_naive_on_hub_structure() {
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![0, 2], vec![0, 1, 2], vec![1, 2]]);
        for s in 1..=3 {
            assert_eq!(pair_sort(&h, s), naive(&h, s, Strategy::AUTO), "s={s}");
        }
    }

    #[test]
    fn work_counts_pairs() {
        let h = paper_hypergraph();
        // node degrees: 2,1,2,3,2,3,2,1,2 → C(2,2)*5 + C(3,2)*2 = 5 + 6
        assert_eq!(pair_sort_work(&h), 11);
    }

    #[test]
    fn empty_and_degenerate() {
        let h = Hypergraph::from_memberships(&[]);
        assert!(pair_sort(&h, 1).is_empty());
        let h = Hypergraph::from_memberships(&[vec![0], vec![1]]);
        assert!(pair_sort(&h, 1).is_empty());
        assert_eq!(pair_sort_work(&h), 0);
    }
}
