//! Structural invariant validation for every representation.
//!
//! Each representation in this workspace carries invariants that the
//! kernels silently rely on: CSR offsets are monotone, neighbor slices
//! are sorted (the set-intersection s-line algorithms binary-search
//! them), the two bi-adjacency CSRs of a [`Hypergraph`] are exact
//! transposes, an [`AdjoinGraph`] is bipartite across the ID-offset
//! boundary `n_e`, relabeling permutations are bijections, and s-line
//! CSRs are symmetric, self-loop-free, and weight-consistent with the
//! overlaps that produced them.
//!
//! The [`Validate`] trait makes those invariants checkable, and
//! [`InvariantViolation`] names the *first* violated one precisely
//! enough to debug a corrupted structure (which index, which IDs, what
//! was expected). Checks are wired into the builders behind
//! `debug_assertions` / the `validate` cargo feature (see
//! [`debug_validate`]), and exposed to users as the `nwhy check` CLI
//! subcommand.
//!
//! Validation is read-only and single-threaded by design: it runs on
//! frozen structures, so it needs no atomics and reports deterministic,
//! reproducible first-violation errors.

use crate::adjoin::AdjoinGraph;
use crate::hypergraph::Hypergraph;
use crate::ids;
use crate::repr::{DualView, HyperAdjacency, RelabeledView};
use crate::Id;
use nwgraph::Csr;
use std::fmt;

/// A named, located violation of a structural invariant — the payload
/// says exactly which entry broke which rule.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// `offsets[0]` must be 0.
    OffsetsStartNonZero {
        /// The actual first offset.
        first: usize,
    },
    /// `offsets` must be nondecreasing.
    OffsetsNotMonotone {
        /// Index `i` such that `offsets[i] > offsets[i + 1]`.
        index: usize,
        /// `offsets[index]`.
        prev: usize,
        /// `offsets[index + 1]`.
        next: usize,
    },
    /// The final offset must equal the number of stored targets.
    OffsetsEndMismatch {
        /// The last offset.
        last: usize,
        /// `targets.len()`.
        num_stored: usize,
    },
    /// A weighted CSR must carry one weight per target.
    WeightsLengthMismatch {
        /// `weights.len()`.
        weights: usize,
        /// `targets.len()`.
        targets: usize,
    },
    /// Every stored target must be inside the target ID space.
    TargetOutOfBounds {
        /// Source vertex owning the bad slice entry.
        source: Id,
        /// Position within the source's neighbor slice.
        position: usize,
        /// The out-of-range target.
        target: Id,
        /// Size of the target ID space.
        num_targets: usize,
    },
    /// Neighbor slices must be sorted (nondecreasing; duplicates are a
    /// multigraph feature, not a violation).
    NeighborsUnsorted {
        /// Source vertex with the unsorted slice.
        source: Id,
        /// Position `p` with `slice[p] > slice[p + 1]`.
        position: usize,
    },
    /// Two sizes that must agree (described by `what`) do not.
    ShapeMismatch {
        /// Which pair of sizes disagrees.
        what: &'static str,
        /// First size.
        left: usize,
        /// Second size.
        right: usize,
    },
    /// An incidence present in one bi-adjacency direction is missing
    /// from the other (the CSRs are not mutual transposes).
    MutualIndexMissing {
        /// Hyperedge of the incidence.
        hyperedge: Id,
        /// Hypernode of the incidence.
        hypernode: Id,
        /// Which CSR lacks the incidence (`"nodes"` or `"edges"`).
        missing_in: &'static str,
    },
    /// An adjoin-graph edge stays within one partition (both endpoints
    /// hyperedges, or both hypernodes).
    PartitionViolated {
        /// Edge source (adjoin ID).
        vertex: Id,
        /// Edge target (adjoin ID).
        neighbor: Id,
        /// The hyperedge/hypernode boundary `n_e`.
        boundary: usize,
    },
    /// Edge `(source, target)` has no reverse `(target, source)` in a
    /// structure that must be symmetric.
    NotSymmetric {
        /// Edge source.
        source: Id,
        /// Edge target whose reverse edge is missing.
        target: Id,
    },
    /// A permutation entry falls outside `[0, len)`.
    PermutationOutOfRange {
        /// Index into the permutation array.
        index: usize,
        /// The out-of-range entry.
        value: Id,
        /// Permutation length (= ID-space size).
        len: usize,
    },
    /// `inv` is not the inverse of `perm`: `inv[perm[new]] != new`.
    /// Covers duplicates too — a non-injective `perm` always breaks the
    /// round trip for at least one `new`.
    PermutationNotInverse {
        /// The working (new) ID whose round trip failed.
        new_id: Id,
        /// `perm[new_id]`.
        old_id: Id,
        /// `inv[old_id]`, which should equal `new_id`.
        round_trip: Id,
    },
    /// An s-line graph may not contain self-loops (`|e ∩ e| ≥ s` is
    /// never an edge).
    SelfLoop {
        /// The vertex with a self-edge.
        vertex: Id,
    },
    /// An s-line edge whose actual overlap in the source hypergraph is
    /// below the threshold `s`.
    OverlapBelowThreshold {
        /// First hyperedge of the pair.
        e: Id,
        /// Second hyperedge of the pair.
        f: Id,
        /// Actual `|e ∩ f|`.
        overlap: usize,
        /// The threshold the edge claims to satisfy.
        s: usize,
    },
    /// A weighted s-line edge whose stored weight disagrees with
    /// `1 / |e ∩ f|`.
    WeightMismatch {
        /// First hyperedge of the pair.
        e: Id,
        /// Second hyperedge of the pair.
        f: Id,
        /// The stored weight.
        weight: f64,
        /// `1 / |e ∩ f|` recomputed from the hypergraph.
        expected: f64,
    },
    /// A packed (`NWHYPAK1`) image whose byte payload fails to decode:
    /// truncated or overlong varint, sampled index disagreeing with the
    /// payload walk, gap sum out of bounds, row lengths not summing to
    /// the header's incidence count. Raised by `nwhy-store`'s
    /// `Validate` impl before (and instead of) the structural checks,
    /// which presume a decodable image.
    PackedPayloadCorrupt {
        /// The storage-layer decode error, rendered.
        detail: String,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use InvariantViolation::*;
        match self {
            OffsetsStartNonZero { first } => {
                write!(f, "offsets[0] is {first}, expected 0")
            }
            OffsetsNotMonotone { index, prev, next } => {
                write!(f, "offsets not monotone at {index}: {prev} > {next}")
            }
            OffsetsEndMismatch { last, num_stored } => write!(
                f,
                "last offset {last} != number of stored targets {num_stored}"
            ),
            WeightsLengthMismatch { weights, targets } => {
                write!(f, "weights length {weights} != targets length {targets}")
            }
            TargetOutOfBounds {
                source,
                position,
                target,
                num_targets,
            } => write!(
                f,
                "target {target} at position {position} of source {source} \
                 out of range (num_targets = {num_targets})"
            ),
            NeighborsUnsorted { source, position } => write!(
                f,
                "neighbor slice of source {source} unsorted at position {position}"
            ),
            ShapeMismatch { what, left, right } => {
                write!(f, "shape mismatch ({what}): {left} != {right}")
            }
            MutualIndexMissing {
                hyperedge,
                hypernode,
                missing_in,
            } => write!(
                f,
                "incidence ({hyperedge}, {hypernode}) missing from the \
                 {missing_in} bi-adjacency"
            ),
            PartitionViolated {
                vertex,
                neighbor,
                boundary,
            } => write!(
                f,
                "adjoin edge ({vertex}, {neighbor}) does not cross the \
                 partition boundary {boundary}"
            ),
            NotSymmetric { source, target } => write!(
                f,
                "edge ({source}, {target}) has no reverse ({target}, {source})"
            ),
            PermutationOutOfRange { index, value, len } => write!(
                f,
                "permutation entry {value} at index {index} out of range {len}"
            ),
            PermutationNotInverse {
                new_id,
                old_id,
                round_trip,
            } => write!(
                f,
                "inv[perm[{new_id}]] = inv[{old_id}] = {round_trip}, \
                 expected {new_id}: perm/inv are not inverse bijections"
            ),
            SelfLoop { vertex } => write!(f, "s-line self-loop at vertex {vertex}"),
            OverlapBelowThreshold {
                e,
                f: ff,
                overlap,
                s,
            } => write!(f, "s-line edge ({e}, {ff}) has overlap {overlap} < s = {s}"),
            WeightMismatch {
                e,
                f: ff,
                weight,
                expected,
            } => write!(
                f,
                "s-line edge ({e}, {ff}) weight {weight} != 1/overlap = {expected}"
            ),
            PackedPayloadCorrupt { detail } => {
                write!(f, "packed payload corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Structural self-check: `Ok(())` when every invariant of the
/// implementing representation holds, or the *first* violation found.
pub trait Validate {
    /// Checks all structural invariants, returning the first violation.
    fn validate(&self) -> Result<(), InvariantViolation>;
}

/// Runs `validate` and panics with `context` on violation — but only
/// under `debug_assertions` or the `validate` cargo feature. This is
/// the builders' wiring point: constructors establish invariants, this
/// proves it in debug/CI builds, and release builds pay nothing.
#[cfg_attr(
    not(any(debug_assertions, feature = "validate")),
    allow(unused_variables)
)]
pub(crate) fn debug_validate<T: Validate + ?Sized>(value: &T, context: &str) {
    #[cfg(any(debug_assertions, feature = "validate"))]
    if let Err(e) = value.validate() {
        panic!("{context}: invariant violation: {e}");
    }
}

impl Validate for Csr {
    /// CSR invariants: `offsets[0] == 0`, offsets nondecreasing, last
    /// offset equals `targets.len()`, weights (if any) parallel the
    /// targets, every target in `[0, num_targets)`, and every neighbor
    /// slice sorted. Duplicate targets are allowed (multigraph edges
    /// are a feature of this CSR).
    fn validate(&self) -> Result<(), InvariantViolation> {
        let offsets = self.offsets();
        let targets = self.targets();
        if offsets[0] != 0 {
            return Err(InvariantViolation::OffsetsStartNonZero { first: offsets[0] });
        }
        for (i, w) in offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(InvariantViolation::OffsetsNotMonotone {
                    index: i,
                    prev: w[0],
                    next: w[1],
                });
            }
        }
        let last = offsets[offsets.len() - 1];
        if last != targets.len() {
            return Err(InvariantViolation::OffsetsEndMismatch {
                last,
                num_stored: targets.len(),
            });
        }
        if let Some(ws) = self.weights() {
            if ws.len() != targets.len() {
                return Err(InvariantViolation::WeightsLengthMismatch {
                    weights: ws.len(),
                    targets: targets.len(),
                });
            }
        }
        let num_targets = self.num_targets();
        for u in 0..self.num_vertices() {
            let slice = &targets[offsets[u]..offsets[u + 1]];
            for (p, &t) in slice.iter().enumerate() {
                if (t as usize) >= num_targets {
                    return Err(InvariantViolation::TargetOutOfBounds {
                        source: ids::from_usize(u),
                        position: p,
                        target: t,
                        num_targets,
                    });
                }
                if p > 0 && slice[p - 1] > t {
                    return Err(InvariantViolation::NeighborsUnsorted {
                        source: ids::from_usize(u),
                        position: p - 1,
                    });
                }
            }
        }
        Ok(())
    }
}

impl Validate for Hypergraph {
    /// Bi-adjacency invariants: both CSRs valid, their shapes mutually
    /// transposed (`edges` is `n_e × n_v`, `nodes` is `n_v × n_e`), and
    /// every incidence present in *both* directions — `v ∈ edges[e] ⇔
    /// e ∈ nodes[v]`. With matching totals, checking one direction's
    /// membership in the other suffices for set equality, but both
    /// directions are walked so the error names the missing side.
    fn validate(&self) -> Result<(), InvariantViolation> {
        self.edges().validate()?;
        self.nodes().validate()?;
        if self.edges().num_targets() != self.nodes().num_vertices() {
            return Err(InvariantViolation::ShapeMismatch {
                what: "edge CSR target space vs node CSR rows",
                left: self.edges().num_targets(),
                right: self.nodes().num_vertices(),
            });
        }
        if self.nodes().num_targets() != self.edges().num_vertices() {
            return Err(InvariantViolation::ShapeMismatch {
                what: "node CSR target space vs edge CSR rows",
                left: self.nodes().num_targets(),
                right: self.edges().num_vertices(),
            });
        }
        if self.edges().num_edges() != self.nodes().num_edges() {
            return Err(InvariantViolation::ShapeMismatch {
                what: "incidence counts of the two bi-adjacencies",
                left: self.edges().num_edges(),
                right: self.nodes().num_edges(),
            });
        }
        for e in 0..ids::from_usize(self.num_hyperedges()) {
            for &v in self.edge_members(e) {
                if self.node_memberships(v).binary_search(&e).is_err() {
                    return Err(InvariantViolation::MutualIndexMissing {
                        hyperedge: e,
                        hypernode: v,
                        missing_in: "nodes",
                    });
                }
            }
        }
        for v in 0..ids::from_usize(self.num_hypernodes()) {
            for &e in self.node_memberships(v) {
                if self.edge_members(e).binary_search(&v).is_err() {
                    return Err(InvariantViolation::MutualIndexMissing {
                        hyperedge: e,
                        hypernode: v,
                        missing_in: "edges",
                    });
                }
            }
        }
        Ok(())
    }
}

impl Validate for AdjoinGraph {
    /// Adjoin invariants: the backing CSR is valid, square over exactly
    /// `n_e + n_v` vertices, symmetric, and bipartite across the
    /// ID-offset boundary — every edge joins a hyperedge (`< n_e`) to a
    /// hypernode (`≥ n_e`).
    fn validate(&self) -> Result<(), InvariantViolation> {
        self.graph().validate()?;
        if self.graph().num_vertices() != self.num_vertices() {
            return Err(InvariantViolation::ShapeMismatch {
                what: "adjoin CSR rows vs n_e + n_v",
                left: self.graph().num_vertices(),
                right: self.num_vertices(),
            });
        }
        if self.graph().num_targets() != self.num_vertices() {
            return Err(InvariantViolation::ShapeMismatch {
                what: "adjoin CSR target space vs n_e + n_v",
                left: self.graph().num_targets(),
                right: self.num_vertices(),
            });
        }
        let boundary = self.num_hyperedges();
        for (u, nbrs) in self.graph().iter() {
            for &v in nbrs {
                if ((u as usize) < boundary) == ((v as usize) < boundary) {
                    return Err(InvariantViolation::PartitionViolated {
                        vertex: u,
                        neighbor: v,
                        boundary,
                    });
                }
                if self.graph().neighbors(v).binary_search(&u).is_err() {
                    return Err(InvariantViolation::NotSymmetric {
                        source: u,
                        target: v,
                    });
                }
            }
        }
        Ok(())
    }
}

impl Validate for DualView<'_> {
    /// The dual view adds no storage of its own — its invariants are
    /// exactly the primal hypergraph's, with the two (already mutually
    /// transposed) CSRs read in swapped roles.
    fn validate(&self) -> Result<(), InvariantViolation> {
        self.inner().validate()
    }
}

impl<A: HyperAdjacency + ?Sized> Validate for RelabeledView<'_, A> {
    /// Relabeling invariants: `perm` and `inv` are inverse bijections
    /// on `[0, n_e)`. In-range entries plus `inv[perm[new]] == new` for
    /// every `new` forces `perm` injective on equal-length arrays,
    /// hence bijective; `perm[inv[old]] == old` is checked too so a
    /// broken `inv` is reported even where `perm` round-trips.
    fn validate(&self) -> Result<(), InvariantViolation> {
        let n = self.num_hyperedges();
        let (perm, inv) = (self.perm(), self.inv());
        if perm.len() != n {
            return Err(InvariantViolation::ShapeMismatch {
                what: "perm length vs num_hyperedges",
                left: perm.len(),
                right: n,
            });
        }
        if inv.len() != n {
            return Err(InvariantViolation::ShapeMismatch {
                what: "inv length vs num_hyperedges",
                left: inv.len(),
                right: n,
            });
        }
        for (i, &old) in perm.iter().enumerate() {
            if (old as usize) >= n {
                return Err(InvariantViolation::PermutationOutOfRange {
                    index: i,
                    value: old,
                    len: n,
                });
            }
            let round_trip = inv[old as usize];
            if round_trip as usize != i {
                return Err(InvariantViolation::PermutationNotInverse {
                    new_id: ids::from_usize(i),
                    old_id: old,
                    round_trip,
                });
            }
        }
        for (i, &new) in inv.iter().enumerate() {
            if (new as usize) >= n {
                return Err(InvariantViolation::PermutationOutOfRange {
                    index: i,
                    value: new,
                    len: n,
                });
            }
        }
        Ok(())
    }
}

/// An s-line CSR paired with the representation and threshold that
/// produced it, so the output can be validated *against its source*:
/// symmetry, no self-loops, every edge's overlap at least `s`, and (for
/// weighted CSRs) stored weights equal to `1 / |e ∩ f|`.
pub struct SLineOutput<'a, A: HyperAdjacency + ?Sized> {
    /// The s-line graph over hyperedge IDs.
    pub csr: &'a Csr,
    /// The hypergraph representation the s-line graph was built from.
    pub repr: &'a A,
    /// The overlap threshold the build used.
    pub s: usize,
}

/// Size of the intersection of two sorted slices (duplicates in either
/// slice are counted at most once per matching pair — hyperedge member
/// slices are dedup-sorted, so this is plain sorted-merge counting).
fn sorted_intersection_size(a: &[Id], b: &[Id]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

impl<A: HyperAdjacency + ?Sized> Validate for SLineOutput<'_, A> {
    fn validate(&self) -> Result<(), InvariantViolation> {
        self.csr.validate()?;
        let n_e = self.repr.num_hyperedges();
        if self.csr.num_vertices() != n_e {
            return Err(InvariantViolation::ShapeMismatch {
                what: "s-line CSR rows vs num_hyperedges",
                left: self.csr.num_vertices(),
                right: n_e,
            });
        }
        if self.csr.num_targets() != n_e {
            return Err(InvariantViolation::ShapeMismatch {
                what: "s-line CSR target space vs num_hyperedges",
                left: self.csr.num_targets(),
                right: n_e,
            });
        }
        for (e, nbrs) in self.csr.iter() {
            for &f in nbrs {
                if e == f {
                    return Err(InvariantViolation::SelfLoop { vertex: e });
                }
                if self.csr.neighbors(f).binary_search(&e).is_err() {
                    return Err(InvariantViolation::NotSymmetric {
                        source: e,
                        target: f,
                    });
                }
            }
            if self.csr.is_weighted() {
                for (f, w) in self.csr.weighted_neighbors(e) {
                    let overlap = sorted_intersection_size(
                        &self.repr.edge_neighbors(e),
                        &self.repr.edge_neighbors(f),
                    );
                    if overlap < self.s {
                        return Err(InvariantViolation::OverlapBelowThreshold {
                            e,
                            f,
                            overlap,
                            s: self.s,
                        });
                    }
                    let expected = 1.0 / overlap as f64;
                    if (w - expected).abs() > 1e-9 {
                        return Err(InvariantViolation::WeightMismatch {
                            e,
                            f,
                            weight: w,
                            expected,
                        });
                    }
                }
            } else {
                for &f in nbrs {
                    let overlap = sorted_intersection_size(
                        &self.repr.edge_neighbors(e),
                        &self.repr.edge_neighbors(f),
                    );
                    if overlap < self.s {
                        return Err(InvariantViolation::OverlapBelowThreshold {
                            e,
                            f,
                            overlap,
                            s: self.s,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;
    use crate::SLineBuilder;
    use nwgraph::EdgeList;

    // ---- Csr ----

    #[test]
    fn well_formed_csr_validates() {
        let el = EdgeList::from_edges(4, vec![(0, 2), (0, 1), (1, 2), (3, 0)]);
        assert_eq!(Csr::from_edge_list(&el).validate(), Ok(()));
    }

    #[test]
    fn csr_detects_nonzero_first_offset() {
        let c = Csr::from_raw_parts(2, vec![1, 1, 2], vec![0, 1], None);
        assert_eq!(
            c.validate(),
            Err(InvariantViolation::OffsetsStartNonZero { first: 1 })
        );
    }

    #[test]
    fn csr_detects_nonmonotone_offsets() {
        let c = Csr::from_raw_parts(2, vec![0, 2, 1], vec![0, 1], None);
        assert_eq!(
            c.validate(),
            Err(InvariantViolation::OffsetsNotMonotone {
                index: 1,
                prev: 2,
                next: 1,
            })
        );
    }

    #[test]
    fn csr_detects_end_mismatch() {
        let c = Csr::from_raw_parts(2, vec![0, 1, 3], vec![0, 1], None);
        assert_eq!(
            c.validate(),
            Err(InvariantViolation::OffsetsEndMismatch {
                last: 3,
                num_stored: 2,
            })
        );
    }

    #[test]
    fn csr_detects_out_of_bounds_target() {
        let c = Csr::from_raw_parts(3, vec![0, 2], vec![1, 7], None);
        assert_eq!(
            c.validate(),
            Err(InvariantViolation::TargetOutOfBounds {
                source: 0,
                position: 1,
                target: 7,
                num_targets: 3,
            })
        );
    }

    #[test]
    fn csr_detects_unsorted_neighbors() {
        let c = Csr::from_raw_parts(3, vec![0, 3], vec![0, 2, 1], None);
        assert_eq!(
            c.validate(),
            Err(InvariantViolation::NeighborsUnsorted {
                source: 0,
                position: 1,
            })
        );
    }

    #[test]
    fn csr_detects_weight_length_mismatch() {
        let c = Csr::from_raw_parts(3, vec![0, 2], vec![0, 1], Some(vec![1.0]));
        assert_eq!(
            c.validate(),
            Err(InvariantViolation::WeightsLengthMismatch {
                weights: 1,
                targets: 2,
            })
        );
    }

    #[test]
    fn csr_duplicate_targets_are_not_a_violation() {
        let c = Csr::from_raw_parts(2, vec![0, 2], vec![1, 1], None);
        assert_eq!(c.validate(), Ok(()));
    }

    // ---- Hypergraph ----

    #[test]
    fn well_formed_hypergraph_validates() {
        assert_eq!(paper_hypergraph().validate(), Ok(()));
    }

    #[test]
    fn hypergraph_detects_broken_mutual_index() {
        let h = paper_hypergraph();
        // Drop one incidence from the node side only: edges says 1 ∈ e0,
        // nodes no longer lists e0 for hypernode 1.
        let nodes = h.nodes();
        let mut offsets = nodes.offsets().to_vec();
        let mut targets = nodes.targets().to_vec();
        // hypernode 1's slice is [0]; remove it
        let lo = offsets[1];
        targets.remove(lo);
        for o in offsets.iter_mut().skip(2) {
            *o -= 1;
        }
        let corrupt_nodes = Csr::from_raw_parts(nodes.num_targets(), offsets, targets, None);
        let corrupt = Hypergraph::from_raw_parts(h.edges().clone(), corrupt_nodes);
        assert_eq!(
            corrupt.validate(),
            Err(InvariantViolation::ShapeMismatch {
                what: "incidence counts of the two bi-adjacencies",
                left: 18,
                right: 17,
            })
        );
    }

    #[test]
    fn hypergraph_detects_swapped_incidence() {
        let h = paper_hypergraph();
        // Same incidence count, wrong membership: rebuild the node CSR
        // from perturbed pairs (hypernode 1 claims e1 instead of e0).
        let mut pairs: Vec<(Id, Id)> = Vec::new();
        for v in 0..ids::from_usize(h.num_hypernodes()) {
            for &e in h.node_memberships(v) {
                pairs.push((v, if v == 1 { 1 } else { e }));
            }
        }
        let corrupt_nodes = Csr::from_pairs(h.num_hypernodes(), h.num_hyperedges(), &pairs, None);
        let corrupt = Hypergraph::from_raw_parts(h.edges().clone(), corrupt_nodes);
        assert_eq!(
            corrupt.validate(),
            Err(InvariantViolation::MutualIndexMissing {
                hyperedge: 0,
                hypernode: 1,
                missing_in: "nodes",
            })
        );
    }

    #[test]
    fn hypergraph_detects_shape_mismatch() {
        let h = paper_hypergraph();
        // node CSR claims a 5-hyperedge target space; edges has 4 rows
        let nodes = Csr::from_raw_parts(
            5,
            h.nodes().offsets().to_vec(),
            h.nodes().targets().to_vec(),
            None,
        );
        let corrupt = Hypergraph::from_raw_parts(h.edges().clone(), nodes);
        assert_eq!(
            corrupt.validate(),
            Err(InvariantViolation::ShapeMismatch {
                what: "node CSR target space vs edge CSR rows",
                left: 5,
                right: 4,
            })
        );
    }

    // ---- AdjoinGraph ----

    #[test]
    fn well_formed_adjoin_validates() {
        let a = AdjoinGraph::from_hypergraph(&paper_hypergraph());
        assert_eq!(a.validate(), Ok(()));
    }

    #[test]
    fn adjoin_detects_partition_violation() {
        // edge (0, 1) joins two hyperedges — illegal in an adjoin graph
        let mut el = EdgeList::from_edges(4, vec![(0, 1), (0, 2), (1, 3)]);
        el.symmetrize();
        let graph = Csr::from_edge_list(&el);
        let a = AdjoinGraph::from_raw_parts(graph, 2, 2);
        assert_eq!(
            a.validate(),
            Err(InvariantViolation::PartitionViolated {
                vertex: 0,
                neighbor: 1,
                boundary: 2,
            })
        );
    }

    #[test]
    fn adjoin_detects_asymmetry() {
        // (0, 2) present, (2, 0) missing
        let el = EdgeList::from_edges(4, vec![(0, 2), (1, 3), (3, 1)]);
        let graph = Csr::from_edge_list(&el);
        let a = AdjoinGraph::from_raw_parts(graph, 2, 2);
        assert_eq!(
            a.validate(),
            Err(InvariantViolation::NotSymmetric {
                source: 0,
                target: 2,
            })
        );
    }

    #[test]
    fn adjoin_detects_wrong_vertex_count() {
        let a = AdjoinGraph::from_hypergraph(&paper_hypergraph());
        let corrupt = AdjoinGraph::from_raw_parts(
            a.graph().clone(),
            a.num_hyperedges(),
            a.num_hypernodes() + 1,
        );
        assert_eq!(
            corrupt.validate(),
            Err(InvariantViolation::ShapeMismatch {
                what: "adjoin CSR rows vs n_e + n_v",
                left: 13,
                right: 14,
            })
        );
    }

    // ---- DualView ----

    #[test]
    fn dual_view_delegates_to_inner() {
        let h = paper_hypergraph();
        assert_eq!(DualView::new(&h).validate(), Ok(()));

        let corrupt = Hypergraph::from_raw_parts(
            h.edges().clone(),
            Csr::from_raw_parts(
                5,
                h.nodes().offsets().to_vec(),
                h.nodes().targets().to_vec(),
                None,
            ),
        );
        assert!(matches!(
            DualView::new(&corrupt).validate(),
            Err(InvariantViolation::ShapeMismatch { .. })
        ));
    }

    // ---- RelabeledView ----

    #[test]
    fn relabeled_view_accepts_valid_permutation() {
        let h = paper_hypergraph();
        let perm: Vec<Id> = vec![3, 2, 1, 0];
        let inv: Vec<Id> = vec![3, 2, 1, 0];
        assert_eq!(RelabeledView::new(&h, &perm, &inv).validate(), Ok(()));
    }

    #[test]
    fn relabeled_view_detects_duplicate_perm_entry() {
        let h = paper_hypergraph();
        // perm maps both new 0 and new 1 to old 2 — not injective
        let perm: Vec<Id> = vec![2, 2, 1, 0];
        let inv: Vec<Id> = vec![3, 2, 0, 0];
        assert_eq!(
            RelabeledView::new(&h, &perm, &inv).validate(),
            Err(InvariantViolation::PermutationNotInverse {
                new_id: 1,
                old_id: 2,
                round_trip: 0,
            })
        );
    }

    #[test]
    fn relabeled_view_detects_out_of_range_perm() {
        let h = paper_hypergraph();
        let perm: Vec<Id> = vec![0, 1, 2, 9];
        let inv: Vec<Id> = vec![0, 1, 2, 3];
        assert_eq!(
            RelabeledView::new(&h, &perm, &inv).validate(),
            Err(InvariantViolation::PermutationOutOfRange {
                index: 3,
                value: 9,
                len: 4,
            })
        );
    }

    #[test]
    fn relabeled_view_detects_broken_inverse() {
        let h = paper_hypergraph();
        let perm: Vec<Id> = vec![0, 1, 2, 3];
        let inv: Vec<Id> = vec![0, 1, 3, 2]; // disagrees with identity perm
        assert_eq!(
            RelabeledView::new(&h, &perm, &inv).validate(),
            Err(InvariantViolation::PermutationNotInverse {
                new_id: 2,
                old_id: 2,
                round_trip: 3,
            })
        );
    }

    // ---- SLineOutput ----

    #[test]
    fn built_slinegraphs_validate() {
        let h = paper_hypergraph();
        for s in 1..=4 {
            let plain = SLineBuilder::new(&h).s(s).csr();
            assert_eq!(
                SLineOutput {
                    csr: &plain,
                    repr: &h,
                    s
                }
                .validate(),
                Ok(()),
                "plain s={s}"
            );
            let weighted = SLineBuilder::new(&h).s(s).weighted_csr();
            assert_eq!(
                SLineOutput {
                    csr: &weighted,
                    repr: &h,
                    s
                }
                .validate(),
                Ok(()),
                "weighted s={s}"
            );
        }
    }

    #[test]
    fn sline_detects_self_loop() {
        let h = paper_hypergraph();
        let csr = Csr::from_raw_parts(4, vec![0, 1, 1, 1, 1], vec![0], None);
        assert_eq!(
            SLineOutput {
                csr: &csr,
                repr: &h,
                s: 1
            }
            .validate(),
            Err(InvariantViolation::SelfLoop { vertex: 0 })
        );
    }

    #[test]
    fn sline_detects_asymmetry() {
        let h = paper_hypergraph();
        // (0, 1) without (1, 0)
        let csr = Csr::from_raw_parts(4, vec![0, 1, 1, 1, 1], vec![1], None);
        assert_eq!(
            SLineOutput {
                csr: &csr,
                repr: &h,
                s: 1
            }
            .validate(),
            Err(InvariantViolation::NotSymmetric {
                source: 0,
                target: 1,
            })
        );
    }

    #[test]
    fn sline_detects_overlap_below_threshold() {
        let h = paper_hypergraph();
        // e0 ∩ e1 = {3}: a 1-overlap pair claimed at s = 2
        let csr = Csr::from_raw_parts(4, vec![0, 1, 2, 2, 2], vec![1, 0], None);
        assert_eq!(
            SLineOutput {
                csr: &csr,
                repr: &h,
                s: 2
            }
            .validate(),
            Err(InvariantViolation::OverlapBelowThreshold {
                e: 0,
                f: 1,
                overlap: 1,
                s: 2,
            })
        );
    }

    #[test]
    fn sline_detects_wrong_weight() {
        let h = paper_hypergraph();
        // e0 ∩ e1 = {3}, so the weight must be 1.0, not 0.5
        let csr = Csr::from_raw_parts(4, vec![0, 1, 2, 2, 2], vec![1, 0], Some(vec![0.5, 0.5]));
        let got = SLineOutput {
            csr: &csr,
            repr: &h,
            s: 1,
        }
        .validate();
        assert_eq!(
            got,
            Err(InvariantViolation::WeightMismatch {
                e: 0,
                f: 1,
                weight: 0.5,
                expected: 1.0,
            })
        );
    }

    #[test]
    fn violations_display_their_location() {
        let v = InvariantViolation::TargetOutOfBounds {
            source: 3,
            position: 1,
            target: 9,
            num_targets: 5,
        };
        let msg = v.to_string();
        assert!(
            msg.contains('3') && msg.contains('9') && msg.contains('5'),
            "{msg}"
        );
    }

    #[test]
    fn sorted_intersection_size_counts_matches() {
        assert_eq!(sorted_intersection_size(&[0, 2, 4], &[1, 2, 4, 5]), 2);
        assert_eq!(sorted_intersection_size(&[], &[1]), 0);
    }
}
