//! Hypergraph transformations: restriction, filtering, collapsing.
//!
//! The HyperNetX workflows NWHy backs (§V: "HyperNetX … can use our NWHy
//! Python APIs") lean on a small algebra of hypergraph edits before
//! analysis — restricting to a node subset, dropping degenerate
//! hyperedges, collapsing duplicates. These are the parallel Rust
//! equivalents; every operation returns a fresh [`Hypergraph`] and a
//! mapping back to the original IDs where the ID space changes.

use crate::algorithms::toplex::toplexes;
use crate::biedgelist::BiEdgeList;
use crate::hypergraph::Hypergraph;
use crate::ids;
use crate::Id;
use nwhy_util::fxhash::{FxHashMap, FxHashSet};
use rayon::prelude::*;

/// Restricts `h` to the hypernodes in `keep` (the *induced
/// sub-hypergraph*): hyperedges lose members outside `keep`; hypernode
/// IDs are compacted. Returns the restriction and `node_map` where
/// `node_map[new] = old`. Hyperedge IDs are unchanged (edges may become
/// empty).
pub fn induced_subhypergraph(h: &Hypergraph, keep: &[Id]) -> (Hypergraph, Vec<Id>) {
    let keep_set: FxHashSet<Id> = keep.iter().copied().collect();
    let mut node_map: Vec<Id> = keep_set.iter().copied().collect();
    node_map.sort_unstable();
    let inverse: FxHashMap<Id, Id> = node_map
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, ids::from_usize(new)))
        .collect();

    let incidences: Vec<(Id, Id)> = h
        .edges()
        .par_iter()
        .flat_map_iter(|(e, members)| {
            let inverse = &inverse;
            members
                .iter()
                .filter_map(move |v| inverse.get(v).map(|&nv| (e, nv)))
        })
        .collect();
    let bel = BiEdgeList::from_incidences(h.num_hyperedges(), node_map.len(), incidences);
    (Hypergraph::from_biedgelist(&bel), node_map)
}

/// Drops hyperedges whose size is outside `[min_size, max_size]`.
/// Returns the filtered hypergraph and `edge_map[new] = old`. The
/// hypernode ID space is unchanged.
pub fn filter_edges_by_size(
    h: &Hypergraph,
    min_size: usize,
    max_size: usize,
) -> (Hypergraph, Vec<Id>) {
    let edge_map: Vec<Id> = (0..ids::from_usize(h.num_hyperedges()))
        .filter(|&e| {
            let d = h.edge_degree(e);
            d >= min_size && d <= max_size
        })
        .collect();
    let incidences: Vec<(Id, Id)> = edge_map
        .par_iter()
        .enumerate()
        .flat_map_iter(|(new, &old)| {
            h.edge_members(old)
                .iter()
                .map(move |&v| (ids::from_usize(new), v))
        })
        .collect();
    let bel = BiEdgeList::from_incidences(edge_map.len(), h.num_hypernodes(), incidences);
    (Hypergraph::from_biedgelist(&bel), edge_map)
}

/// Collapses hyperedges that are equal *as sets*, keeping the smallest
/// ID of each class. Returns the collapsed hypergraph and, per surviving
/// hyperedge, the list of original IDs it represents (its multiplicity
/// class) — HyperNetX's `collapse_edges` bookkeeping.
pub fn collapse_duplicate_edges(h: &Hypergraph) -> (Hypergraph, Vec<Vec<Id>>) {
    let mut classes: FxHashMap<&[Id], Vec<Id>> = FxHashMap::default();
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        classes.entry(h.edge_members(e)).or_default().push(e);
    }
    let mut reps: Vec<Vec<Id>> = classes.into_values().collect();
    // members are pushed in increasing e, so class[0] is the smallest ID
    reps.sort_unstable_by_key(|class| class[0]);

    let incidences: Vec<(Id, Id)> = reps
        .iter()
        .enumerate()
        .flat_map(|(new, class)| {
            h.edge_members(class[0])
                .iter()
                .map(move |&v| (ids::from_usize(new), v))
        })
        .collect();
    let bel = BiEdgeList::from_incidences(reps.len(), h.num_hypernodes(), incidences);
    (Hypergraph::from_biedgelist(&bel), reps)
}

/// Removes hyperedges with no members. Returns the cleaned hypergraph
/// and `edge_map[new] = old`.
pub fn remove_empty_edges(h: &Hypergraph) -> (Hypergraph, Vec<Id>) {
    filter_edges_by_size(h, 1, usize::MAX)
}

/// Restricts to the *toplexes* (maximal hyperedges) — the simplification
/// HyperNetX calls `restrict_to_edges(toplexes)`: every containment
/// relation is preserved because non-maximal edges are subsets of kept
/// ones. Returns the simplified hypergraph and `edge_map[new] = old`.
pub fn restrict_to_toplexes(h: &Hypergraph) -> (Hypergraph, Vec<Id>) {
    let tops = toplexes(h);
    let incidences: Vec<(Id, Id)> = tops
        .par_iter()
        .enumerate()
        .flat_map_iter(|(new, &old)| {
            h.edge_members(old)
                .iter()
                .map(move |&v| (ids::from_usize(new), v))
        })
        .collect();
    let bel = BiEdgeList::from_incidences(tops.len(), h.num_hypernodes(), incidences);
    (Hypergraph::from_biedgelist(&bel), tops)
}

/// Disjoint union: hyperedge and hypernode ID spaces of `b` are shifted
/// past `a`'s.
pub fn disjoint_union(a: &Hypergraph, b: &Hypergraph) -> Hypergraph {
    let ne = a.num_hyperedges();
    let nv = a.num_hypernodes();
    let mut incidences: Vec<(Id, Id)> = Vec::with_capacity(a.num_incidences() + b.num_incidences());
    for e in 0..ids::from_usize(ne) {
        for &v in a.edge_members(e) {
            incidences.push((e, v));
        }
    }
    // shift b's storage words past a's spaces through the audited funnel
    let (e_shift, v_shift) = (ids::from_usize(ne), ids::from_usize(nv));
    for e in 0..ids::from_usize(b.num_hyperedges()) {
        for &v in b.edge_members(e) {
            incidences.push((e + e_shift, v + v_shift));
        }
    }
    let bel =
        BiEdgeList::from_incidences(ne + b.num_hyperedges(), nv + b.num_hypernodes(), incidences);
    Hypergraph::from_biedgelist(&bel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{nested_hypergraph, paper_hypergraph};

    #[test]
    fn induced_subhypergraph_compacts_nodes() {
        let h = paper_hypergraph();
        // keep nodes {0, 2, 3, 5}
        let (sub, node_map) = induced_subhypergraph(&h, &[0, 2, 3, 5]);
        assert_eq!(node_map, vec![0, 2, 3, 5]);
        assert_eq!(sub.num_hypernodes(), 4);
        assert_eq!(sub.num_hyperedges(), 4);
        // e0 = {0,1,2,3} → {0,2,3} → new IDs {0,1,2}
        assert_eq!(sub.edge_members(0), &[0, 1, 2]);
        // e2 = {4,5,6,7,8} → {5} → new ID {3}
        assert_eq!(sub.edge_members(2), &[3]);
        // e3 = {0,2,3,5} survives fully
        assert_eq!(sub.edge_members(3), &[0, 1, 2, 3]);
    }

    #[test]
    fn induced_with_duplicate_keep_ids() {
        let h = paper_hypergraph();
        let (sub, node_map) = induced_subhypergraph(&h, &[3, 3, 0]);
        assert_eq!(node_map, vec![0, 3]);
        assert_eq!(sub.num_hypernodes(), 2);
    }

    #[test]
    fn filter_by_size_bounds() {
        let h = nested_hypergraph(); // sizes 4, 2, 1, 2, 2
        let (f, edge_map) = filter_edges_by_size(&h, 2, 2);
        assert_eq!(edge_map, vec![1, 3, 4]);
        assert_eq!(f.num_hyperedges(), 3);
        assert_eq!(f.edge_members(0), h.edge_members(1));
        assert_eq!(f.num_hypernodes(), h.num_hypernodes());
    }

    #[test]
    fn collapse_duplicates_keeps_classes() {
        let h = nested_hypergraph(); // t1 = t4 = {1,2}
        let (c, classes) = collapse_duplicate_edges(&h);
        assert_eq!(c.num_hyperedges(), 4);
        let dup_class = classes.iter().find(|cl| cl.len() == 2).unwrap();
        assert_eq!(dup_class, &vec![1, 4]);
        // every class representative keeps its member set
        for (new, class) in classes.iter().enumerate() {
            assert_eq!(
                c.edge_members(ids::from_usize(new)),
                h.edge_members(class[0])
            );
        }
    }

    #[test]
    fn remove_empty_edges_cleans() {
        let h = Hypergraph::from_memberships(&[vec![], vec![0, 1], vec![]]);
        let (c, edge_map) = remove_empty_edges(&h);
        assert_eq!(edge_map, vec![1]);
        assert_eq!(c.num_hyperedges(), 1);
        assert_eq!(c.edge_members(0), &[0, 1]);
    }

    #[test]
    fn restrict_to_toplexes_simplifies() {
        let h = nested_hypergraph();
        let (t, edge_map) = restrict_to_toplexes(&h);
        assert_eq!(edge_map, vec![0, 3]);
        assert_eq!(t.num_hyperedges(), 2);
        assert_eq!(t.edge_members(0), h.edge_members(0));
        assert_eq!(t.edge_members(1), h.edge_members(3));
        // node coverage preserved: every incident node stays incident
        for v in 0..ids::from_usize(h.num_hypernodes()) {
            if h.node_degree(v) > 0 {
                assert!(t.node_degree(v) > 0, "node {v} lost coverage");
            }
        }
    }

    #[test]
    fn disjoint_union_shifts_ids() {
        let a = Hypergraph::from_memberships(&[vec![0, 1]]);
        let b = Hypergraph::from_memberships(&[vec![0], vec![0, 1]]);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.num_hyperedges(), 3);
        assert_eq!(u.num_hypernodes(), 4);
        assert_eq!(u.edge_members(0), &[0, 1]);
        assert_eq!(u.edge_members(1), &[2]);
        assert_eq!(u.edge_members(2), &[2, 3]);
        // the union has one component per operand component
        let cc = crate::algorithms::hyper_cc::hyper_cc(&u);
        assert_eq!(cc.num_components(), 2);
    }

    #[test]
    fn empty_operations() {
        let h = Hypergraph::from_memberships(&[]);
        assert_eq!(induced_subhypergraph(&h, &[]).0.num_hyperedges(), 0);
        assert_eq!(collapse_duplicate_edges(&h).0.num_hyperedges(), 0);
        assert_eq!(restrict_to_toplexes(&h).0.num_hyperedges(), 0);
    }

    #[test]
    fn transformations_compose_with_analysis() {
        // restriction to toplexes must not change 1-line connectivity of
        // the surviving edges' component structure over nodes
        let h = paper_hypergraph();
        let (t, _) = restrict_to_toplexes(&h);
        let before = crate::algorithms::hyper_cc::hyper_cc(&h).num_components();
        let after = crate::algorithms::hyper_cc::hyper_cc(&t).num_components();
        assert_eq!(before, after);
    }
}
