//! Representation abstraction for s-line construction: the
//! [`HyperAdjacency`] trait and its zero-copy adapter views.
//!
//! Every s-line algorithm needs exactly one structural capability — the
//! bipartite indirection *hyperedge → incident hypernodes → incident
//! hyperedges*. This module captures that capability as a trait so one
//! generic implementation of each algorithm runs unchanged on:
//!
//! - the bi-adjacency [`Hypergraph`] (two mutually indexed index sets,
//!   §III-B.1);
//! - the [`AdjoinGraph`] (one shared index set with hypernodes shifted by
//!   `n_e`, §III-B.2);
//! - [`DualView`] — the dual hypergraph `H*` without materializing it
//!   (hyperedges and hypernodes swap roles by swapping the two CSR
//!   accessors);
//! - [`RelabeledView`] — a degree-permuted hyperedge ID space layered
//!   over any other representation, without rebuilding a single CSR.
//!
//! Two ID spaces are in play and the trait keeps them straight:
//!
//! - the **working hyperedge space** `[0, n_e)` — what callers iterate
//!   and what results are expressed in;
//! - the **raw ID space** — whatever the underlying storage happens to
//!   put in `node_neighbors` slices (shifted for adjoin graphs is *not*
//!   an example — adjoin hyperedges already live in `[0, n_e)`; permuted
//!   IDs under [`RelabeledView`] are). [`HyperAdjacency::edge_id`]
//!   translates raw → working and is the identity for every direct
//!   representation, so the translation costs nothing unless a view
//!   actually needs it.

use crate::adjoin::AdjoinGraph;
use crate::hypergraph::Hypergraph;
use crate::ids::{self, AdjoinId, HyperedgeId, HypernodeId};
use crate::Id;

/// The bipartite indirection every s-line construction needs: hyperedge →
/// incident hypernodes → incident hyperedges. Implemented by both the
/// bi-adjacency [`Hypergraph`] (two index sets) and the [`AdjoinGraph`]
/// (one shared index set) — exactly the versatility the paper's
/// queue-based algorithms are designed for — plus the zero-copy
/// [`DualView`] and [`RelabeledView`] adapters.
pub trait HyperAdjacency: Sync {
    /// The neighbor-list handle: anything that derefs to a sorted
    /// `[Id]` slice. In-memory representations use `&'a [Id]` (zero
    /// cost — the borrow points straight into the CSR); compressed
    /// backends (`nwhy-store`) return an owned decode buffer
    /// (`Vec<Id>`), which is what lets a gap-coded on-disk row satisfy
    /// the same bound without materializing the whole structure.
    ///
    /// Generic code treats the handle as a slice: bind it (`let nbrs =
    /// h.edge_neighbors(e);`), then index/iterate through deref
    /// (`nbrs.len()`, `nbrs.iter()`, `&nbrs[1..]`, `&*nbrs`).
    /// `Send` so a parallel kernel can keep a decoded row cached inside
    /// its per-worker fold state (queue-intersection phase 2 reuses the
    /// row across consecutive pairs sharing `e_i`).
    type Neighbors<'a>: std::ops::Deref<Target = [Id]> + Send
    where
        Self: 'a;

    /// Number of hyperedges. Working hyperedge IDs are `[0, n_e)`.
    fn num_hyperedges(&self) -> usize;

    /// Number of hypernodes. Hypernode *indices* are `[0, n_v)`; the
    /// representation-defined hypernode ID for index `i` is
    /// [`HyperAdjacency::node_id`]`(i)`.
    fn num_hypernodes(&self) -> usize;

    /// Hypernodes incident to hyperedge `e` (working ID), sorted. The
    /// hypernode ID space is representation-defined (shifted for adjoin
    /// graphs) but consistent with [`HyperAdjacency::node_neighbors`].
    fn edge_neighbors(&self, e: Id) -> Self::Neighbors<'_>;

    /// Hyperedges incident to hypernode `v` (in the same hypernode ID
    /// space as [`HyperAdjacency::edge_neighbors`]), sorted. Entries are
    /// *raw* hyperedge IDs — pass each through
    /// [`HyperAdjacency::edge_id`] before comparing with working IDs.
    fn node_neighbors(&self, v: Id) -> Self::Neighbors<'_>;

    /// Size of hyperedge `e` (working ID).
    #[inline]
    fn edge_degree(&self, e: Id) -> usize {
        self.edge_neighbors(e).len()
    }

    /// Number of hyperedges containing hypernode `v` (hypernode ID
    /// space).
    #[inline]
    fn node_degree(&self, v: Id) -> usize {
        self.node_neighbors(v).len()
    }

    /// Translates a raw hyperedge ID (as stored in
    /// [`HyperAdjacency::node_neighbors`] slices) into the working
    /// hyperedge ID space. Identity for direct representations;
    /// [`RelabeledView`] maps old → new here.
    #[inline]
    fn edge_id(&self, raw: Id) -> Id {
        raw
    }

    /// The hypernode ID for hypernode index `idx ∈ [0, n_v)` — what to
    /// feed [`HyperAdjacency::node_neighbors`] when iterating all
    /// hypernodes. Identity for bi-adjacencies; adjoin graphs shift by
    /// `n_e`.
    #[inline]
    fn node_id(&self, idx: usize) -> Id {
        ids::from_usize(idx)
    }

    /// Inverse of [`HyperAdjacency::node_id`]: the dense hypernode index
    /// `[0, n_v)` of a representation-defined hypernode handle (an entry
    /// of an [`HyperAdjacency::edge_neighbors`] slice). Identity for
    /// bi-adjacencies; adjoin graphs subtract `n_e`. What the generic
    /// traversal algorithms use to index per-hypernode state.
    #[inline]
    fn node_index(&self, handle: Id) -> usize {
        ids::to_usize(handle)
    }

    // ---- domain-typed methods -------------------------------------
    //
    // The methods above are the *raw storage layer*: they speak the
    // representation's working ID space in bare `Id` words, which is
    // what the kernels iterate. The methods below speak the typed
    // global domains of `crate::ids` and do any working↔global
    // translation internally, so callers above the kernel layer never
    // touch a raw word. (For `DualView` the "hyperedge" domain is the
    // view's own — i.e. the primal's hypernodes.)

    /// Lifts a raw stored hyperedge word (from a
    /// [`HyperAdjacency::node_neighbors`] slice) into the global
    /// hyperedge domain.
    #[inline]
    fn global_edge(&self, raw: Id) -> HyperedgeId {
        HyperedgeId::new(self.edge_id(raw))
    }

    /// Lowers a global hyperedge into this representation's working ID
    /// space (what [`HyperAdjacency::edge_neighbors`] expects).
    #[inline]
    fn working_edge(&self, e: HyperedgeId) -> Id {
        e.raw()
    }

    /// Degree of a global-domain hyperedge.
    #[inline]
    fn degree_of(&self, e: HyperedgeId) -> usize {
        let w = self.working_edge(e);
        self.edge_degree(w)
    }

    /// The representation-defined handle of a global-domain hypernode
    /// (what [`HyperAdjacency::node_neighbors`] expects); adjoin graphs
    /// embed into the shared index set here.
    #[inline]
    fn node_handle(&self, v: HypernodeId) -> Id {
        v.raw()
    }

    /// Degree (number of incident hyperedges) of a global-domain
    /// hypernode.
    #[inline]
    fn node_degree_of(&self, v: HypernodeId) -> usize {
        let h = self.node_handle(v);
        self.node_degree(h)
    }
}

impl HyperAdjacency for Hypergraph {
    type Neighbors<'a>
        = &'a [Id]
    where
        Self: 'a;

    #[inline]
    fn num_hyperedges(&self) -> usize {
        Hypergraph::num_hyperedges(self)
    }
    #[inline]
    fn num_hypernodes(&self) -> usize {
        Hypergraph::num_hypernodes(self)
    }
    #[inline]
    fn edge_neighbors(&self, e: Id) -> &[Id] {
        self.edge_members(e)
    }
    #[inline]
    fn node_neighbors(&self, v: Id) -> &[Id] {
        self.node_memberships(v)
    }
    #[inline]
    fn edge_degree(&self, e: Id) -> usize {
        Hypergraph::edge_degree(self, e)
    }
    #[inline]
    fn node_degree(&self, v: Id) -> usize {
        Hypergraph::node_degree(self, v)
    }
}

impl HyperAdjacency for AdjoinGraph {
    type Neighbors<'a>
        = &'a [Id]
    where
        Self: 'a;

    #[inline]
    fn num_hyperedges(&self) -> usize {
        AdjoinGraph::num_hyperedges(self)
    }
    #[inline]
    fn num_hypernodes(&self) -> usize {
        AdjoinGraph::num_hypernodes(self)
    }
    #[inline]
    fn edge_neighbors(&self, e: Id) -> &[Id] {
        self.graph().neighbors(e)
    }
    #[inline]
    fn node_neighbors(&self, v: Id) -> &[Id] {
        self.graph().neighbors(v)
    }
    /// Hypernodes share the index set with hyperedges: the embedding is
    /// owned by [`AdjoinId::from_node`].
    #[inline]
    fn node_id(&self, idx: usize) -> Id {
        AdjoinId::from_node(
            HypernodeId::from_index(idx),
            AdjoinGraph::num_hyperedges(self),
        )
        .raw()
    }

    /// Un-embeds a shared-index-set handle back to a dense hypernode
    /// index.
    #[inline]
    fn node_index(&self, handle: Id) -> usize {
        ids::to_usize(handle) - AdjoinGraph::num_hyperedges(self)
    }

    #[inline]
    fn node_handle(&self, v: HypernodeId) -> Id {
        self.hypernode_id(v).raw()
    }
}

/// The dual hypergraph `H*` as a zero-copy view: hyperedges and
/// hypernodes swap roles by swapping the two bi-adjacency accessors
/// (§II-C). Unlike [`Hypergraph::dual`], nothing is cloned.
///
/// # Examples
///
/// ```
/// use nwhy_core::repr::{DualView, HyperAdjacency};
/// use nwhy_core::Hypergraph;
///
/// let h = Hypergraph::from_memberships(&[vec![0, 1], vec![1, 2]]);
/// let d = DualView::new(&h);
/// assert_eq!(d.num_hyperedges(), 3); // hypernodes of h
/// assert_eq!(d.edge_neighbors(1), &[0, 1]); // node 1 ∈ e0, e1
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DualView<'a> {
    inner: &'a Hypergraph,
}

impl<'a> DualView<'a> {
    /// Wraps `h` as its dual.
    pub fn new(inner: &'a Hypergraph) -> Self {
        Self { inner }
    }

    /// The underlying (primal) hypergraph.
    pub fn inner(&self) -> &'a Hypergraph {
        self.inner
    }
}

impl HyperAdjacency for DualView<'_> {
    type Neighbors<'b>
        = &'b [Id]
    where
        Self: 'b;

    #[inline]
    fn num_hyperedges(&self) -> usize {
        self.inner.num_hypernodes()
    }
    #[inline]
    fn num_hypernodes(&self) -> usize {
        self.inner.num_hyperedges()
    }
    #[inline]
    fn edge_neighbors(&self, e: Id) -> &[Id] {
        self.inner.node_memberships(e)
    }
    #[inline]
    fn node_neighbors(&self, v: Id) -> &[Id] {
        self.inner.edge_members(v)
    }
    #[inline]
    fn edge_degree(&self, e: Id) -> usize {
        self.inner.node_degree(e)
    }
    #[inline]
    fn node_degree(&self, v: Id) -> usize {
        self.inner.edge_degree(v)
    }
}

/// A degree-relabeled hyperedge ID space layered over any representation
/// — zero-copy: no CSR is rebuilt, no membership list is cloned.
///
/// `perm[new] = old` maps working (relabeled) IDs to the inner
/// representation's IDs; `inv[old] = new` is its inverse. Edge
/// neighborhoods are fetched through `perm`; raw hyperedge IDs coming
/// back out of `node_neighbors` slices are translated through `inv` by
/// [`HyperAdjacency::edge_id`]. Hypernode IDs are untouched.
///
/// This is what makes degree relabeling (§III-B.2 / the Fig. 9
/// "relabel asc/desc" sweep) a view rather than a reconstruction: the
/// old path rebuilt the whole bi-adjacency through a `BiEdgeList`.
///
/// # Examples
///
/// ```
/// use nwhy_core::repr::{HyperAdjacency, RelabeledView};
/// use nwhy_core::Hypergraph;
///
/// let h = Hypergraph::from_memberships(&[vec![0], vec![0, 1], vec![0, 1, 2]]);
/// // descending by degree: new 0 = old 2, new 1 = old 1, new 2 = old 0
/// let perm = vec![2, 1, 0];
/// let inv = vec![2, 1, 0];
/// let v = RelabeledView::new(&h, &perm, &inv);
/// assert_eq!(v.edge_neighbors(0), &[0, 1, 2]); // old hyperedge 2
/// assert_eq!(v.edge_id(2), 0); // raw (old) 2 is working (new) 0
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RelabeledView<'a, A: ?Sized> {
    inner: &'a A,
    /// `perm[new] = old`.
    perm: &'a [Id],
    /// `inv[old] = new`.
    inv: &'a [Id],
}

impl<'a, A: HyperAdjacency + ?Sized> RelabeledView<'a, A> {
    /// Wraps `inner` with the hyperedge permutation `perm` (new → old)
    /// and its inverse `inv` (old → new).
    ///
    /// # Panics
    /// Panics if either slice's length differs from
    /// `inner.num_hyperedges()`.
    pub fn new(inner: &'a A, perm: &'a [Id], inv: &'a [Id]) -> Self {
        assert_eq!(perm.len(), inner.num_hyperedges(), "perm size mismatch");
        assert_eq!(inv.len(), perm.len(), "inv size mismatch");
        Self { inner, perm, inv }
    }

    /// Wraps `inner` with an owned, pre-validated [`Relabeling`]
    /// (zero-copy: the view borrows the relabeling's slices).
    ///
    /// # Panics
    /// Panics if the relabeling's length differs from
    /// `inner.num_hyperedges()`.
    pub fn from_relabeling(inner: &'a A, relabeling: &'a crate::ids::Relabeling) -> Self {
        Self::new(inner, relabeling.perm(), relabeling.inv())
    }

    /// The permutation `perm[new] = old`.
    pub fn perm(&self) -> &'a [Id] {
        self.perm
    }

    /// The inverse permutation `inv[old] = new`.
    pub fn inv(&self) -> &'a [Id] {
        self.inv
    }
}

impl<A: HyperAdjacency + ?Sized> HyperAdjacency for RelabeledView<'_, A> {
    /// Forwards the inner representation's handle type: relabeling is a
    /// pure ID permutation, so whatever the inner backend hands out
    /// (borrowed slice or decode buffer) passes through untouched.
    type Neighbors<'b>
        = A::Neighbors<'b>
    where
        Self: 'b;

    #[inline]
    fn num_hyperedges(&self) -> usize {
        self.inner.num_hyperedges()
    }
    #[inline]
    fn num_hypernodes(&self) -> usize {
        self.inner.num_hypernodes()
    }
    #[inline]
    fn edge_neighbors(&self, e: Id) -> A::Neighbors<'_> {
        self.inner.edge_neighbors(self.perm[ids::to_usize(e)])
    }
    #[inline]
    fn node_neighbors(&self, v: Id) -> A::Neighbors<'_> {
        self.inner.node_neighbors(v)
    }
    #[inline]
    fn edge_degree(&self, e: Id) -> usize {
        self.inner.edge_degree(self.perm[ids::to_usize(e)])
    }
    #[inline]
    fn node_degree(&self, v: Id) -> usize {
        self.inner.node_degree(v)
    }
    #[inline]
    fn edge_id(&self, raw: Id) -> Id {
        self.inv[ids::to_usize(self.inner.edge_id(raw))]
    }
    #[inline]
    fn node_id(&self, idx: usize) -> Id {
        self.inner.node_id(idx)
    }
    #[inline]
    fn node_index(&self, handle: Id) -> usize {
        self.inner.node_index(handle)
    }
    /// Raw words name *inner* hyperedges; the global domain is the
    /// inner representation's, unaffected by this view's permutation.
    #[inline]
    fn global_edge(&self, raw: Id) -> HyperedgeId {
        self.inner.global_edge(raw)
    }
    /// Global → inner working → this view's permuted working space.
    #[inline]
    fn working_edge(&self, e: HyperedgeId) -> Id {
        self.inv[ids::to_usize(self.inner.working_edge(e))]
    }
    #[inline]
    fn node_handle(&self, v: HypernodeId) -> Id {
        self.inner.node_handle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_hypergraph;

    /// Every representation must expose the same logical incidence
    /// structure; compare through the trait only.
    fn incidence_set<A: HyperAdjacency + ?Sized>(a: &A) -> Vec<(Id, Id)> {
        let mut out = Vec::new();
        for e in 0..ids::from_usize(a.num_hyperedges()) {
            for &v in a.edge_neighbors(e).iter() {
                out.push((e, v));
            }
        }
        out
    }

    #[test]
    fn hypergraph_and_adjoin_expose_consistent_indirection() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        assert_eq!(
            HyperAdjacency::num_hyperedges(&h),
            HyperAdjacency::num_hyperedges(&a)
        );
        assert_eq!(
            HyperAdjacency::num_hypernodes(&h),
            HyperAdjacency::num_hypernodes(&a)
        );
        // adjoin hypernode IDs are shifted, but the round trip through
        // node_id + node_neighbors + edge_id reaches the same hyperedges
        for idx in 0..HyperAdjacency::num_hypernodes(&h) {
            let via_h: Vec<Id> = h
                .node_neighbors(HyperAdjacency::node_id(&h, idx))
                .iter()
                .map(|&raw| HyperAdjacency::edge_id(&h, raw))
                .collect();
            let via_a: Vec<Id> = a
                .node_neighbors(HyperAdjacency::node_id(&a, idx))
                .iter()
                .map(|&raw| HyperAdjacency::edge_id(&a, raw))
                .collect();
            assert_eq!(via_h, via_a, "hypernode index {idx}");
        }
    }

    #[test]
    fn adjoin_node_id_shifts_by_ne() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        assert_eq!(HyperAdjacency::node_id(&a, 0), 4);
        assert_eq!(HyperAdjacency::node_id(&a, 8), 12);
        assert_eq!(HyperAdjacency::node_id(&h, 8), 8);
    }

    #[test]
    fn dual_view_matches_materialized_dual() {
        let h = paper_hypergraph();
        let d = h.dual();
        let v = DualView::new(&h);
        assert_eq!(
            incidence_set(&v),
            incidence_set(&d),
            "zero-copy dual view must equal Hypergraph::dual()"
        );
        assert_eq!(v.num_hyperedges(), d.num_hyperedges());
        assert_eq!(v.num_hypernodes(), d.num_hypernodes());
        for e in 0..ids::from_usize(v.num_hyperedges()) {
            assert_eq!(v.edge_degree(e), HyperAdjacency::edge_degree(&d, e));
        }
        for n in 0..ids::from_usize(v.num_hypernodes()) {
            assert_eq!(v.node_degree(n), HyperAdjacency::node_degree(&d, n));
        }
    }

    #[test]
    fn relabeled_view_permutes_edges_only() {
        let h = paper_hypergraph();
        // reverse the hyperedge IDs: new e = 3 - old e
        let perm: Vec<Id> = vec![3, 2, 1, 0];
        let inv: Vec<Id> = vec![3, 2, 1, 0];
        let v = RelabeledView::new(&h, &perm, &inv);
        for e in 0..4u32 {
            assert_eq!(v.edge_neighbors(e), h.edge_members(3 - e));
            assert_eq!(v.edge_degree(e), Hypergraph::edge_degree(&h, 3 - e));
        }
        // hypernode side untouched; raw hyperedge IDs translate via inv
        for n in 0..9u32 {
            let raw = v.node_neighbors(n);
            assert_eq!(raw, h.node_memberships(n));
            for &r in raw {
                assert_eq!(v.edge_id(r), 3 - r);
            }
        }
    }

    #[test]
    fn relabeled_view_stacks_on_adjoin() {
        let h = paper_hypergraph();
        let a = AdjoinGraph::from_hypergraph(&h);
        let perm: Vec<Id> = vec![1, 0, 3, 2];
        let inv: Vec<Id> = vec![1, 0, 3, 2];
        let v = RelabeledView::new(&a, &perm, &inv);
        // working edge 0 is adjoin edge 1; its neighbors are shifted nodes
        assert_eq!(v.edge_neighbors(0), a.graph().neighbors(1));
        // raw IDs from the (shifted) node side still translate correctly
        let node = HyperAdjacency::node_id(&v, 3); // hypernode 3 → adjoin 7
        assert_eq!(node, 7);
        let translated: Vec<Id> = v
            .node_neighbors(node)
            .iter()
            .map(|&r| v.edge_id(r))
            .collect();
        // hypernode 3 ∈ e0, e1, e3 (old) → {1, 0, 2} (new)
        assert_eq!(translated, vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "perm size mismatch")]
    fn relabeled_view_rejects_wrong_perm_len() {
        let h = paper_hypergraph();
        let perm: Vec<Id> = vec![0, 1];
        let inv: Vec<Id> = vec![0, 1];
        RelabeledView::new(&h, &perm, &inv);
    }
}
