//! Dense incidence/adjacency matrices for small hypergraphs.
//!
//! The paper explains its representations through explicit matrices: the
//! incidence matrix `B` (§II-C, Eq. 4), its transpose (the dual), and the
//! adjoin graph's block adjacency `A_G = [[0, Bᵀ], [B, 0]]` (Fig. 4).
//! This module materializes those views for *small* hypergraphs — as
//! debugging, teaching, and test artifacts (the CSR structures remain the
//! computational representation; a dense matrix is Θ(n·m) memory by
//! construction).

use crate::hypergraph::Hypergraph;
use crate::ids;
use std::fmt;

/// A dense 0/1 matrix with row/column labels for Display. Equality
/// compares shape and entries only (labels are presentation).
#[derive(Debug, Clone, Eq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>, // row-major
    row_prefix: &'static str,
    col_prefix: &'static str,
}

impl DenseMatrix {
    fn zeros(rows: usize, cols: usize, row_prefix: &'static str, col_prefix: &'static str) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
            row_prefix,
            col_prefix,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> u8 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    fn set(&mut self, r: usize, c: usize) {
        self.data[r * self.cols + c] = 1;
    }

    /// The transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows, self.col_prefix, self.row_prefix);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) == 1 {
                    t.set(c, r);
                }
            }
        }
        t
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x == 1).count()
    }

    /// `true` if square and equal to its transpose.
    pub fn is_symmetric(&self) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|r| (0..r).all(|c| self.get(r, c) == self.get(c, r)))
    }
}

impl PartialEq for DenseMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // header
        write!(f, "{:>4}", "")?;
        for c in 0..self.cols {
            write!(f, " {:>3}", format!("{}{}", self.col_prefix, c))?;
        }
        writeln!(f)?;
        for r in 0..self.rows {
            write!(f, "{:>4}", format!("{}{}", self.row_prefix, r))?;
            for c in 0..self.cols {
                write!(f, " {:>3}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The incidence matrix `B` of `h`: `n × m` (hypernodes × hyperedges),
/// `B[v][e] = 1` iff `v ∈ e` — Eq. 4 of the paper.
pub fn incidence_matrix(h: &Hypergraph) -> DenseMatrix {
    let mut b = DenseMatrix::zeros(h.num_hypernodes(), h.num_hyperedges(), "v", "e");
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        for &v in h.edge_members(e) {
            b.set(v as usize, e as usize);
        }
    }
    b
}

/// The dual's incidence matrix `Bᵀ` (`m × n`) — §II-C: "the transpose of
/// the incidence matrix is the dual of H".
pub fn dual_incidence_matrix(h: &Hypergraph) -> DenseMatrix {
    incidence_matrix(h).transpose()
}

/// The adjoin graph's block adjacency `A_G = [[0, Bᵀ], [B, 0]]` with
/// hyperedges first (IDs `0..m`) then hypernodes (`m..m+n`) — Fig. 4.
pub fn adjoin_adjacency_matrix(h: &Hypergraph) -> DenseMatrix {
    let m = h.num_hyperedges();
    let n = h.num_hypernodes();
    let mut a = DenseMatrix::zeros(m + n, m + n, "", "");
    for e in 0..ids::from_usize(m) {
        for &v in h.edge_members(e) {
            a.set(e as usize, m + v as usize);
            a.set(m + v as usize, e as usize);
        }
    }
    a
}

/// The clique-expansion adjacency over hypernodes (dense; Θ(n²)).
pub fn clique_adjacency_matrix(h: &Hypergraph) -> DenseMatrix {
    let n = h.num_hypernodes();
    let mut a = DenseMatrix::zeros(n, n, "v", "v");
    for e in 0..ids::from_usize(h.num_hyperedges()) {
        let members = h.edge_members(e);
        for (i, &u) in members.iter().enumerate() {
            for &w in &members[i + 1..] {
                a.set(u as usize, w as usize);
                a.set(w as usize, u as usize);
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjoin::AdjoinGraph;
    use crate::fixtures::paper_hypergraph;

    #[test]
    fn incidence_matches_memberships() {
        let h = paper_hypergraph();
        let b = incidence_matrix(&h);
        assert_eq!(b.rows(), 9);
        assert_eq!(b.cols(), 4);
        assert_eq!(b.nnz(), 18);
        for e in 0..4u32 {
            for v in 0..9u32 {
                let want = h.edge_members(e).contains(&v);
                assert_eq!(b.get(v as usize, e as usize) == 1, want, "({v},{e})");
            }
        }
    }

    #[test]
    fn dual_is_transpose() {
        let h = paper_hypergraph();
        assert_eq!(dual_incidence_matrix(&h), incidence_matrix(&h).transpose());
        assert_eq!(dual_incidence_matrix(&h), incidence_matrix(&h.dual()));
        assert_eq!(
            incidence_matrix(&h).transpose().transpose(),
            incidence_matrix(&h)
        );
    }

    #[test]
    fn adjoin_block_structure_matches_figure4() {
        let h = paper_hypergraph();
        let a = adjoin_adjacency_matrix(&h);
        assert_eq!(a.rows(), 13);
        assert!(a.is_symmetric());
        // top-left m×m block and bottom-right n×n block are zero
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a.get(i, j), 0, "edge-edge block ({i},{j})");
            }
        }
        for i in 4..13 {
            for j in 4..13 {
                assert_eq!(a.get(i, j), 0, "node-node block ({i},{j})");
            }
        }
        // off-diagonal blocks are B / Bᵀ
        let b = incidence_matrix(&h);
        for e in 0..4 {
            for v in 0..9 {
                assert_eq!(a.get(e, 4 + v), b.get(v, e));
            }
        }
        // and the dense matrix agrees with the CSR AdjoinGraph
        let ag = AdjoinGraph::from_hypergraph(&h);
        for (u, nbrs) in ag.graph().iter() {
            for &v in nbrs {
                assert_eq!(a.get(u as usize, v as usize), 1);
            }
        }
        assert_eq!(a.nnz(), ag.graph().num_edges());
    }

    #[test]
    fn clique_matrix_matches_csr_expansion() {
        let h = paper_hypergraph();
        let dense = clique_adjacency_matrix(&h);
        assert!(dense.is_symmetric());
        let csr = crate::clique::clique_expansion(&h);
        assert_eq!(dense.nnz(), csr.num_edges());
        for (u, nbrs) in csr.iter() {
            for &w in nbrs {
                assert_eq!(dense.get(u as usize, w as usize), 1);
            }
        }
    }

    #[test]
    fn display_renders_labels() {
        let h = Hypergraph::from_memberships(&[vec![0, 1]]);
        let s = incidence_matrix(&h).to_string();
        assert!(s.contains("e0"));
        assert!(s.contains("v1"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 node rows
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        let h = paper_hypergraph();
        incidence_matrix(&h).get(9, 0);
    }

    #[test]
    fn empty_matrices() {
        let h = Hypergraph::from_memberships(&[]);
        let b = incidence_matrix(&h);
        assert_eq!((b.rows(), b.cols(), b.nnz()), (0, 0, 0));
        assert!(adjoin_adjacency_matrix(&h).is_symmetric());
    }
}
