//! The bi-edge-list: incidence pairs staged for bi-adjacency construction.
//!
//! Mirrors the paper's `biedgelist` class (Listing 1): a flat list of
//! `(hyperedge, hypernode)` incidence pairs together with the cardinality
//! of both vertex partitions (`n0` hyperedges, `n1` hypernodes in the
//! paper's notation — "due to two separate index spaces, both the maximum
//! No. of vertices and the maximum No. of hyperedges information may be
//! required").

use crate::ids;
use crate::Id;

/// A list of hyperedge–hypernode incidences over two separate ID spaces,
/// with optional per-incidence weights (the `Attributes...` parameter of
/// the paper's `biedgelist` template / the `weight` array of Listing 5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BiEdgeList {
    num_hyperedges: usize,
    num_hypernodes: usize,
    incidences: Vec<(Id, Id)>,
    weights: Option<Vec<f64>>,
}

impl BiEdgeList {
    /// An empty list with the given partition cardinalities.
    pub fn new(num_hyperedges: usize, num_hypernodes: usize) -> Self {
        Self {
            num_hyperedges,
            num_hypernodes,
            incidences: Vec::new(),
            weights: None,
        }
    }

    /// Builds from raw incidence pairs.
    ///
    /// # Panics
    /// Panics if a pair is out of range.
    pub fn from_incidences(
        num_hyperedges: usize,
        num_hypernodes: usize,
        incidences: Vec<(Id, Id)>,
    ) -> Self {
        for &(e, v) in &incidences {
            assert!(
                (e as usize) < num_hyperedges,
                "hyperedge {e} out of range {num_hyperedges}"
            );
            assert!(
                (v as usize) < num_hypernodes,
                "hypernode {v} out of range {num_hypernodes}"
            );
        }
        Self {
            num_hyperedges,
            num_hypernodes,
            incidences,
            weights: None,
        }
    }

    /// Like [`BiEdgeList::from_incidences`] with per-incidence weights.
    ///
    /// # Panics
    /// Panics if lengths differ or a pair is out of range.
    pub fn from_weighted_incidences(
        num_hyperedges: usize,
        num_hypernodes: usize,
        incidences: Vec<(Id, Id)>,
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(
            incidences.len(),
            weights.len(),
            "incidences/weights length mismatch"
        );
        let mut bel = Self::from_incidences(num_hyperedges, num_hypernodes, incidences);
        bel.weights = Some(weights);
        bel
    }

    /// Builds from per-hyperedge membership lists (`memberships[e]` is the
    /// hypernode set of hyperedge `e`), inferring the hypernode count.
    pub fn from_memberships(memberships: &[Vec<Id>]) -> Self {
        let num_hyperedges = memberships.len();
        let num_hypernodes = memberships
            .iter()
            .flatten()
            .map(|&v| v as usize + 1)
            .max()
            .unwrap_or(0);
        let incidences = memberships
            .iter()
            .enumerate()
            .flat_map(|(e, vs)| vs.iter().map(move |&v| (ids::from_usize(e), v)))
            .collect();
        Self {
            num_hyperedges,
            num_hypernodes,
            incidences,
            weights: None,
        }
    }

    /// Number of hyperedges in the ID space (`n0`).
    #[inline]
    pub fn num_hyperedges(&self) -> usize {
        self.num_hyperedges
    }

    /// Number of hypernodes in the ID space (`n1`).
    #[inline]
    pub fn num_hypernodes(&self) -> usize {
        self.num_hypernodes
    }

    /// Number of incidence pairs (nonzeros of the incidence matrix).
    #[inline]
    pub fn num_incidences(&self) -> usize {
        self.incidences.len()
    }

    /// The raw incidence pairs.
    #[inline]
    pub fn incidences(&self) -> &[(Id, Id)] {
        &self.incidences
    }

    /// Optional per-incidence weights, parallel to
    /// [`BiEdgeList::incidences`].
    #[inline]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Appends one incidence.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn push(&mut self, hyperedge: Id, hypernode: Id) {
        assert!(
            (hyperedge as usize) < self.num_hyperedges,
            "hyperedge {hyperedge} out of range {}",
            self.num_hyperedges
        );
        assert!(
            (hypernode as usize) < self.num_hypernodes,
            "hypernode {hypernode} out of range {}",
            self.num_hypernodes
        );
        self.incidences.push((hyperedge, hypernode));
    }

    /// Sorts and removes duplicate incidences (a hypernode can only be in
    /// a hyperedge once; duplicate pairs typically come from noisy input
    /// files). For weighted lists the first occurrence's weight is kept.
    pub fn sort_dedup(&mut self) {
        match &mut self.weights {
            None => {
                self.incidences.sort_unstable();
                self.incidences.dedup();
            }
            Some(ws) => {
                let mut order: Vec<usize> = (0..self.incidences.len()).collect();
                let inc = &self.incidences;
                order.sort_by_key(|&i| inc[i]); // stable: first stays first
                let mut new_inc = Vec::with_capacity(order.len());
                let mut new_ws = Vec::with_capacity(order.len());
                for i in order {
                    if new_inc.last() != Some(&self.incidences[i]) {
                        new_inc.push(self.incidences[i]);
                        new_ws.push(ws[i]);
                    }
                }
                self.incidences = new_inc;
                *ws = new_ws;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_memberships_infers_sizes() {
        let bel = BiEdgeList::from_memberships(&[vec![0, 1, 2], vec![2, 4]]);
        assert_eq!(bel.num_hyperedges(), 2);
        assert_eq!(bel.num_hypernodes(), 5);
        assert_eq!(bel.num_incidences(), 5);
        assert!(bel.incidences().contains(&(1, 4)));
    }

    #[test]
    fn empty_membership_lists() {
        let bel = BiEdgeList::from_memberships(&[]);
        assert_eq!(bel.num_hyperedges(), 0);
        assert_eq!(bel.num_hypernodes(), 0);
        let bel = BiEdgeList::from_memberships(&[vec![], vec![]]);
        assert_eq!(bel.num_hyperedges(), 2);
        assert_eq!(bel.num_hypernodes(), 0);
    }

    #[test]
    fn push_and_bounds() {
        let mut bel = BiEdgeList::new(2, 3);
        bel.push(0, 2);
        bel.push(1, 0);
        assert_eq!(bel.num_incidences(), 2);
    }

    #[test]
    #[should_panic(expected = "hypernode 3 out of range")]
    fn push_rejects_bad_node() {
        let mut bel = BiEdgeList::new(2, 3);
        bel.push(0, 3);
    }

    #[test]
    #[should_panic(expected = "hyperedge 2 out of range")]
    fn from_incidences_rejects_bad_edge() {
        BiEdgeList::from_incidences(2, 3, vec![(2, 0)]);
    }

    #[test]
    fn sort_dedup_removes_duplicate_incidences() {
        let mut bel = BiEdgeList::from_incidences(2, 3, vec![(1, 2), (0, 1), (1, 2)]);
        bel.sort_dedup();
        assert_eq!(bel.incidences(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn weighted_incidences_roundtrip() {
        let bel = BiEdgeList::from_weighted_incidences(2, 3, vec![(0, 1), (1, 2)], vec![0.5, 2.0]);
        assert_eq!(bel.weights(), Some(&[0.5, 2.0][..]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_length_mismatch_rejected() {
        BiEdgeList::from_weighted_incidences(2, 3, vec![(0, 1)], vec![1.0, 2.0]);
    }

    #[test]
    fn weighted_sort_dedup_keeps_first_weight() {
        let mut bel = BiEdgeList::from_weighted_incidences(
            2,
            3,
            vec![(1, 2), (0, 1), (1, 2)],
            vec![9.0, 1.0, 5.0],
        );
        bel.sort_dedup();
        assert_eq!(bel.incidences(), &[(0, 1), (1, 2)]);
        assert_eq!(bel.weights(), Some(&[1.0, 9.0][..]));
    }
}
