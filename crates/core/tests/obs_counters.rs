//! Counter fixture tests: the s-line kernels must report *exact* work
//! counts on the paper's Fig. 1 fixture, pinning the counter semantics
//! (`pairs_examined` = pairs reaching per-pair work, `pairs_skipped` =
//! pairs eliminated by the degree filter) against hand-counted values.
#![cfg(feature = "obs")]

use nwhy_core::fixtures::paper_hypergraph;
use nwhy_core::{Algorithm, SLineBuilder};
use nwhy_obs::Counter;
use std::sync::Mutex;

/// The obs registry is process-global; serialize tests that reset it.
static GATE: Mutex<()> = Mutex::new(());

fn isolated<R>(f: impl FnOnce() -> R) -> R {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    nwhy_obs::reset();
    f()
}

/// Naive compares every hyperedge pair: on the Fig. 1 fixture (4
/// hyperedges, all with degree ≥ 1) it must examine exactly
/// C(4, 2) = 6 pairs at s = 1 and skip none.
#[test]
fn naive_examines_exactly_all_pairs_at_s1() {
    isolated(|| {
        let h = paper_hypergraph();
        let ne = h.num_hyperedges() as u64;
        let edges = SLineBuilder::new(&h)
            .s(1)
            .algorithm(Algorithm::Naive)
            .edges();
        assert_eq!(
            nwhy_obs::counter_value(Counter::SlinePairsExamined),
            ne * (ne - 1) / 2
        );
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsSkippedDegree), 0);
        assert_eq!(
            nwhy_obs::counter_value(Counter::SlineEdgesEmitted),
            edges.len() as u64
        );
    });
}

/// For naive, every unordered pair lands in exactly one of
/// examined/skipped, at every s: their sum is always C(n_e, 2).
#[test]
fn naive_examined_plus_skipped_is_all_pairs_at_every_s() {
    let h = paper_hypergraph();
    let ne = h.num_hyperedges() as u64;
    for s in 1..=5 {
        isolated(|| {
            let _ = SLineBuilder::new(&h)
                .s(s)
                .algorithm(Algorithm::Naive)
                .edges();
            let examined = nwhy_obs::counter_value(Counter::SlinePairsExamined);
            let skipped = nwhy_obs::counter_value(Counter::SlinePairsSkippedDegree);
            assert_eq!(examined + skipped, ne * (ne - 1) / 2, "s={s}");
        });
    }
}

/// Hashmap only examines pairs that actually share a hypernode: the
/// Fig. 1 fixture has exactly 5 overlapping pairs (its 1-line graph),
/// and one hashmap insertion per (shared node, pair) incidence.
#[test]
fn hashmap_examines_only_overlapping_pairs() {
    isolated(|| {
        let h = paper_hypergraph();
        let edges = SLineBuilder::new(&h)
            .s(1)
            .algorithm(Algorithm::Hashmap)
            .edges();
        assert_eq!(edges.len(), 5);
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 5);
        // Σ over pairs of |e ∩ f| — the fixture's overlaps are
        // 1+3+3+2+2 = 11 (see weighted.rs's overlap table).
        assert_eq!(nwhy_obs::counter_value(Counter::SlineHashmapInsertions), 11);
    });
}

/// The intersection kernel reports comparison work; on the fixture it
/// must examine the same 5 overlapping pairs as hashmap and burn at
/// least one comparison per examined pair.
#[test]
fn intersection_reports_comparisons() {
    isolated(|| {
        let h = paper_hypergraph();
        let _ = SLineBuilder::new(&h)
            .s(1)
            .algorithm(Algorithm::Intersection)
            .edges();
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 5);
        assert!(nwhy_obs::counter_value(Counter::SlineIntersectionComparisons) >= 5);
    });
}

/// The two-phase queue kernels push work items; their queue counters
/// must be live and their emitted-edge counts exact.
#[test]
fn queue_kernels_report_pushes() {
    let h = paper_hypergraph();
    for algo in [Algorithm::QueueHashmap, Algorithm::QueueIntersection] {
        isolated(|| {
            let edges = SLineBuilder::new(&h).s(1).algorithm(algo).edges();
            assert_eq!(edges.len(), 5, "{algo:?}");
            assert!(
                nwhy_obs::counter_value(Counter::SlineQueuePushes) > 0,
                "{algo:?}"
            );
            assert_eq!(
                nwhy_obs::counter_value(Counter::SlineEdgesEmitted),
                5,
                "{algo:?}"
            );
        });
    }
}
