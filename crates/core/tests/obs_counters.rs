//! Counter fixture tests: the s-line kernels must report *exact* work
//! counts on the paper's Fig. 1 fixture, pinning the counter semantics
//! (`pairs_examined` = pairs reaching per-pair work, `pairs_skipped` =
//! pairs eliminated by the degree filter) against hand-counted values.
#![cfg(feature = "obs")]

use nwhy_core::fixtures::paper_hypergraph;
use nwhy_core::{Algorithm, Hypergraph, Id, OverlapPath, OverlapPolicy, SLineBuilder};
use nwhy_obs::Counter;
use std::sync::Mutex;

/// The obs registry is process-global; serialize tests that reset it.
static GATE: Mutex<()> = Mutex::new(());

fn isolated<R>(f: impl FnOnce() -> R) -> R {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    nwhy_obs::reset();
    f()
}

/// Naive compares every hyperedge pair: on the Fig. 1 fixture (4
/// hyperedges, all with degree ≥ 1) it must examine exactly
/// C(4, 2) = 6 pairs at s = 1 and skip none.
#[test]
fn naive_examines_exactly_all_pairs_at_s1() {
    isolated(|| {
        let h = paper_hypergraph();
        let ne = h.num_hyperedges() as u64;
        let edges = SLineBuilder::new(&h)
            .s(1)
            .algorithm(Algorithm::Naive)
            .edges();
        assert_eq!(
            nwhy_obs::counter_value(Counter::SlinePairsExamined),
            ne * (ne - 1) / 2
        );
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsSkippedDegree), 0);
        assert_eq!(
            nwhy_obs::counter_value(Counter::SlineEdgesEmitted),
            edges.len() as u64
        );
    });
}

/// For naive, every unordered pair lands in exactly one of
/// examined/skipped, at every s: their sum is always C(n_e, 2).
#[test]
fn naive_examined_plus_skipped_is_all_pairs_at_every_s() {
    let h = paper_hypergraph();
    let ne = h.num_hyperedges() as u64;
    for s in 1..=5 {
        isolated(|| {
            let _ = SLineBuilder::new(&h)
                .s(s)
                .algorithm(Algorithm::Naive)
                .edges();
            let examined = nwhy_obs::counter_value(Counter::SlinePairsExamined);
            let skipped = nwhy_obs::counter_value(Counter::SlinePairsSkippedDegree);
            assert_eq!(examined + skipped, ne * (ne - 1) / 2, "s={s}");
        });
    }
}

/// Hashmap only examines pairs that actually share a hypernode: the
/// Fig. 1 fixture has exactly 5 overlapping pairs (its 1-line graph),
/// and one hashmap insertion per (shared node, pair) incidence.
#[test]
fn hashmap_examines_only_overlapping_pairs() {
    isolated(|| {
        let h = paper_hypergraph();
        let edges = SLineBuilder::new(&h)
            .s(1)
            .algorithm(Algorithm::Hashmap)
            .edges();
        assert_eq!(edges.len(), 5);
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 5);
        // Σ over pairs of |e ∩ f| — the fixture's overlaps are
        // 1+3+3+2+2 = 11 (see weighted.rs's overlap table).
        assert_eq!(nwhy_obs::counter_value(Counter::SlineHashmapInsertions), 11);
    });
}

/// The intersection kernel reports comparison work; on the fixture it
/// must examine the same 5 overlapping pairs as hashmap and burn at
/// least one comparison per examined pair.
#[test]
fn intersection_reports_comparisons() {
    isolated(|| {
        let h = paper_hypergraph();
        let _ = SLineBuilder::new(&h)
            .s(1)
            .algorithm(Algorithm::Intersection)
            .edges();
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 5);
        assert!(nwhy_obs::counter_value(Counter::SlineIntersectionComparisons) >= 5);
    });
}

/// A constructed skewed input where every overlap path fires a known
/// number of times under the adaptive rule (BITSET_ROW_MIN_DEGREE = 32,
/// GALLOP_RATIO = 8), pinning the `overlap.path_*` counter semantics:
///
/// - `e0` = {0..64}: 64 members ⇒ its row bitset loads, so all 4 of its
///   candidate pairs (e1..e4 each share a node) take the bitset path;
/// - `e1` = {0..16}: 16 members, not loaded. Candidates e2 (len 2,
///   ratio 8) and e3 (len 2, ratio 8) gallop; e4 (len 3, ratio 5)
///   merges;
/// - `e3` = {1,2} vs e4 = {1,2,3}: ratio 1 ⇒ merge.
///
/// Totals: 4 bitset + 2 gallop + 2 merge = 8 pairs examined.
#[test]
fn adaptive_paths_hit_exact_counts_on_skewed_fixture() {
    isolated(|| {
        let h = Hypergraph::from_memberships(&[
            (0..64).collect::<Vec<Id>>(),
            (0..16).collect(),
            vec![0, 64],
            vec![1, 2],
            vec![1, 2, 3],
        ]);
        let edges = SLineBuilder::new(&h)
            .s(1)
            .algorithm(Algorithm::Intersection)
            .edges();
        assert_eq!(edges.len(), 8, "every examined pair overlaps at s=1");
        assert_eq!(nwhy_obs::counter_value(Counter::SlinePairsExamined), 8);
        assert_eq!(nwhy_obs::counter_value(Counter::OverlapPathBitset), 4);
        assert_eq!(nwhy_obs::counter_value(Counter::OverlapPathGallop), 2);
        assert_eq!(nwhy_obs::counter_value(Counter::OverlapPathMerge), 2);
    });
}

/// Forcing one path routes every examined pair through it — and the
/// other two path counters stay at zero.
#[test]
fn forced_paths_route_every_pair() {
    let h = paper_hypergraph();
    for (path, counter) in [
        (OverlapPath::Merge, Counter::OverlapPathMerge),
        (OverlapPath::Gallop, Counter::OverlapPathGallop),
        (OverlapPath::Bitset, Counter::OverlapPathBitset),
    ] {
        isolated(|| {
            let _ = SLineBuilder::new(&h)
                .s(1)
                .algorithm(Algorithm::Intersection)
                .overlap(OverlapPolicy::Force(path))
                .edges();
            assert_eq!(
                nwhy_obs::counter_value(counter),
                5,
                "{} must take all 5 pairs",
                path.name()
            );
            let total = nwhy_obs::counter_value(Counter::OverlapPathMerge)
                + nwhy_obs::counter_value(Counter::OverlapPathGallop)
                + nwhy_obs::counter_value(Counter::OverlapPathBitset);
            assert_eq!(total, 5, "{}: other paths must stay silent", path.name());
        });
    }
}

/// `auto()` records exactly one planner decision per build, and the
/// planner's candidate-work feature `W = Σ_v C(d_v, 2)` equals the
/// hashmap kernel's insertion counter at s = 1 — the calibration
/// identity the cost model's doc claims.
#[test]
fn planner_counter_and_calibration_identity() {
    isolated(|| {
        let h = paper_hypergraph();
        let auto_edges = SLineBuilder::new(&h).s(1).auto().edges();
        assert_eq!(nwhy_obs::counter_value(Counter::PlannerKernelChosen), 1);
        let fixed = SLineBuilder::new(&h)
            .s(1)
            .algorithm(Algorithm::Naive)
            .edges();
        assert_eq!(auto_edges, fixed, "planner choice must not change results");
    });
    isolated(|| {
        let h = paper_hypergraph();
        let f = nwhy_core::slinegraph::planner::measure(&h, 1);
        let _ = SLineBuilder::new(&h)
            .s(1)
            .algorithm(Algorithm::Hashmap)
            .edges();
        assert_eq!(
            nwhy_obs::counter_value(Counter::SlineHashmapInsertions) as f64,
            f.candidate_work,
            "W feature must equal measured hashmap insertions at s=1"
        );
    });
}

/// The two-phase queue kernels push work items; their queue counters
/// must be live and their emitted-edge counts exact.
#[test]
fn queue_kernels_report_pushes() {
    let h = paper_hypergraph();
    for algo in [Algorithm::QueueHashmap, Algorithm::QueueIntersection] {
        isolated(|| {
            let edges = SLineBuilder::new(&h).s(1).algorithm(algo).edges();
            assert_eq!(edges.len(), 5, "{algo:?}");
            assert!(
                nwhy_obs::counter_value(Counter::SlineQueuePushes) > 0,
                "{algo:?}"
            );
            assert_eq!(
                nwhy_obs::counter_value(Counter::SlineEdgesEmitted),
                5,
                "{algo:?}"
            );
        });
    }
}
