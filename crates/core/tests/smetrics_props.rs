//! Property tests for s-metric semantics on arbitrary hypergraphs —
//! the mathematical laws the s-walk framework (Aksoy et al.) guarantees,
//! checked against this implementation.

use nwhy_core::ids;
use nwhy_core::smetrics::SLineGraph;
use nwhy_core::{Hypergraph, Id};
use proptest::prelude::*;

fn arb_memberships() -> impl Strategy<Value = Vec<Vec<Id>>> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..16, 0..7), 1..12)
        .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn s_distance_is_a_metric(ms in arb_memberships(), s in 1usize..4) {
        let h = Hypergraph::from_memberships(&ms);
        let lg = SLineGraph::new(&h, s);
        let n = ids::from_usize(lg.num_vertices());
        // identity and symmetry
        for a in 0..n {
            prop_assert_eq!(lg.s_distance(a, a), Some(0));
            for b in 0..n {
                prop_assert_eq!(lg.s_distance(a, b), lg.s_distance(b, a));
            }
        }
        // triangle inequality on all defined triples
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if let (Some(ab), Some(bc), Some(ac)) =
                        (lg.s_distance(a, b), lg.s_distance(b, c), lg.s_distance(a, c))
                    {
                        prop_assert!(ac <= ab + bc, "d({a},{c}) > d({a},{b}) + d({b},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn s_path_realizes_s_distance(ms in arb_memberships(), s in 1usize..4) {
        let h = Hypergraph::from_memberships(&ms);
        let lg = SLineGraph::new(&h, s);
        let n = ids::from_usize(lg.num_vertices());
        for a in 0..n {
            for b in 0..n {
                match (lg.s_path(a, b), lg.s_distance(a, b)) {
                    (Some(p), Some(d)) => {
                        prop_assert_eq!(ids::from_usize(p.len()), d + 1);
                        prop_assert_eq!(p.first(), Some(&a));
                        prop_assert_eq!(p.last(), Some(&b));
                        // consecutive path hyperedges s-overlap
                        for w in p.windows(2) {
                            prop_assert!(lg.s_neighbors(w[0]).contains(&w[1]));
                        }
                    }
                    (None, None) => {}
                    (p, d) => prop_assert!(false, "path {p:?} vs distance {d:?}"),
                }
            }
        }
    }

    #[test]
    fn eccentricity_bounds_distances(ms in arb_memberships(), s in 1usize..3) {
        let h = Hypergraph::from_memberships(&ms);
        let lg = SLineGraph::new(&h, s);
        let ecc = lg.s_eccentricity(None);
        let n = ids::from_usize(lg.num_vertices());
        for a in 0..n {
            for b in 0..n {
                if let Some(d) = lg.s_distance(a, b) {
                    prop_assert!(d <= ecc[a as usize], "d({a},{b})={d} > ecc {}", ecc[a as usize]);
                }
            }
        }
        // diameter is the max ecc
        prop_assert_eq!(lg.s_diameter(), ecc.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn distances_monotone_in_s(ms in arb_memberships()) {
        // raising s can only break connections: distances non-decreasing
        let h = Hypergraph::from_memberships(&ms);
        let n = ids::from_usize(h.num_hyperedges());
        for s in 1usize..3 {
            let lo = SLineGraph::new(&h, s);
            let hi = SLineGraph::new(&h, s + 1);
            for a in 0..n {
                for b in 0..n {
                    match (lo.s_distance(a, b), hi.s_distance(a, b)) {
                        (Some(d1), Some(d2)) => prop_assert!(d1 <= d2),
                        (None, Some(_)) => prop_assert!(false, "connected at s+1 but not s"),
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn component_labels_agree_with_distances(ms in arb_memberships(), s in 1usize..4) {
        let h = Hypergraph::from_memberships(&ms);
        let lg = SLineGraph::new(&h, s);
        let labels = lg.s_connected_components();
        let n = ids::from_usize(lg.num_vertices());
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    labels[a as usize] == labels[b as usize],
                    lg.s_distance(a, b).is_some(),
                    "labels vs reachability for ({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn centralities_are_well_formed(ms in arb_memberships()) {
        let h = Hypergraph::from_memberships(&ms);
        let lg = SLineGraph::new(&h, 1);
        let bc = lg.s_betweenness_centrality(true);
        prop_assert!(bc.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        let cc = lg.s_closeness_centrality(None);
        prop_assert!(cc.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        let hc = lg.s_harmonic_closeness_centrality(None);
        let n = lg.num_vertices() as f64;
        prop_assert!(hc.iter().all(|&x| x >= 0.0 && x <= n));
        let pr = lg.s_pagerank(0.85);
        prop_assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }
}
