//! Vertex subsets — Ligra/Hygra frontiers.
//!
//! A frontier is either *sparse* (an unordered list of IDs) or *dense*
//! (a boolean array over the whole index space). The engine converts
//! between the two when the direction heuristic switches traversal modes.

use nwhy_core::ids;
use nwhy_core::Id;

/// A subset of a `0..n` ID space in sparse or dense form.
#[derive(Debug, Clone)]
pub struct VertexSubset {
    n: usize,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Sparse(Vec<Id>),
    Dense(Vec<bool>),
}

impl VertexSubset {
    /// An empty subset over `0..n`.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// A singleton subset.
    pub fn single(n: usize, v: Id) -> Self {
        assert!((v as usize) < n, "vertex {v} out of range {n}");
        Self {
            n,
            repr: Repr::Sparse(vec![v]),
        }
    }

    /// The full subset `0..n`.
    pub fn full(n: usize) -> Self {
        Self {
            n,
            repr: Repr::Dense(vec![true; n]),
        }
    }

    /// From a sparse ID list (IDs must be unique and in range).
    pub fn from_sparse(n: usize, ids: Vec<Id>) -> Self {
        debug_assert!(ids.iter().all(|&v| (v as usize) < n));
        Self {
            n,
            repr: Repr::Sparse(ids),
        }
    }

    /// From a dense membership vector.
    pub fn from_dense(flags: Vec<bool>) -> Self {
        Self {
            n: flags.len(),
            repr: Repr::Dense(flags),
        }
    }

    /// Size of the ID space.
    #[inline]
    pub fn space(&self) -> usize {
        self.n
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(ids) => ids.len(),
            Repr::Dense(flags) => flags.iter().filter(|&&b| b).count(),
        }
    }

    /// `true` if no members.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Sparse(ids) => ids.is_empty(),
            Repr::Dense(flags) => !flags.iter().any(|&b| b),
        }
    }

    /// Membership test (O(1) dense, O(|S|) sparse).
    pub fn contains(&self, v: Id) -> bool {
        match &self.repr {
            Repr::Sparse(ids) => ids.contains(&v),
            Repr::Dense(flags) => flags[v as usize],
        }
    }

    /// `true` if currently in dense form.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// The members as a sorted vector (allocates).
    pub fn to_vec(&self) -> Vec<Id> {
        let mut ids = match &self.repr {
            Repr::Sparse(ids) => ids.clone(),
            Repr::Dense(flags) => flags
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(ids::from_usize(i)))
                .collect(),
        };
        ids.sort_unstable();
        ids
    }

    /// Converts in place to dense form.
    // lint: obs: representation flip inside traversal spans, not a kernel itself
    pub fn to_dense(&mut self) {
        if let Repr::Sparse(ids) = &self.repr {
            let mut flags = vec![false; self.n];
            for &v in ids {
                flags[v as usize] = true;
            }
            self.repr = Repr::Dense(flags);
        }
    }

    /// Converts in place to sparse form.
    pub fn to_sparse(&mut self) {
        if let Repr::Dense(flags) = &self.repr {
            let ids = flags
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(ids::from_usize(i)))
                .collect();
            self.repr = Repr::Sparse(ids);
        }
    }

    /// Borrow the sparse ID list (converting first if needed).
    pub fn as_sparse(&mut self) -> &[Id] {
        self.to_sparse();
        match &self.repr {
            Repr::Sparse(ids) => ids,
            Repr::Dense(_) => unreachable!(),
        }
    }

    /// Borrow the dense membership flags (converting first if needed).
    pub fn as_dense(&mut self) -> &[bool] {
        self.to_dense();
        match &self.repr {
            Repr::Dense(flags) => flags,
            Repr::Sparse(_) => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let s = VertexSubset::empty(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        let s = VertexSubset::single(10, 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_out_of_range() {
        VertexSubset::single(3, 3);
    }

    #[test]
    fn full_subset() {
        let s = VertexSubset::full(5);
        assert_eq!(s.len(), 5);
        assert!(s.is_dense());
        assert_eq!(s.to_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn conversions_roundtrip() {
        let mut s = VertexSubset::from_sparse(8, vec![5, 1, 7]);
        assert!(!s.is_dense());
        s.to_dense();
        assert!(s.is_dense());
        assert_eq!(s.len(), 3);
        assert!(s.contains(5) && s.contains(1) && s.contains(7));
        s.to_sparse();
        assert_eq!(s.to_vec(), vec![1, 5, 7]);
    }

    #[test]
    fn dense_is_empty_checks_flags() {
        let s = VertexSubset::from_dense(vec![false, false]);
        assert!(s.is_empty());
        let s = VertexSubset::from_dense(vec![false, true]);
        assert!(!s.is_empty());
        assert_eq!(s.to_vec(), vec![1]);
    }

    #[test]
    fn as_sparse_and_as_dense_borrow() {
        let mut s = VertexSubset::full(3);
        assert_eq!(s.as_sparse(), &[0, 1, 2]);
        let mut s = VertexSubset::from_sparse(3, vec![2]);
        assert_eq!(s.as_dense(), &[false, false, true]);
    }
}
