//! Hypergraph k-core decomposition — another of Hygra's §V applications.
//!
//! Semantics (stated explicitly, since hypergraph cores come in several
//! flavours): a hypernode's *induced degree* is the number of its
//! hyperedges that are still **fully alive** (all members surviving);
//! peeling removes hypernodes of induced degree < k, which kills every
//! hyperedge containing them, cascading. A hypernode's core number is the
//! largest `k` it survives. This is the "hyperedge dies with any member"
//! model — the strictest of the (k, ℓ)-core family (`ℓ = |e|` per edge),
//! complementing `nwhy-core`'s general [(k, ℓ)-core](nwhy_core::algorithms::kcore).

use nwhy_core::ids;
use nwhy_core::{Hypergraph, Id};
use nwhy_util::sync::{AtomicUsize, Ordering};
use rayon::prelude::*;

/// Computes hypernode core numbers under the dies-with-any-member model.
pub fn hygra_kcore(h: &Hypergraph) -> Vec<u32> {
    let _span = nwhy_obs::span("hygra.kcore");
    let nv = h.num_hypernodes();
    let ne = h.num_hyperedges();
    let mut core = vec![0u32; nv];
    let mut node_alive = vec![true; nv];
    let mut edge_alive: Vec<bool> = (0..ids::from_usize(ne))
        // empty hyperedges are vacuously alive but contribute no degree
        .map(|_| true)
        .collect();
    // live degree = # alive hyperedges containing the node
    let degree: Vec<AtomicUsize> = (0..nv)
        .map(|v| AtomicUsize::new(h.node_degree(ids::from_usize(v))))
        .collect();
    let mut remaining: usize = nv;
    let mut k = 0u32;

    while remaining > 0 {
        k += 1;
        loop {
            let peeled: Vec<Id> = (0..ids::from_usize(nv))
                .into_par_iter()
                .filter(|&v| {
                    node_alive[v as usize]
                        && degree[v as usize].load(Ordering::Relaxed) < k as usize
                })
                .collect();
            if peeled.is_empty() {
                break;
            }
            for &v in &peeled {
                node_alive[v as usize] = false;
                core[v as usize] = k - 1;
                remaining -= 1;
            }
            // kill hyperedges containing a peeled node; decrement the
            // degrees of the other still-alive members
            for &v in &peeled {
                for &e in h.node_memberships(v) {
                    if !edge_alive[e as usize] {
                        continue;
                    }
                    edge_alive[e as usize] = false;
                    for &w in h.edge_members(e) {
                        if w != v && node_alive[w as usize] {
                            degree[w as usize].fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }
    core
}

/// Validates the coreness array: for each `k`, the set `{v : core(v) ≥ k}`
/// must be self-consistent — every member has ≥ k hyperedges fully inside
/// the set.
// lint: obs: validation oracle for tests and `nwhy-cli check`, not a serving kernel
pub fn validate_hygra_kcore(h: &Hypergraph, core: &[u32]) -> Result<(), String> {
    let kmax = core.iter().copied().max().unwrap_or(0);
    for k in 1..=kmax {
        let inside: Vec<bool> = core.iter().map(|&c| c >= k).collect();
        for v in 0..ids::from_usize(h.num_hypernodes()) {
            if !inside[v as usize] {
                continue;
            }
            let live = h
                .node_memberships(v)
                .iter()
                .filter(|&&e| h.edge_members(e).iter().all(|&w| inside[w as usize]))
                .count();
            if live < k as usize {
                return Err(format!(
                    "core {k}: node {v} has only {live} fully-inside hyperedges"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_core_one() {
        let h = Hypergraph::from_memberships(&[vec![0, 1, 2]]);
        let core = hygra_kcore(&h);
        assert_eq!(core, vec![1, 1, 1]);
        validate_hygra_kcore(&h, &core).unwrap();
    }

    #[test]
    fn isolated_nodes_core_zero() {
        let bel = nwhy_core::BiEdgeList::from_incidences(1, 3, vec![(0, 0), (0, 1)]);
        let h = Hypergraph::from_biedgelist(&bel);
        let core = hygra_kcore(&h);
        assert_eq!(core[2], 0);
        assert_eq!(core[0], 1);
        validate_hygra_kcore(&h, &core).unwrap();
    }

    #[test]
    fn dense_overlap_raises_core() {
        // three hyperedges all over {0,1}: both nodes have 3 mutual edges
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![0, 1], vec![0, 1]]);
        let core = hygra_kcore(&h);
        assert_eq!(core, vec![3, 3]);
        validate_hygra_kcore(&h, &core).unwrap();
    }

    #[test]
    fn fragile_chain_peels() {
        // chain: killing a low-degree endpoint kills shared edges
        let h = Hypergraph::from_memberships(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let core = hygra_kcore(&h);
        // all degree ≤ 2 but edges are fragile: everything is 1-core
        assert_eq!(core, vec![1, 1, 1, 1]);
        validate_hygra_kcore(&h, &core).unwrap();
    }

    #[test]
    fn fixture_cores_validate() {
        let h = nwhy_core::fixtures::paper_hypergraph();
        let core = hygra_kcore(&h);
        validate_hygra_kcore(&h, &core).unwrap();
        // coreness bounded by plain degree
        for v in 0..9u32 {
            assert!(core[v as usize] as usize <= h.node_degree(v));
        }
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_memberships(&[]);
        assert!(hygra_kcore(&h).is_empty());
    }
}
